//! Golden determinism regression: a seeded mini-internet run must produce
//! the exact same engine statistics and snapshot digest on every machine,
//! every run, at every shard count.
//!
//! The pinned numbers below encode the full behavior chain: the world
//! generator and flow simulator (seeded `StdRng` streams), stage-1
//! accumulation (exact integer f64 sums in `CountMode::Flows`), the stage-2
//! classify/split/join/decay cascade, and the canonical snapshot encoding
//! behind `Snapshot::digest()`. If any of those changes behavior — knowingly
//! or not — this test is the tripwire. Update the constants only for an
//! *intentional* behavior change, and say so in the commit.

use ipd_suite::ipd::pipeline::{run_offline, run_offline_with, PipelineOutput};
use ipd_suite::ipd::{IpdEngine, IpdParams, LogicalIngress, ShardedEngine, Snapshot};
use ipd_suite::netflow::FlowRecord;
use ipd_suite::serve::{ServePublisher, ServeTelemetry};
use ipd_suite::traffic::{FlowSim, SimConfig, World, WorldConfig};

const SEED: u64 = 1337;
const MINUTES: u64 = 12;
const FLOWS_PER_MINUTE: u64 = 6_000;

/// Pinned expectations for the run below (see module docs before touching).
const GOLDEN_DIGEST: u64 = 0x05f1_51da_17d1_52db;
const GOLDEN_FLOWS: u64 = 47_706;
const GOLDEN_TICKS: u64 = 13;
const GOLDEN_CLASSIFICATIONS: u64 = 3_980;

/// FNV-1a over the concurrent live store's terminal rows after the same
/// run is published incrementally (delta per bucket) through
/// `ServePublisher` — the concurrent-store counterpart of
/// [`GOLDEN_DIGEST`], pinned for both 1 and 8 store regions.
const GOLDEN_STORE_DIGEST: u64 = 0x8fbf_9ec1_038c_7eba;

fn golden_params() -> IpdParams {
    IpdParams {
        ncidr_factor_v4: 64.0 / 32.0e6 * FLOWS_PER_MINUTE as f64,
        ncidr_factor_v6: FLOWS_PER_MINUTE as f64 * 1.5e-11,
        ..IpdParams::default()
    }
}

fn golden_flows() -> Vec<FlowRecord> {
    let world = World::generate(WorldConfig::default(), SEED);
    let mut sim = FlowSim::new(
        world,
        SimConfig {
            flows_per_minute: FLOWS_PER_MINUTE,
            seed: SEED,
            ..SimConfig::default()
        },
    );
    let mut flows = Vec::new();
    for _ in 0..MINUTES {
        flows.extend(sim.next_minute().flows.into_iter().map(|lf| lf.flow));
    }
    flows
}

fn last_snapshot(outputs: Vec<PipelineOutput>) -> Snapshot {
    outputs
        .into_iter()
        .rev()
        .find_map(|o| match o {
            PipelineOutput::Snapshot(s) => Some(s),
            PipelineOutput::Tick(_) => None,
        })
        .expect("the final snapshot always fires")
}

#[test]
fn golden_run_is_bit_for_bit_stable() {
    let flows = golden_flows();
    let mut engine = IpdEngine::new(golden_params()).unwrap();
    let mut outputs = Vec::new();
    run_offline(&mut engine, flows.iter().cloned(), 5, |o| outputs.push(o));
    let snap = last_snapshot(outputs);

    assert_eq!(
        engine.stats().flows_ingested,
        GOLDEN_FLOWS,
        "simulator stream changed"
    );
    assert_eq!(engine.stats().ticks, GOLDEN_TICKS);
    assert_eq!(
        engine.stats().classifications,
        GOLDEN_CLASSIFICATIONS,
        "classification behavior changed"
    );
    assert_eq!(
        snap.digest(),
        GOLDEN_DIGEST,
        "snapshot digest drifted — stats: {:?}, {} records",
        engine.stats(),
        snap.records.len()
    );
}

#[test]
fn golden_digest_is_shard_count_invariant() {
    let flows = golden_flows();
    let mut engine = ShardedEngine::new(golden_params(), 4).unwrap();
    let mut outputs = Vec::new();
    run_offline(&mut engine, flows.iter().cloned(), 5, |o| outputs.push(o));
    assert_eq!(last_snapshot(outputs).digest(), GOLDEN_DIGEST);
}

/// Canonical FNV-1a encoding of the live store's materialised rows: address
/// family, prefix bits, length, ingress shape, and the exact confidence bit
/// pattern. Any behavior drift in the concurrent store's insert/remove/rows
/// path — or in the delta publication feeding it — moves this digest.
fn store_rows_digest(rows: &[(ipd_suite::lpm::Prefix, LogicalIngress, f64)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (p, ing, conf) in rows {
        eat(&[p.af().width(), p.len()]);
        eat(&p.addr().bits().to_be_bytes());
        let members = ing.members();
        eat(&[
            matches!(ing, LogicalIngress::Bundle(_)) as u8,
            members.len() as u8,
        ]);
        eat(&ing.router().to_be_bytes());
        for m in members {
            eat(&m.ifindex.to_be_bytes());
        }
        eat(&conf.to_bits().to_be_bytes());
    }
    h
}

/// The golden run published *incrementally* through the concurrent store:
/// one delta per bucket close, terminal rows bit-identical to the terminal
/// snapshot's classified set, digest pinned and region-count invariant.
#[test]
fn golden_live_store_digest_is_stable_and_region_invariant() {
    let flows = golden_flows();
    for regions in [1usize, 8] {
        let mut hook = ServePublisher::with_config(regions, ServeTelemetry::default());
        let swap = hook.swap();
        let mut engine = IpdEngine::new(golden_params()).unwrap();
        let mut outputs = Vec::new();
        run_offline_with(
            &mut engine,
            flows.iter().cloned(),
            5,
            None,
            &mut hook,
            |o| outputs.push(o),
        );
        let store = swap.load();
        assert_eq!(
            store.value.epoch(),
            GOLDEN_TICKS,
            "one epoch per closed bucket, including the final flush"
        );
        let rows = store.value.rows();

        // Terminal rows == the terminal snapshot's classified set, bit for
        // bit — the incremental path converged exactly.
        let snap = last_snapshot(outputs);
        let mut want: Vec<_> = snap
            .classified()
            .filter_map(|r| {
                r.ingress
                    .as_ref()
                    .map(|ing| (r.range, ing.clone(), r.confidence))
            })
            .collect();
        want.sort_by_key(|&(p, _, _)| p);
        assert_eq!(rows.len(), want.len(), "regions {regions}: row count");
        for ((gp, gi, gc), (wp, wi, wc)) in rows.iter().zip(&want) {
            assert_eq!((gp, gi), (wp, wi), "regions {regions}: row mismatch");
            assert_eq!(gc.to_bits(), wc.to_bits(), "regions {regions}: confidence");
        }

        assert_eq!(
            store_rows_digest(&rows),
            GOLDEN_STORE_DIGEST,
            "regions {regions}: live-store digest drifted ({} rows)",
            rows.len()
        );
    }
}
