//! Golden determinism regression: a seeded mini-internet run must produce
//! the exact same engine statistics and snapshot digest on every machine,
//! every run, at every shard count.
//!
//! The pinned numbers below encode the full behavior chain: the world
//! generator and flow simulator (seeded `StdRng` streams), stage-1
//! accumulation (exact integer f64 sums in `CountMode::Flows`), the stage-2
//! classify/split/join/decay cascade, and the canonical snapshot encoding
//! behind `Snapshot::digest()`. If any of those changes behavior — knowingly
//! or not — this test is the tripwire. Update the constants only for an
//! *intentional* behavior change, and say so in the commit.

use ipd_suite::ipd::pipeline::{run_offline, PipelineOutput};
use ipd_suite::ipd::{IpdEngine, IpdParams, ShardedEngine, Snapshot};
use ipd_suite::netflow::FlowRecord;
use ipd_suite::traffic::{FlowSim, SimConfig, World, WorldConfig};

const SEED: u64 = 1337;
const MINUTES: u64 = 12;
const FLOWS_PER_MINUTE: u64 = 6_000;

/// Pinned expectations for the run below (see module docs before touching).
const GOLDEN_DIGEST: u64 = 0x05f1_51da_17d1_52db;
const GOLDEN_FLOWS: u64 = 47_706;
const GOLDEN_TICKS: u64 = 13;
const GOLDEN_CLASSIFICATIONS: u64 = 3_980;

fn golden_params() -> IpdParams {
    IpdParams {
        ncidr_factor_v4: 64.0 / 32.0e6 * FLOWS_PER_MINUTE as f64,
        ncidr_factor_v6: FLOWS_PER_MINUTE as f64 * 1.5e-11,
        ..IpdParams::default()
    }
}

fn golden_flows() -> Vec<FlowRecord> {
    let world = World::generate(WorldConfig::default(), SEED);
    let mut sim = FlowSim::new(
        world,
        SimConfig {
            flows_per_minute: FLOWS_PER_MINUTE,
            seed: SEED,
            ..SimConfig::default()
        },
    );
    let mut flows = Vec::new();
    for _ in 0..MINUTES {
        flows.extend(sim.next_minute().flows.into_iter().map(|lf| lf.flow));
    }
    flows
}

fn last_snapshot(outputs: Vec<PipelineOutput>) -> Snapshot {
    outputs
        .into_iter()
        .rev()
        .find_map(|o| match o {
            PipelineOutput::Snapshot(s) => Some(s),
            PipelineOutput::Tick(_) => None,
        })
        .expect("the final snapshot always fires")
}

#[test]
fn golden_run_is_bit_for_bit_stable() {
    let flows = golden_flows();
    let mut engine = IpdEngine::new(golden_params()).unwrap();
    let mut outputs = Vec::new();
    run_offline(&mut engine, flows.iter().cloned(), 5, |o| outputs.push(o));
    let snap = last_snapshot(outputs);

    assert_eq!(
        engine.stats().flows_ingested,
        GOLDEN_FLOWS,
        "simulator stream changed"
    );
    assert_eq!(engine.stats().ticks, GOLDEN_TICKS);
    assert_eq!(
        engine.stats().classifications,
        GOLDEN_CLASSIFICATIONS,
        "classification behavior changed"
    );
    assert_eq!(
        snap.digest(),
        GOLDEN_DIGEST,
        "snapshot digest drifted — stats: {:?}, {} records",
        engine.stats(),
        snap.records.len()
    );
}

#[test]
fn golden_digest_is_shard_count_invariant() {
    let flows = golden_flows();
    let mut engine = ShardedEngine::new(golden_params(), 4).unwrap();
    let mut outputs = Vec::new();
    run_offline(&mut engine, flows.iter().cloned(), 5, |o| outputs.push(o));
    assert_eq!(last_snapshot(outputs).digest(), GOLDEN_DIGEST);
}
