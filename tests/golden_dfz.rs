//! Golden determinism regression for the DFZ streaming substrate: a small
//! but *actively churned* world — next-hop flaps and withdraw/re-announce
//! cycles running at their default rates — must produce the exact same
//! snapshot digest on every machine, every run, at every shard count.
//!
//! The pinned numbers encode the whole scale chain: the hash-derived prefix
//! plan (Feistel rank permutation, stride carving), the closed-form churn
//! model, per-second flow quotas, and the engine behavior on top. Update the
//! constants only for an *intentional* behavior change, and say so in the
//! commit (see `tests/golden.rs` for the paper-scale counterpart).

use ipd_suite::ipd::pipeline::{run_offline, PipelineOutput};
use ipd_suite::ipd::{IpdEngine, IpdParams, ShardedEngine, Snapshot};
use ipd_suite::netflow::FlowRecord;
use ipd_suite::traffic::{DfzConfig, DfzWorld};

const SEED: u64 = 4242;
const MINUTES: u64 = 10;
const FLOWS_PER_MINUTE: u64 = 12_000;

/// Pinned expectations for the run below (see module docs before touching).
const GOLDEN_DIGEST: u64 = 0x6547_a5c4_350a_d625;
const GOLDEN_FLOWS: u64 = 119_195;
const GOLDEN_TICKS: u64 = 11;
const GOLDEN_CLASSIFICATIONS: u64 = 17_703;
const GOLDEN_CHURN_EVENTS: u64 = 132;

fn golden_config() -> DfzConfig {
    DfzConfig {
        flows_per_minute: FLOWS_PER_MINUTE,
        ..DfzConfig::smoke_10k(SEED)
    }
}

fn golden_params() -> IpdParams {
    IpdParams {
        ncidr_factor_v4: 64.0 / 32.0e6 * FLOWS_PER_MINUTE as f64,
        ncidr_factor_v6: (FLOWS_PER_MINUTE as f64 * 1.5e-11).max(1e-9),
        ..IpdParams::default()
    }
}

fn golden_flows() -> Vec<FlowRecord> {
    let world = DfzWorld::new(golden_config());
    world.flows(MINUTES).map(|lf| lf.flow).collect()
}

fn last_snapshot(outputs: Vec<PipelineOutput>) -> Snapshot {
    outputs
        .into_iter()
        .rev()
        .find_map(|o| match o {
            PipelineOutput::Snapshot(s) => Some(s),
            PipelineOutput::Tick(_) => None,
        })
        .expect("the final snapshot always fires")
}

#[test]
fn golden_dfz_churned_run_is_bit_for_bit_stable() {
    let cfg = golden_config();
    let world = DfzWorld::new(cfg);
    let churned = world
        .churn_events(cfg.epoch, cfg.epoch + MINUTES * 60)
        .count() as u64;
    assert_eq!(churned, GOLDEN_CHURN_EVENTS, "churn model behavior changed");
    assert!(churned > 0, "the golden window must contain churn");

    let flows = golden_flows();
    let mut engine = IpdEngine::new(golden_params()).unwrap();
    let mut outputs = Vec::new();
    run_offline(&mut engine, flows.iter().cloned(), 5, |o| outputs.push(o));
    let snap = last_snapshot(outputs);

    assert_eq!(
        engine.stats().flows_ingested,
        GOLDEN_FLOWS,
        "substrate stream changed"
    );
    assert_eq!(engine.stats().ticks, GOLDEN_TICKS);
    assert_eq!(
        engine.stats().classifications,
        GOLDEN_CLASSIFICATIONS,
        "classification behavior changed"
    );
    assert_eq!(
        snap.digest(),
        GOLDEN_DIGEST,
        "snapshot digest drifted — stats: {:?}, {} records",
        engine.stats(),
        snap.records.len()
    );
}

#[test]
fn golden_dfz_digest_is_shard_count_invariant() {
    let flows = golden_flows();
    let mut engine = ShardedEngine::new(golden_params(), 4).unwrap();
    let mut outputs = Vec::new();
    run_offline(&mut engine, flows.iter().cloned(), 5, |o| outputs.push(o));
    assert_eq!(last_snapshot(outputs).digest(), GOLDEN_DIGEST);
}
