//! Integration: IPD is dual-stack — IPv6 traffic flows through the same
//! trie machinery with `cidr_max` /48 and classifies alongside IPv4.

use ipd_suite::eval::harness::{run, EvalConfig, RunVisitor};
use ipd_suite::ipd::{IpdEngine, LogicalIngress};
use ipd_suite::lpm::{Af, LpmTrie};
use ipd_suite::topology::IngressPoint;
use ipd_suite::traffic::{MinuteBatch, World};

#[derive(Default)]
struct V6Check {
    v6_flows: u64,
    v6_correct: u64,
    v6_covered: u64,
}

impl RunVisitor for V6Check {
    fn on_minute(
        &mut self,
        batch: &MinuteBatch,
        _world: &World,
        lpm: &LpmTrie<LogicalIngress>,
        _engine: &IpdEngine,
    ) {
        for lf in &batch.flows {
            if lf.flow.src.af() != Af::V6 {
                continue;
            }
            self.v6_flows += 1;
            if let Some((range, ing)) = lpm.lookup(lf.flow.src) {
                assert_eq!(range.af(), Af::V6, "families must not cross in LPM");
                self.v6_covered += 1;
                if ing.matches(IngressPoint::new(lf.flow.router, lf.flow.input_if)) {
                    self.v6_correct += 1;
                }
            }
        }
    }
}

#[test]
fn ipv6_classifies_and_validates() {
    let cfg = EvalConfig::quick(20, 8000);
    let mut v = V6Check::default();
    let out = run(&cfg, &mut v);

    // The sim generates a meaningful v6 share (default 20 % of hypergiant
    // traffic).
    assert!(
        v.v6_flows > out.flows / 50,
        "v6 flows {} of {}",
        v.v6_flows,
        out.flows
    );

    // v6 ranges exist, respect cidr_max 48, and validate well once warm.
    let snap = out.engine.snapshot(out.sim.world().now());
    let v6_ranges: Vec<_> = snap
        .classified()
        .filter(|r| r.range.af() == Af::V6)
        .collect();
    assert!(!v6_ranges.is_empty(), "no classified IPv6 ranges");
    for r in &v6_ranges {
        assert!(r.range.len() <= 48, "range {} exceeds cidr_max", r.range);
    }
    let coverage = v.v6_covered as f64 / v.v6_flows as f64;
    let accuracy = v.v6_correct as f64 / v.v6_covered.max(1) as f64;
    assert!(coverage > 0.3, "v6 coverage {coverage}");
    assert!(accuracy > 0.8, "v6 accuracy among covered {accuracy}");
}

#[test]
fn v6_share_zero_produces_pure_v4() {
    use ipd_suite::traffic::{FlowSim, SimConfig, WorldConfig};
    let world = World::generate(WorldConfig::default(), 9);
    let mut sim = FlowSim::new(
        world,
        SimConfig {
            flows_per_minute: 3000,
            v6_share: 0.0,
            ..SimConfig::default()
        },
    );
    let batch = sim.next_minute();
    assert!(!batch.flows.is_empty());
    assert!(batch.flows.iter().all(|lf| lf.flow.src.af() == Af::V4));
}
