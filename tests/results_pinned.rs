//! Pin the paper-scale `results/` TSVs byte-for-byte.
//!
//! The DFZ-scale evaluation (`experiments -- dfz`) writes into the parallel
//! `results/dfz/` directory; it must never disturb the committed paper-scale
//! tables. This test hashes every pinned file so any accidental regeneration
//! at different parameters — or an experiments-binary change that silently
//! alters an existing artifact — fails loudly. When a change to a paper-scale
//! table is *intentional*, regenerate it with
//! `cargo run --release -p ipd-eval --bin experiments -- all` and update the
//! (length, hash) pair here in the same commit.

use std::path::Path;

/// FNV-1a 64. Dependency-free and stable; collisions are irrelevant here
/// because the byte length is pinned alongside.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every paper-scale artifact: (file, byte length, FNV-1a of contents).
const PINNED: &[(&str, usize, u64)] = &[
    ("fig10.tsv", 12872, 0x503a7e37682632cd),
    ("fig11.tsv", 2606, 0x55803fe9965e4187),
    ("fig12.tsv", 2606, 0xf02f742b59c3d682),
    ("fig13.tsv", 1972, 0xf77fe41b78c52a06),
    ("fig14.tsv", 776, 0xccec36d6edda512d),
    ("fig16.tsv", 1603, 0x76474a36a1193fbf),
    ("fig17.tsv", 2039, 0x2317c63e7a04f476),
    ("fig18_20_configs.tsv", 1431, 0x704a318bea538cd9),
    ("fig18_20_effects.tsv", 882, 0xa0e6514d4224f569),
    ("fig3.tsv", 599, 0x31b997ee8e1fb638),
    ("fig4.tsv", 1380, 0x13117d995565fa86),
    ("fig5.tsv", 94, 0x8b32a74b36a2cdda),
    ("fig6.tsv", 11785, 0xd649bcff20b499a9),
    ("fig7.tsv", 501, 0xf2968f070401bf90),
    ("fig8.tsv", 9800, 0x8aeda255a815b26a),
    ("fig9.tsv", 611, 0x577b43f17f8bee84),
    ("tab1.txt", 507, 0x5cfd0b8e2274ad4f),
    ("tab2.tsv", 167, 0x1ff42973fe27a400),
    ("tab3.txt", 577718, 0x6f6b7b5c1563c15c),
    ("tab_prefixcorr.tsv", 110, 0xdfe1fc8d50e8b276),
];

/// The committed tier-100k detection tables (`results/spoof/`, written by
/// `experiments -- spoof`): pinned like the paper-scale set. Regenerate
/// deliberately with `cargo run --release -p ipd-eval --bin experiments --
/// spoof` and update the pins in the same commit.
const SPOOF_PINNED: &[(&str, usize, u64)] = &[
    ("spoof_confusion.tsv", 100, 0xd4c0914595b942ea),
    ("spoof_summary.tsv", 196, 0x64eee4f81ad9551c),
];

fn results_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("results")
}

#[test]
fn paper_scale_tables_are_byte_identical_to_seed() {
    let dir = results_dir();
    let mut bad = Vec::new();
    for &(name, len, hash) in PINNED {
        let path = dir.join(name);
        match std::fs::read(&path) {
            Ok(bytes) => {
                if bytes.len() != len || fnv1a(&bytes) != hash {
                    bad.push(format!(
                        "{name}: got {} bytes / {:#018x}, pinned {len} bytes / {hash:#018x}",
                        bytes.len(),
                        fnv1a(&bytes)
                    ));
                }
            }
            Err(e) => bad.push(format!("{name}: unreadable ({e})")),
        }
    }
    assert!(
        bad.is_empty(),
        "paper-scale results drifted — regenerate deliberately or fix the \
         code path that touched them:\n{}",
        bad.join("\n")
    );
}

#[test]
fn spoof_tables_are_byte_identical_to_seed() {
    let dir = results_dir().join("spoof");
    let mut bad = Vec::new();
    for &(name, len, hash) in SPOOF_PINNED {
        match std::fs::read(dir.join(name)) {
            Ok(bytes) => {
                if bytes.len() != len || fnv1a(&bytes) != hash {
                    bad.push(format!(
                        "{name}: got {} bytes / {:#018x}, pinned {len} bytes / {hash:#018x}",
                        bytes.len(),
                        fnv1a(&bytes)
                    ));
                }
            }
            Err(e) => bad.push(format!("{name}: unreadable ({e})")),
        }
    }
    assert!(
        bad.is_empty(),
        "tier-100k detection tables drifted — regenerate deliberately or fix \
         the code path that touched them:\n{}",
        bad.join("\n")
    );
}

#[test]
fn dfz_tables_live_in_a_parallel_dir() {
    // The DFZ run must not add unpinned files next to the paper tables; its
    // outputs belong under results/dfz/.
    let pinned: std::collections::HashSet<&str> = PINNED.iter().map(|p| p.0).collect();
    for entry in std::fs::read_dir(results_dir()).expect("results dir") {
        let entry = entry.expect("dir entry");
        if entry.path().is_file() {
            let name = entry.file_name().into_string().expect("utf-8 name");
            assert!(
                pinned.contains(name.as_str()),
                "unexpected unpinned file results/{name} — DFZ-scale output \
                 belongs in results/dfz/"
            );
        }
    }
}
