//! Golden determinism regression for the spoofing detector: the smoke-tier
//! mixed scenario (forged sources and anycast catchment shifts over the
//! churned 10k DFZ world) must produce the exact same verdict stream on
//! every machine, every run, at every engine shard count.
//!
//! The pinned digest covers the whole chain: scenario draws (spoof
//! injection, shift rewrites), bucket-by-bucket epoch publication into the
//! live store, and every per-flow verdict with its label and epoch. Update
//! the constants only for an *intentional* behavior change, and say so in
//! the commit (see `tests/golden_dfz.rs` for the substrate counterpart).

use ipd_suite::spoof::{run_offline, SpoofRunConfig, SpoofTelemetry};

const SEED: u64 = 4242;

/// Pinned expectations for `SpoofRunConfig::smoke(SEED)` (see module docs
/// before touching). The CI `spoof-smoke` job checks the same digest from
/// the CLI, so the two must move together.
const GOLDEN_DIGEST: u64 = 0x41d4_5823_7cb7_ec6e;
const GOLDEN_FLOWS: u64 = 150_234;
const GOLDEN_VERDICTS: [u64; 3] = [131_931, 7_195, 11_108];

#[test]
fn golden_spoof_verdict_stream_is_bit_for_bit_stable() {
    let r = run_offline(&SpoofRunConfig::smoke(SEED), &SpoofTelemetry::default());
    assert_eq!(r.flows, GOLDEN_FLOWS, "scenario stream changed shape");
    assert_eq!(r.verdicts, GOLDEN_VERDICTS, "verdict mix changed");
    assert_eq!(
        r.digest, GOLDEN_DIGEST,
        "verdict stream digest diverged (got {:#018x})",
        r.digest
    );
    assert!(r.epochs > 0, "nothing was published");
    assert!(r.precision() >= 0.95, "precision {}", r.precision());
    assert!(r.recall() >= 0.90, "recall {}", r.recall());
    assert!(
        r.shift_non_spoofed() >= 0.90,
        "shift leakage {}",
        r.shift_non_spoofed()
    );
}

#[test]
fn golden_spoof_sharded_engine_matches_the_pin() {
    // K=8 against the same pin the plain run carries: transitively proves
    // the plain-vs-sharded differential at the acceptance shard counts
    // {1, 8} without a third run.
    let cfg = SpoofRunConfig {
        shards: 8,
        ..SpoofRunConfig::smoke(SEED)
    };
    let r = run_offline(&cfg, &SpoofTelemetry::default());
    assert_eq!(r.flows, GOLDEN_FLOWS);
    assert_eq!(r.verdicts, GOLDEN_VERDICTS);
    assert_eq!(
        r.digest, GOLDEN_DIGEST,
        "sharded verdict stream diverged from the plain-engine pin (got {:#018x})",
        r.digest
    );
}
