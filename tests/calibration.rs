//! Integration: the synthetic world honours the paper's distributional
//! facts (DESIGN.md §7). These are the numbers everything else is built on,
//! so they get their own cross-crate test suite.

use ipd_suite::bgp::stats::{histogram_cdf, mask_distribution, next_hop_count_histogram};
use ipd_suite::lpm::Af;
use ipd_suite::traffic::{FlowSim, SimConfig, World, WorldConfig};

fn world() -> World {
    World::generate(WorldConfig::default(), 42)
}

#[test]
fn top5_and_top20_traffic_shares() {
    // §5.1: TOP5 = 52 % of volume, TOP20 = 80 %.
    let w = world();
    let top5: f64 = w.ases[..5].iter().map(|a| a.traffic_share).sum();
    let top20: f64 = w.ases[..20].iter().map(|a| a.traffic_share).sum();
    assert!((0.45..0.62).contains(&top5), "top5 {top5}");
    assert!((0.72..0.88).contains(&top20), "top20 {top20}");
}

#[test]
fn bgp_next_hop_multiplicity() {
    // Fig 3 dotted: ~20 % one next-hop, ~60 % more than five.
    let w = world();
    let cdf = histogram_cdf(&next_hop_count_histogram(&w.rib, None));
    let at = |k: usize| {
        cdf.iter()
            .take_while(|&&(kk, _)| kk <= k)
            .last()
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    };
    let single = at(1);
    let over5 = 1.0 - at(5);
    assert!(
        (0.1..0.35).contains(&single),
        "single next-hop share {single}"
    );
    assert!(
        (0.4..0.75).contains(&over5),
        "share with >5 next-hops {over5}"
    );
}

#[test]
fn bgp_mask_distribution_is_24_heavy() {
    // Fig 9 gray: >50 % of announcements are /24.
    let w = world();
    let d = mask_distribution(&w.rib, Af::V4);
    let share24 = d.get(&24).copied().unwrap_or(0.0);
    assert!(share24 > 0.4, "/24 share {share24}");
    // /20–/23 between a few and ~15 % each.
    for m in 20..=23u8 {
        let s = d.get(&m).copied().unwrap_or(0.0);
        assert!((0.02..0.2).contains(&s), "/{m} share {s}");
    }
}

#[test]
fn sampling_and_flow_byte_correlation() {
    // §3.1: flow and byte counts correlate strongly (paper: 0.82).
    let w = world();
    let mut sim = FlowSim::new(
        w,
        SimConfig {
            flows_per_minute: 5000,
            ..SimConfig::default()
        },
    );
    let mut per_24: std::collections::HashMap<u128, (f64, f64)> = std::collections::HashMap::new();
    for _ in 0..5 {
        for lf in sim.next_minute().flows {
            let e = per_24
                .entry(lf.flow.src.masked(24).bits())
                .or_insert((0.0, 0.0));
            e.0 += 1.0;
            e.1 += lf.flow.bytes as f64;
        }
    }
    let flows: Vec<f64> = per_24.values().map(|v| v.0).collect();
    let bytes: Vec<f64> = per_24.values().map(|v| v.1).collect();
    let r = ipd_suite::eval::stats::pearson(&flows, &bytes);
    assert!(r > 0.6, "flow/byte correlation {r}");
}

#[test]
fn symmetry_targets_by_group() {
    // Fig 16: tier-1 ≈ 0.91, top5 ≈ 0.77, all ≈ 0.62.
    let w = world();
    let p = ipd_suite::eval::symmetry::symmetry_now(&w, 0);
    assert!(p.tier1 > 0.82, "tier1 {}", p.tier1);
    assert!((0.6..0.95).contains(&p.top5), "top5 {}", p.top5);
    assert!((0.45..0.85).contains(&p.all), "all {}", p.all);
    assert!(p.tier1 > p.all, "tier1 {} vs all {}", p.tier1, p.all);
}

#[test]
fn diurnal_shape() {
    // Busiest hour at 20:00 local (§5.3.1), trough in the early morning.
    use ipd_suite::traffic::diurnal_factor;
    let at = |h: u64| diurnal_factor(h * 3600);
    assert!(at(20) > at(12));
    assert!(at(12) > at(4));
    assert!((at(20) - 1.0).abs() < 1e-9);
}

#[test]
fn world_scale_is_isp_shaped() {
    let w = world();
    assert!(
        w.topology.routers().len() >= 15,
        "routers {}",
        w.topology.routers().len()
    );
    assert!(
        w.topology.links().len() >= 100,
        "links {}",
        w.topology.links().len()
    );
    assert!(w.topology.countries().len() >= 3);
    assert!(
        w.rib.prefix_count() > 500,
        "prefixes {}",
        w.rib.prefix_count()
    );
    assert!(w.regions().len() > 1000, "regions {}", w.regions().len());
}
