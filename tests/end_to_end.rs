//! Integration: the full production path across every crate —
//! synthetic world → NetFlow/IPFIX wire encoding → collector → statistical
//! time pre-processing → IPD engine → LPM validation against ground truth.

use std::collections::HashMap;

use ipd_suite::ipd::{IpdEngine, IpdParams};
use ipd_suite::netflow::ipfix::IpfixExporter;
use ipd_suite::netflow::v5::V5Exporter;
use ipd_suite::netflow::{Collector, FlowRecord, RouterId};
use ipd_suite::stattime::{Flush, StatTimeConfig, TimeBucketer};
use ipd_suite::topology::IngressPoint;
use ipd_suite::traffic::{FlowSim, LabeledFlow, SimConfig, World, WorldConfig};

const FLOWS_PER_MINUTE: u64 = 10_000;

fn scaled_params() -> IpdParams {
    IpdParams {
        ncidr_factor_v4: 64.0 / 32.0e6 * FLOWS_PER_MINUTE as f64,
        ncidr_factor_v6: FLOWS_PER_MINUTE as f64 * 1.5e-11,
        ..IpdParams::default()
    }
}

#[test]
fn wire_stattime_engine_validation() {
    let world = World::generate(WorldConfig::default(), 42);
    let mut sim = FlowSim::new(
        world,
        SimConfig {
            flows_per_minute: FLOWS_PER_MINUTE,
            // Plenty of drifting clocks so statistical time has work to do.
            drift_router_fraction: 0.3,
            drift_max_offset: 90,
            ..SimConfig::default()
        },
    );
    let mut engine = IpdEngine::new(scaled_params()).unwrap();
    let mut collector = Collector::new();
    let mut bucketer = TimeBucketer::new(StatTimeConfig {
        bucket_secs: 60,
        activity_threshold: 50,
        max_skew_buckets: 3,
        promote_threshold: 500,
    });
    let mut v5: HashMap<RouterId, V5Exporter> = HashMap::new();
    let mut ipfix: HashMap<RouterId, IpfixExporter> = HashMap::new();

    // Keep ground truth per (claimed ts, source address) for validation.
    let mut truth: HashMap<(u64, ipd_suite::lpm::Addr), IngressPoint> = HashMap::new();
    let minutes = 25;
    let mut emitted_buckets = 0usize;
    let mut last_bucket_end = 0u64;
    for minute in 0..minutes {
        let batch = sim.next_minute();
        // 1) Export on the wire, per router, alternating protocols.
        let mut by_router: HashMap<RouterId, Vec<LabeledFlow>> = HashMap::new();
        for lf in batch.flows {
            by_router.entry(lf.flow.router).or_default().push(lf);
        }
        let mut decoded: Vec<FlowRecord> = Vec::new();
        for (router, lfs) in by_router {
            for lf in &lfs {
                truth.insert(
                    (lf.flow.ts, lf.flow.src),
                    IngressPoint::new(lf.flow.router, lf.flow.input_if),
                );
            }
            let flows: Vec<FlowRecord> = lfs.iter().map(|lf| lf.flow).collect();
            let now = flows.first().map(|f| f.ts).unwrap_or(0);
            // NetFlow v5 cannot carry IPv6: v6 always goes via IPFIX, v4
            // uses the router's configured protocol.
            let (v4_flows, v6_flows): (Vec<FlowRecord>, Vec<FlowRecord>) = flows
                .into_iter()
                .partition(|f| f.src.af() == ipd_suite::lpm::Af::V4);
            let mut grams = Vec::new();
            if router % 2 == 0 {
                grams.extend(
                    v5.entry(router)
                        .or_insert_with(|| V5Exporter::new(router, 0, 1000, 0))
                        .encode(now, &v4_flows)
                        .expect("v4 traffic"),
                );
                if !v6_flows.is_empty() {
                    grams.extend(
                        ipfix
                            .entry(router)
                            .or_insert_with(|| IpfixExporter::new(router, 64))
                            .encode(now, &v6_flows),
                    );
                }
            } else {
                let mut all = v4_flows;
                all.extend(v6_flows);
                grams.extend(
                    ipfix
                        .entry(router)
                        .or_insert_with(|| IpfixExporter::new(router, 64))
                        .encode(now, &all),
                );
            }
            for g in grams {
                collector
                    .feed(&g, router, &mut decoded)
                    .expect("well-formed datagrams");
            }
        }
        // 2) Statistical time: bucket, discard out-of-range, re-stamp.
        for f in decoded {
            bucketer.push(f);
        }
        for flush in bucketer.flush_closed() {
            if let Flush::Emitted {
                bucket_start,
                flows,
            } = flush
            {
                emitted_buckets += 1;
                for f in &flows {
                    engine.ingest(f);
                }
                last_bucket_end = bucket_start + 60;
                engine.tick(last_bucket_end);
            }
        }
        let _ = minute;
    }
    for flush in bucketer.finish() {
        if let Flush::Emitted {
            bucket_start,
            flows,
        } = flush
        {
            emitted_buckets += 1;
            for f in &flows {
                engine.ingest(f);
            }
            last_bucket_end = bucket_start + 60;
            engine.tick(last_bucket_end);
        }
    }

    assert!(emitted_buckets >= 20, "buckets emitted: {emitted_buckets}");
    assert_eq!(collector.stats().errors, 0);
    assert!(engine.stats().flows_ingested > FLOWS_PER_MINUTE * 5);
    assert!(
        engine.classified_count() > 10,
        "classified: {}",
        engine.classified_count()
    );

    // 3) Validate the final LPM table against ground truth of the last
    // minutes' flows (where the engine has had time to learn).
    let lpm = engine.snapshot(last_bucket_end).lpm_table();
    let mut total = 0u64;
    let mut correct = 0u64;
    let warm_from = last_bucket_end.saturating_sub(300);
    for (&(ts, src), &actual) in &truth {
        if ts < warm_from {
            continue;
        }
        total += 1;
        if let Some((_, ing)) = lpm.lookup(src) {
            if ing.matches(actual) {
                correct += 1;
            }
        }
    }
    assert!(total > 1000, "validation set too small: {total}");
    let accuracy = correct as f64 / total as f64;
    assert!(
        accuracy > 0.6,
        "end-to-end accuracy {accuracy:.3} over {total} flows"
    );
}

#[test]
fn threaded_pipeline_agrees_with_direct_ingestion() {
    use ipd_suite::ipd::pipeline::{IpdPipeline, PipelineConfig};

    let world = World::generate(WorldConfig::default(), 7);
    let mut sim = FlowSim::new(
        world,
        SimConfig {
            flows_per_minute: 4000,
            ..SimConfig::default()
        },
    );
    let batches: Vec<Vec<FlowRecord>> = (0..8)
        .map(|_| {
            sim.next_minute()
                .flows
                .into_iter()
                .map(|lf| lf.flow)
                .collect()
        })
        .collect();

    // Direct.
    let mut direct = IpdEngine::new(scaled_params()).unwrap();
    {
        use ipd_suite::ipd::pipeline::run_offline;
        run_offline(&mut direct, batches.iter().flatten().cloned(), 5, |_| {});
    }

    // Threaded.
    let pipeline = IpdPipeline::spawn(PipelineConfig {
        params: scaled_params(),
        channel_capacity: 64,
        snapshot_every_ticks: 5,
        shards: 1,
        ..Default::default()
    })
    .unwrap();
    let tx = pipeline.input();
    let rx = pipeline.output().clone();
    let drain = std::thread::spawn(move || rx.iter().count());
    for b in &batches {
        tx.send(b.clone()).unwrap();
    }
    drop(tx);
    let (threaded, _) = pipeline.finish();
    let outputs = drain.join().unwrap();

    assert!(outputs > 0);
    assert_eq!(
        threaded.stats().flows_ingested,
        direct.stats().flows_ingested
    );
    assert_eq!(threaded.stats().ticks, direct.stats().ticks);
    assert_eq!(threaded.classified_count(), direct.classified_count());
    assert_eq!(threaded.range_count(), direct.range_count());
}
