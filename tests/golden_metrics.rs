//! Golden metrics regression — the telemetry companion to `golden.rs`.
//!
//! The same seeded mini-internet run, instrumented with a live registry:
//! every deterministic-class metric must come out bit-for-bit identical on
//! every machine and at every shard count, and must match the values pinned
//! below. Timing-class metrics (tick wall time) are checked for *presence*
//! only — their values are scheduling noise by design.
//!
//! If `golden.rs` trips, fix that first; if only this file trips, the
//! engine still behaves identically but the telemetry accounting changed —
//! update the constants only for an intentional accounting change, and say
//! so in the commit.

use ipd_suite::ipd::pipeline::{run_offline_instrumented, NoopHook};
use ipd_suite::ipd::{IpdEngine, IpdParams, ShardedEngine};
use ipd_suite::netflow::FlowRecord;
use ipd_suite::telemetry::{MetricsSnapshot, Telemetry};
use ipd_suite::traffic::{FlowSim, SimConfig, World, WorldConfig};

const SEED: u64 = 1337;
const MINUTES: u64 = 12;
const FLOWS_PER_MINUTE: u64 = 6_000;
const SNAPSHOT_EVERY: u32 = 5;

/// Pinned deterministic counters/gauges for the run below. The names are
/// looked up in the metrics snapshot; keep the list sorted by name.
const GOLDEN_METRICS: &[(&str, i64)] = &[
    ("ipd_engine_classifications_total", 3_980),
    ("ipd_engine_classified_ranges", 1_281),
    ("ipd_engine_drops_total", 2_339),
    ("ipd_engine_joins_total", 180),
    ("ipd_engine_monitored_ips", 594),
    ("ipd_engine_ranges", 2_324),
    ("ipd_engine_splits_total", 3_424),
    ("ipd_engine_ticks_total", 13),
    ("ipd_pipeline_flows_total", 47_706),
];

fn golden_params() -> IpdParams {
    IpdParams {
        ncidr_factor_v4: 64.0 / 32.0e6 * FLOWS_PER_MINUTE as f64,
        ncidr_factor_v6: FLOWS_PER_MINUTE as f64 * 1.5e-11,
        ..IpdParams::default()
    }
}

fn golden_flows() -> Vec<FlowRecord> {
    let world = World::generate(WorldConfig::default(), SEED);
    let mut sim = FlowSim::new(
        world,
        SimConfig {
            flows_per_minute: FLOWS_PER_MINUTE,
            seed: SEED,
            ..SimConfig::default()
        },
    );
    let mut flows = Vec::new();
    for _ in 0..MINUTES {
        flows.extend(sim.next_minute().flows.into_iter().map(|lf| lf.flow));
    }
    flows
}

/// Run the golden stream instrumented, at shard count `shards` (None =
/// plain engine), and return the metrics snapshot.
fn instrumented_run(shards: Option<usize>) -> MetricsSnapshot {
    let flows = golden_flows();
    let telemetry = Telemetry::new();
    match shards {
        None => {
            let mut engine = IpdEngine::new(golden_params()).unwrap();
            run_offline_instrumented(
                &mut engine,
                flows,
                SNAPSHOT_EVERY,
                None,
                &mut NoopHook,
                &telemetry,
                |_| {},
            );
        }
        Some(k) => {
            let mut engine = ShardedEngine::new(golden_params(), k).unwrap();
            engine.attach_telemetry(&telemetry);
            run_offline_instrumented(
                &mut engine,
                flows,
                SNAPSHOT_EVERY,
                None,
                &mut NoopHook,
                &telemetry,
                |_| {},
            );
        }
    }
    telemetry.snapshot()
}

/// Extract the pinned subset from a snapshot in `GOLDEN_METRICS` shape, so
/// a mismatch prints every actual value at once.
fn pinned_subset(snap: &MetricsSnapshot) -> Vec<(&'static str, i64)> {
    GOLDEN_METRICS
        .iter()
        .map(|&(name, _)| {
            let value = snap
                .counter(name)
                .map(|v| v as i64)
                .or_else(|| snap.gauge(name))
                .unwrap_or(-1);
            (name, value)
        })
        .collect()
}

#[test]
fn golden_metrics_are_bit_for_bit_stable() {
    let snap = instrumented_run(None);
    assert_eq!(
        pinned_subset(&snap),
        GOLDEN_METRICS.to_vec(),
        "deterministic metrics drifted from the pinned golden values"
    );
    // Timing-class metrics exist but are never pinned: the tick histogram
    // must have observed exactly one duration per tick.
    let ticks = snap.counter("ipd_engine_ticks_total").unwrap();
    let tick_timings = snap
        .samples
        .iter()
        .find(|s| s.name == "ipd_engine_tick_nanoseconds")
        .expect("tick timing histogram registered");
    match &tick_timings.value {
        ipd_suite::telemetry::MetricValue::Histogram { count, .. } => {
            assert_eq!(*count, ticks, "one timing observation per tick");
        }
        other => panic!("expected a histogram, got {other:?}"),
    }
    // And the timing histogram is excluded from the deterministic subset.
    assert!(
        !snap
            .deterministic()
            .samples
            .iter()
            .any(|s| s.name == "ipd_engine_tick_nanoseconds"),
        "timing metrics must not be in the deterministic subset"
    );
}

#[test]
fn golden_metrics_are_identical_across_runs_and_shard_counts() {
    let first = instrumented_run(None).deterministic();
    let second = instrumented_run(None).deterministic();
    assert_eq!(
        first, second,
        "two identical runs disagreed on deterministic metrics"
    );

    // A sharded run adds per-shard counters but must agree on everything
    // else, and the shard counters must sum to the flow total.
    let sharded = instrumented_run(Some(4));
    assert_eq!(pinned_subset(&sharded), GOLDEN_METRICS.to_vec());
    let shard_sum: u64 = sharded
        .samples
        .iter()
        .filter(|s| s.name == "ipd_shard_flows_total")
        .map(|s| match s.value {
            ipd_suite::telemetry::MetricValue::Counter(v) => v,
            _ => 0,
        })
        .sum();
    assert_eq!(
        Some(shard_sum),
        sharded.counter("ipd_pipeline_flows_total"),
        "per-shard flow counters must sum to the total"
    );
    let sharded2 = instrumented_run(Some(4)).deterministic();
    assert_eq!(sharded.deterministic(), sharded2);
}
