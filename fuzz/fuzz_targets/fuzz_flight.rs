#![no_main]

use libfuzzer_sys::fuzz_target;

fuzz_target!(|data: &[u8]| {
    ipd_fuzz::fuzz_flight(data);
});
