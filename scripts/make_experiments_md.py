#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from an `experiments -- all` log.

Usage: python3 scripts/make_experiments_md.py /tmp/experiments_all.txt > EXPERIMENTS.md
"""
import re
import sys

PAPER = {
    "tab1": ("Table 1", "default parameters: cidr_max /28,/48; n_cidr factor 64/24; q 0.95; t 60 s; e 120 s"),
    "tab2": ("Table 2", "full factorial design: 5 q-levels × 4 factor-levels × 9 cidr_max-levels (+ IPv6), 308 configs total"),
    "fig5": ("Fig 5", "worked example: /0 splits under ambiguous traffic, halves classify once n_cidr is met"),
    "fig2": ("Fig 2", "stability duration per prefix on a link: 60 % < 1 h, only 10 % > 6 h"),
    "fig3": ("Fig 3", "ingress count per /24: BGP shows 20 % single / 60 % >5 next-hops; traffic shows ~80 % single ingress"),
    "fig4": ("Fig 4", "for multi-ingress /24s, 80 % of prefixes have ≤80 % of traffic on the primary ingress"),
    "fig6": ("Fig 6", "accuracy vs ground truth: ALL 91 %, TOP20 94 %, TOP5 97.4 % (diurnal volume shade)"),
    "fig7": ("Fig 7", "TOP5 miss taxonomy: interface vs router vs PoP misses, counts + distinct sources"),
    "fig8": ("Fig 8", "misses over time: AS1 maintenance peaks at 11 AM/11 PM; AS3/AS4 diurnal CDN patterns"),
    "fig9": ("Fig 9", "IPD range sizes span /7../28 and differ from BGP (>50 % /24)"),
    "fig10": ("Fig 10", "longitudinal: matching share → ~60 %, stable share 50 % → ~20 % → ~0 over years"),
    "fig11": ("Fig 11", "TOP5 by hour of day: mapped space stable, prefix count dips to ~70 % at 6–7 AM"),
    "fig12": ("Fig 12", "AS4 (CDN): prefix count drops below 40 % by 6 AM, peaks 4 PM (demand-driven mapping)"),
    "fig13": ("Fig 13/14", "case study: split /23, interface change at maintenance, gap + decay, re-aggregation"),
    "fig15": ("Fig 15", "elephant ranges (top 1 % counters) stable for months vs <1 h baseline"),
    "tab3": ("Table 3", "raw output rows: ts, af, s_ingress, s_ipcount, n_cidr, range, ingress(all shares)"),
    "tab-prefixcorr": ("§5.5", "IPD vs BGP prefixes: 91 % more specific / 1 % exact / 8 % less specific"),
    "corr": ("§3.1", "flow/byte count correlation 0.82 justifies the flow-count simplification"),
    "fig16": ("Fig 16", "symmetry: ALL ~62 %, TOP20 ~61 %, TOP5 ~77 %, tier-1 ~91 %"),
    "fig17": ("Fig 17", "tier-1 peering violations: ~9 % of prefixes indirect, +50 % from Sep 2019, 2× by 2020"),
    "fig18": ("Figs 18–20 / App. A", "accuracy flat across 308 configs (~90.8 %); q and cidr_max drive stability; runtime+RAM grow exponentially with cidr_max"),
}

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated on the
synthetic tier-1 world (see DESIGN.md §3 for the data substitutions; seed 42).
Absolute numbers are not expected to match the authors' ISP — the substrate
is a calibrated simulator — but the *shape* (orderings, trends, who wins)
must hold. Each section lists the paper's claim and this run's inline shape
checks (`OK` = holds, `CHECK` = deviation worth knowing about, discussed
below). Full series live in `results/*.tsv`.

Regenerate:

```bash
cargo run --release -p ipd-eval --bin experiments -- all     # writes results/
cargo bench -p ipd-bench                                     # perf tables
```

Environment note: all runs in this record executed on a single-core
container; throughput numbers scale accordingly (the paper's deployment uses
a 48-core server, ~30 of which serve flow readers).

## Known deviations

* **Fig 6** — the recorded means include the cold-start climb (the engine
  starts from an empty trie, the paper's had been running for years). The
  late-bin steady state reaches ~0.90 ALL / ~0.93 TOP5 — see `results/fig6.tsv`.
* **Figs 18–20** — run at 20 simulated minutes per configuration, so absolute
  accuracies are cold-start-dominated (~0.5); the paper's finding survives as
  *flatness across configurations* plus the q/cidr_max effects on stability,
  runtime and state.
* **Fig 10** — our mapped address space never shrinks (no region-retirement
  model), so the "matching" share stays ~1.0 while the paper's falls to 60 %;
  the *stable* share decay — the figure's point — reproduces.
* **Fig 2** — our stability CDF is more extreme than the paper's (more
  phases under an hour). The compressed 25-hour window plus scaled-up world
  dynamics shorten phases; the orderings (most phases short, elephants long,
  Fig 15) still hold.
* **§5.5 prefix correlation** — "more specific" dominates as in the paper,
  but our exact-match share is higher: the synthetic world's regions often
  coincide with /24 BGP prefixes, the real Internet's do not.
* **Fig 3** — the single-ingress share runs slightly below/above the paper's
  ~80 % depending on sampling density per (/24, hour) at 1/1000-scale
  traffic.
* **Fig 4** — our multi-ingress set includes prefixes whose second "ingress"
  is the 1 % spoofed-noise floor crossing the 1 % significance threshold,
  which pushes many observed primary shares toward 1.0; the genuinely mixed
  prefixes (ground truth) have primary shares drawn from U(0.35, 0.92) as the
  paper's Fig 4 shape suggests.

## Per-artifact record

"""


def main(path: str) -> None:
    text = open(path, encoding="utf-8").read()
    sections = re.split(r"^=== (\S+) ===$", text, flags=re.M)
    out = [HEADER]
    # sections: [preamble, id1, body1, id2, body2, ...]
    for i in range(1, len(sections) - 1, 2):
        sid, body = sections[i], sections[i + 1]
        fig, claim = PAPER.get(sid, (sid, ""))
        out.append(f"### {fig} — `experiments {sid}`\n")
        out.append(f"*Paper:* {claim}\n")
        checks = re.findall(r"^\s*\[(OK|CHECK)\s*\] (.+)$", body, flags=re.M)
        if checks:
            out.append("\n*Measured:*\n")
            for status, line in checks:
                mark = "✅" if status == "OK" else "⚠️"
                out.append(f"- {mark} {line}")
        # Grab headline stat lines (first few non-table lines).
        extra = [
            ln.strip()
            for ln in body.splitlines()
            if ln.strip().startswith(("fig", "tab", "§"))
        ]
        if extra:
            out.append(f"\n_{extra[0]}_\n")
        out.append("")
    out.append(
        "## Performance (§5.7)\n\n"
        "See `bench_output.txt` (Criterion) for ingest throughput, stage-2\n"
        "tick cost vs `cidr_max` (the Fig 20 ablation), codec and LPM costs,\n"
        "and end-to-end pipeline rates.\n"
    )
    print("\n".join(out))


if __name__ == "__main__":
    main(sys.argv[1])
