/root/repo/target/debug/deps/prop-3edcaa861ea9ff66.d: crates/ipd-netflow/tests/prop.rs

/root/repo/target/debug/deps/prop-3edcaa861ea9ff66: crates/ipd-netflow/tests/prop.rs

crates/ipd-netflow/tests/prop.rs:
