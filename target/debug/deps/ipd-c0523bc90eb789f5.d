/root/repo/target/debug/deps/ipd-c0523bc90eb789f5.d: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

/root/repo/target/debug/deps/libipd-c0523bc90eb789f5.rlib: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

/root/repo/target/debug/deps/libipd-c0523bc90eb789f5.rmeta: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

crates/ipd-core/src/lib.rs:
crates/ipd-core/src/engine.rs:
crates/ipd-core/src/ingress.rs:
crates/ipd-core/src/output.rs:
crates/ipd-core/src/params.rs:
crates/ipd-core/src/pipeline.rs:
crates/ipd-core/src/range.rs:
crates/ipd-core/src/shard.rs:
crates/ipd-core/src/trie.rs:
