/root/repo/target/debug/deps/ipd_stattime-dadfcdfc850f9dc4.d: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

/root/repo/target/debug/deps/libipd_stattime-dadfcdfc850f9dc4.rlib: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

/root/repo/target/debug/deps/libipd_stattime-dadfcdfc850f9dc4.rmeta: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

crates/ipd-stattime/src/lib.rs:
crates/ipd-stattime/src/bucketer.rs:
crates/ipd-stattime/src/drift.rs:
