/root/repo/target/debug/deps/calibration-566c5925ac3a8bc7.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-566c5925ac3a8bc7: tests/calibration.rs

tests/calibration.rs:
