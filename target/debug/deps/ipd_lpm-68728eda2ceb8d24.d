/root/repo/target/debug/deps/ipd_lpm-68728eda2ceb8d24.d: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

/root/repo/target/debug/deps/ipd_lpm-68728eda2ceb8d24: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

crates/ipd-lpm/src/lib.rs:
crates/ipd-lpm/src/addr.rs:
crates/ipd-lpm/src/prefix.rs:
crates/ipd-lpm/src/trie.rs:
