/root/repo/target/debug/deps/ipd_traffic-1924089ac7506a7e.d: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libipd_traffic-1924089ac7506a7e.rmeta: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs Cargo.toml

crates/ipd-traffic/src/lib.rs:
crates/ipd-traffic/src/asmodel.rs:
crates/ipd-traffic/src/diurnal.rs:
crates/ipd-traffic/src/events.rs:
crates/ipd-traffic/src/mapping.rs:
crates/ipd-traffic/src/sim.rs:
crates/ipd-traffic/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
