/root/repo/target/debug/deps/ipd_stattime-95df6c4ae58567b6.d: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs Cargo.toml

/root/repo/target/debug/deps/libipd_stattime-95df6c4ae58567b6.rmeta: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs Cargo.toml

crates/ipd-stattime/src/lib.rs:
crates/ipd-stattime/src/bucketer.rs:
crates/ipd-stattime/src/drift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
