/root/repo/target/debug/deps/ipd_netflow-088481ec18d73db7.d: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

/root/repo/target/debug/deps/ipd_netflow-088481ec18d73db7: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

crates/ipd-netflow/src/lib.rs:
crates/ipd-netflow/src/collector.rs:
crates/ipd-netflow/src/ipfix.rs:
crates/ipd-netflow/src/record.rs:
crates/ipd-netflow/src/sampling.rs:
crates/ipd-netflow/src/trace.rs:
crates/ipd-netflow/src/v5.rs:
