/root/repo/target/debug/deps/prop-9deb3288aa7fb9d0.d: crates/ipd-lpm/tests/prop.rs

/root/repo/target/debug/deps/prop-9deb3288aa7fb9d0: crates/ipd-lpm/tests/prop.rs

crates/ipd-lpm/tests/prop.rs:
