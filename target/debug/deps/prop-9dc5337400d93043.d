/root/repo/target/debug/deps/prop-9dc5337400d93043.d: crates/ipd-bgp/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-9dc5337400d93043.rmeta: crates/ipd-bgp/tests/prop.rs Cargo.toml

crates/ipd-bgp/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
