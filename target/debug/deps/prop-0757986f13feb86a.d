/root/repo/target/debug/deps/prop-0757986f13feb86a.d: crates/ipd-bgp/tests/prop.rs

/root/repo/target/debug/deps/prop-0757986f13feb86a: crates/ipd-bgp/tests/prop.rs

crates/ipd-bgp/tests/prop.rs:
