/root/repo/target/debug/deps/ipd_topology-405d05f8a7689e18.d: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libipd_topology-405d05f8a7689e18.rmeta: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs Cargo.toml

crates/ipd-topology/src/lib.rs:
crates/ipd-topology/src/builder.rs:
crates/ipd-topology/src/generate.rs:
crates/ipd-topology/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
