/root/repo/target/debug/deps/serde-867692fb83a4a396.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-867692fb83a4a396.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-867692fb83a4a396.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
