/root/repo/target/debug/deps/experiments-90a44552521ca901.d: crates/ipd-eval/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-90a44552521ca901: crates/ipd-eval/src/bin/experiments.rs

crates/ipd-eval/src/bin/experiments.rs:
