/root/repo/target/debug/deps/ipd_suite-6f0c835506b1687c.d: src/lib.rs

/root/repo/target/debug/deps/libipd_suite-6f0c835506b1687c.rlib: src/lib.rs

/root/repo/target/debug/deps/libipd_suite-6f0c835506b1687c.rmeta: src/lib.rs

src/lib.rs:
