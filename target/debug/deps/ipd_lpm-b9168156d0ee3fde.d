/root/repo/target/debug/deps/ipd_lpm-b9168156d0ee3fde.d: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libipd_lpm-b9168156d0ee3fde.rmeta: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs Cargo.toml

crates/ipd-lpm/src/lib.rs:
crates/ipd-lpm/src/addr.rs:
crates/ipd-lpm/src/prefix.rs:
crates/ipd-lpm/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
