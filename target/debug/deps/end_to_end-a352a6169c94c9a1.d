/root/repo/target/debug/deps/end_to_end-a352a6169c94c9a1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a352a6169c94c9a1: tests/end_to_end.rs

tests/end_to_end.rs:
