/root/repo/target/debug/deps/ipd_bench-c64946057e6fd25e.d: crates/ipd-bench/src/lib.rs

/root/repo/target/debug/deps/libipd_bench-c64946057e6fd25e.rlib: crates/ipd-bench/src/lib.rs

/root/repo/target/debug/deps/libipd_bench-c64946057e6fd25e.rmeta: crates/ipd-bench/src/lib.rs

crates/ipd-bench/src/lib.rs:
