/root/repo/target/debug/deps/prop-70653d5d11723d95.d: crates/ipd-traffic/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-70653d5d11723d95.rmeta: crates/ipd-traffic/tests/prop.rs Cargo.toml

crates/ipd-traffic/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
