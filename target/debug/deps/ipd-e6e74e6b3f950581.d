/root/repo/target/debug/deps/ipd-e6e74e6b3f950581.d: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libipd-e6e74e6b3f950581.rmeta: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs Cargo.toml

crates/ipd-core/src/lib.rs:
crates/ipd-core/src/engine.rs:
crates/ipd-core/src/ingress.rs:
crates/ipd-core/src/output.rs:
crates/ipd-core/src/params.rs:
crates/ipd-core/src/pipeline.rs:
crates/ipd-core/src/range.rs:
crates/ipd-core/src/shard.rs:
crates/ipd-core/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
