/root/repo/target/debug/deps/ipd_bench-ba12a89e5a4dc61f.d: crates/ipd-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipd_bench-ba12a89e5a4dc61f.rmeta: crates/ipd-bench/src/lib.rs Cargo.toml

crates/ipd-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
