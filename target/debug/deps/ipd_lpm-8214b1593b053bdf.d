/root/repo/target/debug/deps/ipd_lpm-8214b1593b053bdf.d: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

/root/repo/target/debug/deps/libipd_lpm-8214b1593b053bdf.rlib: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

/root/repo/target/debug/deps/libipd_lpm-8214b1593b053bdf.rmeta: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

crates/ipd-lpm/src/lib.rs:
crates/ipd-lpm/src/addr.rs:
crates/ipd-lpm/src/prefix.rs:
crates/ipd-lpm/src/trie.rs:
