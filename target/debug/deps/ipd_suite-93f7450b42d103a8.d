/root/repo/target/debug/deps/ipd_suite-93f7450b42d103a8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipd_suite-93f7450b42d103a8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
