/root/repo/target/debug/deps/proptest-368874b43f64a737.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-368874b43f64a737: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
