/root/repo/target/debug/deps/experiments-c85a65b37e5f6b7d.d: crates/ipd-eval/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-c85a65b37e5f6b7d: crates/ipd-eval/src/bin/experiments.rs

crates/ipd-eval/src/bin/experiments.rs:
