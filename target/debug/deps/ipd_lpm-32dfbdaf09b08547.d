/root/repo/target/debug/deps/ipd_lpm-32dfbdaf09b08547.d: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

/root/repo/target/debug/deps/libipd_lpm-32dfbdaf09b08547.rlib: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

/root/repo/target/debug/deps/libipd_lpm-32dfbdaf09b08547.rmeta: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

crates/ipd-lpm/src/lib.rs:
crates/ipd-lpm/src/addr.rs:
crates/ipd-lpm/src/prefix.rs:
crates/ipd-lpm/src/trie.rs:
