/root/repo/target/debug/deps/ipd_traffic-a14bed3e6dbf4594.d: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

/root/repo/target/debug/deps/libipd_traffic-a14bed3e6dbf4594.rlib: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

/root/repo/target/debug/deps/libipd_traffic-a14bed3e6dbf4594.rmeta: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

crates/ipd-traffic/src/lib.rs:
crates/ipd-traffic/src/asmodel.rs:
crates/ipd-traffic/src/diurnal.rs:
crates/ipd-traffic/src/events.rs:
crates/ipd-traffic/src/mapping.rs:
crates/ipd-traffic/src/sim.rs:
crates/ipd-traffic/src/world.rs:
