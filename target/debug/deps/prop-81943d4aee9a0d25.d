/root/repo/target/debug/deps/prop-81943d4aee9a0d25.d: crates/ipd-traffic/tests/prop.rs

/root/repo/target/debug/deps/prop-81943d4aee9a0d25: crates/ipd-traffic/tests/prop.rs

crates/ipd-traffic/tests/prop.rs:
