/root/repo/target/debug/deps/golden-9b779be24e214b17.d: tests/golden.rs

/root/repo/target/debug/deps/golden-9b779be24e214b17: tests/golden.rs

tests/golden.rs:
