/root/repo/target/debug/deps/ipd_tool-87e1b7c28e863759.d: crates/ipd-cli/src/main.rs crates/ipd-cli/src/args.rs Cargo.toml

/root/repo/target/debug/deps/libipd_tool-87e1b7c28e863759.rmeta: crates/ipd-cli/src/main.rs crates/ipd-cli/src/args.rs Cargo.toml

crates/ipd-cli/src/main.rs:
crates/ipd-cli/src/args.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
