/root/repo/target/debug/deps/ipd-70b6b7105dad2225.d: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

/root/repo/target/debug/deps/libipd-70b6b7105dad2225.rlib: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

/root/repo/target/debug/deps/libipd-70b6b7105dad2225.rmeta: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

crates/ipd-core/src/lib.rs:
crates/ipd-core/src/engine.rs:
crates/ipd-core/src/ingress.rs:
crates/ipd-core/src/output.rs:
crates/ipd-core/src/params.rs:
crates/ipd-core/src/pipeline.rs:
crates/ipd-core/src/range.rs:
crates/ipd-core/src/shard.rs:
crates/ipd-core/src/trie.rs:
