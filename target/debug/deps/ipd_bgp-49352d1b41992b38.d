/root/repo/target/debug/deps/ipd_bgp-49352d1b41992b38.d: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

/root/repo/target/debug/deps/ipd_bgp-49352d1b41992b38: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

crates/ipd-bgp/src/lib.rs:
crates/ipd-bgp/src/dump.rs:
crates/ipd-bgp/src/rib.rs:
crates/ipd-bgp/src/route.rs:
crates/ipd-bgp/src/stats.rs:
