/root/repo/target/debug/deps/prop-f28417ea18e619ce.d: crates/ipd-stattime/tests/prop.rs

/root/repo/target/debug/deps/prop-f28417ea18e619ce: crates/ipd-stattime/tests/prop.rs

crates/ipd-stattime/tests/prop.rs:
