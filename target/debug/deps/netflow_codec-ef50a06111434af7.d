/root/repo/target/debug/deps/netflow_codec-ef50a06111434af7.d: crates/ipd-bench/benches/netflow_codec.rs Cargo.toml

/root/repo/target/debug/deps/libnetflow_codec-ef50a06111434af7.rmeta: crates/ipd-bench/benches/netflow_codec.rs Cargo.toml

crates/ipd-bench/benches/netflow_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
