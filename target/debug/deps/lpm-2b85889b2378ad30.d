/root/repo/target/debug/deps/lpm-2b85889b2378ad30.d: crates/ipd-bench/benches/lpm.rs Cargo.toml

/root/repo/target/debug/deps/liblpm-2b85889b2378ad30.rmeta: crates/ipd-bench/benches/lpm.rs Cargo.toml

crates/ipd-bench/benches/lpm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
