/root/repo/target/debug/deps/differential-c379e1bde240e49e.d: crates/ipd-core/tests/differential.rs

/root/repo/target/debug/deps/differential-c379e1bde240e49e: crates/ipd-core/tests/differential.rs

crates/ipd-core/tests/differential.rs:
