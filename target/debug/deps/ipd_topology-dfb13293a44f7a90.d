/root/repo/target/debug/deps/ipd_topology-dfb13293a44f7a90.d: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

/root/repo/target/debug/deps/ipd_topology-dfb13293a44f7a90: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

crates/ipd-topology/src/lib.rs:
crates/ipd-topology/src/builder.rs:
crates/ipd-topology/src/generate.rs:
crates/ipd-topology/src/model.rs:
