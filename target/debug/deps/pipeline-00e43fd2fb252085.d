/root/repo/target/debug/deps/pipeline-00e43fd2fb252085.d: crates/ipd-bench/benches/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-00e43fd2fb252085.rmeta: crates/ipd-bench/benches/pipeline.rs Cargo.toml

crates/ipd-bench/benches/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
