/root/repo/target/debug/deps/ipd_suite-55cf6e29c6828d8d.d: src/lib.rs

/root/repo/target/debug/deps/ipd_suite-55cf6e29c6828d8d: src/lib.rs

src/lib.rs:
