/root/repo/target/debug/deps/ipd_suite-3b49db2dca408eb4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipd_suite-3b49db2dca408eb4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
