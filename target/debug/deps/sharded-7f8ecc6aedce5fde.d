/root/repo/target/debug/deps/sharded-7f8ecc6aedce5fde.d: crates/ipd-bench/benches/sharded.rs Cargo.toml

/root/repo/target/debug/deps/libsharded-7f8ecc6aedce5fde.rmeta: crates/ipd-bench/benches/sharded.rs Cargo.toml

crates/ipd-bench/benches/sharded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
