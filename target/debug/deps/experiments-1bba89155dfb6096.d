/root/repo/target/debug/deps/experiments-1bba89155dfb6096.d: crates/ipd-eval/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-1bba89155dfb6096.rmeta: crates/ipd-eval/src/bin/experiments.rs Cargo.toml

crates/ipd-eval/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
