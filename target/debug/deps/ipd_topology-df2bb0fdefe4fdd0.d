/root/repo/target/debug/deps/ipd_topology-df2bb0fdefe4fdd0.d: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

/root/repo/target/debug/deps/libipd_topology-df2bb0fdefe4fdd0.rlib: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

/root/repo/target/debug/deps/libipd_topology-df2bb0fdefe4fdd0.rmeta: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

crates/ipd-topology/src/lib.rs:
crates/ipd-topology/src/builder.rs:
crates/ipd-topology/src/generate.rs:
crates/ipd-topology/src/model.rs:
