/root/repo/target/debug/deps/ipd_traffic-d2b38d327efb029f.d: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

/root/repo/target/debug/deps/ipd_traffic-d2b38d327efb029f: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

crates/ipd-traffic/src/lib.rs:
crates/ipd-traffic/src/asmodel.rs:
crates/ipd-traffic/src/diurnal.rs:
crates/ipd-traffic/src/events.rs:
crates/ipd-traffic/src/mapping.rs:
crates/ipd-traffic/src/sim.rs:
crates/ipd-traffic/src/world.rs:
