/root/repo/target/debug/deps/ipd_bgp-93152435b321c3d9.d: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

/root/repo/target/debug/deps/libipd_bgp-93152435b321c3d9.rlib: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

/root/repo/target/debug/deps/libipd_bgp-93152435b321c3d9.rmeta: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

crates/ipd-bgp/src/lib.rs:
crates/ipd-bgp/src/dump.rs:
crates/ipd-bgp/src/rib.rs:
crates/ipd-bgp/src/route.rs:
crates/ipd-bgp/src/stats.rs:
