/root/repo/target/debug/deps/ipd_topology-117a155ca586fac4.d: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

/root/repo/target/debug/deps/libipd_topology-117a155ca586fac4.rlib: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

/root/repo/target/debug/deps/libipd_topology-117a155ca586fac4.rmeta: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

crates/ipd-topology/src/lib.rs:
crates/ipd-topology/src/builder.rs:
crates/ipd-topology/src/generate.rs:
crates/ipd-topology/src/model.rs:
