/root/repo/target/debug/deps/prop-56d47d58d6c3529b.d: crates/ipd-core/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-56d47d58d6c3529b.rmeta: crates/ipd-core/tests/prop.rs Cargo.toml

crates/ipd-core/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
