/root/repo/target/debug/deps/ipd_suite-8e3698e58246bb8c.d: src/lib.rs

/root/repo/target/debug/deps/libipd_suite-8e3698e58246bb8c.rlib: src/lib.rs

/root/repo/target/debug/deps/libipd_suite-8e3698e58246bb8c.rmeta: src/lib.rs

src/lib.rs:
