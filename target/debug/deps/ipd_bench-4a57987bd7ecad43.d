/root/repo/target/debug/deps/ipd_bench-4a57987bd7ecad43.d: crates/ipd-bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libipd_bench-4a57987bd7ecad43.rmeta: crates/ipd-bench/src/lib.rs Cargo.toml

crates/ipd-bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
