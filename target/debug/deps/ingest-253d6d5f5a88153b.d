/root/repo/target/debug/deps/ingest-253d6d5f5a88153b.d: crates/ipd-bench/benches/ingest.rs Cargo.toml

/root/repo/target/debug/deps/libingest-253d6d5f5a88153b.rmeta: crates/ipd-bench/benches/ingest.rs Cargo.toml

crates/ipd-bench/benches/ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
