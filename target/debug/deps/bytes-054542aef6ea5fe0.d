/root/repo/target/debug/deps/bytes-054542aef6ea5fe0.d: shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-054542aef6ea5fe0.rmeta: shims/bytes/src/lib.rs Cargo.toml

shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
