/root/repo/target/debug/deps/tick-70ddabd929187afb.d: crates/ipd-bench/benches/tick.rs Cargo.toml

/root/repo/target/debug/deps/libtick-70ddabd929187afb.rmeta: crates/ipd-bench/benches/tick.rs Cargo.toml

crates/ipd-bench/benches/tick.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
