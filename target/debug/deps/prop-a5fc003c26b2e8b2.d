/root/repo/target/debug/deps/prop-a5fc003c26b2e8b2.d: crates/ipd-netflow/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-a5fc003c26b2e8b2.rmeta: crates/ipd-netflow/tests/prop.rs Cargo.toml

crates/ipd-netflow/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
