/root/repo/target/debug/deps/experiments-9b2fa691470b3415.d: crates/ipd-eval/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-9b2fa691470b3415.rmeta: crates/ipd-eval/src/bin/experiments.rs Cargo.toml

crates/ipd-eval/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
