/root/repo/target/debug/deps/golden-7a16ccd1fe641c6c.d: tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-7a16ccd1fe641c6c.rmeta: tests/golden.rs Cargo.toml

tests/golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
