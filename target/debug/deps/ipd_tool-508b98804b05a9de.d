/root/repo/target/debug/deps/ipd_tool-508b98804b05a9de.d: crates/ipd-cli/src/main.rs crates/ipd-cli/src/args.rs

/root/repo/target/debug/deps/ipd_tool-508b98804b05a9de: crates/ipd-cli/src/main.rs crates/ipd-cli/src/args.rs

crates/ipd-cli/src/main.rs:
crates/ipd-cli/src/args.rs:
