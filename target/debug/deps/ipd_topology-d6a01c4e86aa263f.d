/root/repo/target/debug/deps/ipd_topology-d6a01c4e86aa263f.d: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libipd_topology-d6a01c4e86aa263f.rmeta: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs Cargo.toml

crates/ipd-topology/src/lib.rs:
crates/ipd-topology/src/builder.rs:
crates/ipd-topology/src/generate.rs:
crates/ipd-topology/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
