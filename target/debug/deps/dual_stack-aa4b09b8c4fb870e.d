/root/repo/target/debug/deps/dual_stack-aa4b09b8c4fb870e.d: tests/dual_stack.rs

/root/repo/target/debug/deps/dual_stack-aa4b09b8c4fb870e: tests/dual_stack.rs

tests/dual_stack.rs:
