/root/repo/target/debug/deps/dual_stack-394b0f25e8a948ae.d: tests/dual_stack.rs Cargo.toml

/root/repo/target/debug/deps/libdual_stack-394b0f25e8a948ae.rmeta: tests/dual_stack.rs Cargo.toml

tests/dual_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
