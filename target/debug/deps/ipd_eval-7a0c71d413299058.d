/root/repo/target/debug/deps/ipd_eval-7a0c71d413299058.d: crates/ipd-eval/src/lib.rs crates/ipd-eval/src/accuracy.rs crates/ipd-eval/src/case_study.rs crates/ipd-eval/src/daytime.rs crates/ipd-eval/src/harness.rs crates/ipd-eval/src/ingress_count.rs crates/ipd-eval/src/longitudinal.rs crates/ipd-eval/src/param_study.rs crates/ipd-eval/src/range_dist.rs crates/ipd-eval/src/report.rs crates/ipd-eval/src/stability.rs crates/ipd-eval/src/stats.rs crates/ipd-eval/src/symmetry.rs crates/ipd-eval/src/violations.rs

/root/repo/target/debug/deps/libipd_eval-7a0c71d413299058.rlib: crates/ipd-eval/src/lib.rs crates/ipd-eval/src/accuracy.rs crates/ipd-eval/src/case_study.rs crates/ipd-eval/src/daytime.rs crates/ipd-eval/src/harness.rs crates/ipd-eval/src/ingress_count.rs crates/ipd-eval/src/longitudinal.rs crates/ipd-eval/src/param_study.rs crates/ipd-eval/src/range_dist.rs crates/ipd-eval/src/report.rs crates/ipd-eval/src/stability.rs crates/ipd-eval/src/stats.rs crates/ipd-eval/src/symmetry.rs crates/ipd-eval/src/violations.rs

/root/repo/target/debug/deps/libipd_eval-7a0c71d413299058.rmeta: crates/ipd-eval/src/lib.rs crates/ipd-eval/src/accuracy.rs crates/ipd-eval/src/case_study.rs crates/ipd-eval/src/daytime.rs crates/ipd-eval/src/harness.rs crates/ipd-eval/src/ingress_count.rs crates/ipd-eval/src/longitudinal.rs crates/ipd-eval/src/param_study.rs crates/ipd-eval/src/range_dist.rs crates/ipd-eval/src/report.rs crates/ipd-eval/src/stability.rs crates/ipd-eval/src/stats.rs crates/ipd-eval/src/symmetry.rs crates/ipd-eval/src/violations.rs

crates/ipd-eval/src/lib.rs:
crates/ipd-eval/src/accuracy.rs:
crates/ipd-eval/src/case_study.rs:
crates/ipd-eval/src/daytime.rs:
crates/ipd-eval/src/harness.rs:
crates/ipd-eval/src/ingress_count.rs:
crates/ipd-eval/src/longitudinal.rs:
crates/ipd-eval/src/param_study.rs:
crates/ipd-eval/src/range_dist.rs:
crates/ipd-eval/src/report.rs:
crates/ipd-eval/src/stability.rs:
crates/ipd-eval/src/stats.rs:
crates/ipd-eval/src/symmetry.rs:
crates/ipd-eval/src/violations.rs:
