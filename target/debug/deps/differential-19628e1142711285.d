/root/repo/target/debug/deps/differential-19628e1142711285.d: crates/ipd-core/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-19628e1142711285.rmeta: crates/ipd-core/tests/differential.rs Cargo.toml

crates/ipd-core/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
