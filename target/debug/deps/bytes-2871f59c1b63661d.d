/root/repo/target/debug/deps/bytes-2871f59c1b63661d.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-2871f59c1b63661d: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
