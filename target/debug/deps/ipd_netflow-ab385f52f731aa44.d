/root/repo/target/debug/deps/ipd_netflow-ab385f52f731aa44.d: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs Cargo.toml

/root/repo/target/debug/deps/libipd_netflow-ab385f52f731aa44.rmeta: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs Cargo.toml

crates/ipd-netflow/src/lib.rs:
crates/ipd-netflow/src/collector.rs:
crates/ipd-netflow/src/ipfix.rs:
crates/ipd-netflow/src/record.rs:
crates/ipd-netflow/src/sampling.rs:
crates/ipd-netflow/src/trace.rs:
crates/ipd-netflow/src/v5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
