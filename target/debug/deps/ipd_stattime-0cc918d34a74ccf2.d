/root/repo/target/debug/deps/ipd_stattime-0cc918d34a74ccf2.d: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

/root/repo/target/debug/deps/libipd_stattime-0cc918d34a74ccf2.rlib: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

/root/repo/target/debug/deps/libipd_stattime-0cc918d34a74ccf2.rmeta: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

crates/ipd-stattime/src/lib.rs:
crates/ipd-stattime/src/bucketer.rs:
crates/ipd-stattime/src/drift.rs:
