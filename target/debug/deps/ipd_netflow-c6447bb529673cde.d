/root/repo/target/debug/deps/ipd_netflow-c6447bb529673cde.d: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

/root/repo/target/debug/deps/libipd_netflow-c6447bb529673cde.rlib: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

/root/repo/target/debug/deps/libipd_netflow-c6447bb529673cde.rmeta: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

crates/ipd-netflow/src/lib.rs:
crates/ipd-netflow/src/collector.rs:
crates/ipd-netflow/src/ipfix.rs:
crates/ipd-netflow/src/record.rs:
crates/ipd-netflow/src/sampling.rs:
crates/ipd-netflow/src/trace.rs:
crates/ipd-netflow/src/v5.rs:
