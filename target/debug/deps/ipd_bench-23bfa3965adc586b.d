/root/repo/target/debug/deps/ipd_bench-23bfa3965adc586b.d: crates/ipd-bench/src/lib.rs

/root/repo/target/debug/deps/ipd_bench-23bfa3965adc586b: crates/ipd-bench/src/lib.rs

crates/ipd-bench/src/lib.rs:
