/root/repo/target/debug/deps/ipd_bgp-565049a2c191cb12.d: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libipd_bgp-565049a2c191cb12.rmeta: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs Cargo.toml

crates/ipd-bgp/src/lib.rs:
crates/ipd-bgp/src/dump.rs:
crates/ipd-bgp/src/rib.rs:
crates/ipd-bgp/src/route.rs:
crates/ipd-bgp/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
