/root/repo/target/debug/deps/ipd_netflow-092da50ed26e963f.d: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

/root/repo/target/debug/deps/libipd_netflow-092da50ed26e963f.rlib: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

/root/repo/target/debug/deps/libipd_netflow-092da50ed26e963f.rmeta: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

crates/ipd-netflow/src/lib.rs:
crates/ipd-netflow/src/collector.rs:
crates/ipd-netflow/src/ipfix.rs:
crates/ipd-netflow/src/record.rs:
crates/ipd-netflow/src/sampling.rs:
crates/ipd-netflow/src/trace.rs:
crates/ipd-netflow/src/v5.rs:
