/root/repo/target/debug/deps/ipd_traffic-6d1b6d6101b5d62a.d: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

/root/repo/target/debug/deps/libipd_traffic-6d1b6d6101b5d62a.rlib: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

/root/repo/target/debug/deps/libipd_traffic-6d1b6d6101b5d62a.rmeta: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

crates/ipd-traffic/src/lib.rs:
crates/ipd-traffic/src/asmodel.rs:
crates/ipd-traffic/src/diurnal.rs:
crates/ipd-traffic/src/events.rs:
crates/ipd-traffic/src/mapping.rs:
crates/ipd-traffic/src/sim.rs:
crates/ipd-traffic/src/world.rs:
