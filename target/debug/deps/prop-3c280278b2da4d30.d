/root/repo/target/debug/deps/prop-3c280278b2da4d30.d: crates/ipd-lpm/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-3c280278b2da4d30.rmeta: crates/ipd-lpm/tests/prop.rs Cargo.toml

crates/ipd-lpm/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
