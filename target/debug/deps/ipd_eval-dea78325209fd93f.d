/root/repo/target/debug/deps/ipd_eval-dea78325209fd93f.d: crates/ipd-eval/src/lib.rs crates/ipd-eval/src/accuracy.rs crates/ipd-eval/src/case_study.rs crates/ipd-eval/src/daytime.rs crates/ipd-eval/src/harness.rs crates/ipd-eval/src/ingress_count.rs crates/ipd-eval/src/longitudinal.rs crates/ipd-eval/src/param_study.rs crates/ipd-eval/src/range_dist.rs crates/ipd-eval/src/report.rs crates/ipd-eval/src/stability.rs crates/ipd-eval/src/stats.rs crates/ipd-eval/src/symmetry.rs crates/ipd-eval/src/violations.rs Cargo.toml

/root/repo/target/debug/deps/libipd_eval-dea78325209fd93f.rmeta: crates/ipd-eval/src/lib.rs crates/ipd-eval/src/accuracy.rs crates/ipd-eval/src/case_study.rs crates/ipd-eval/src/daytime.rs crates/ipd-eval/src/harness.rs crates/ipd-eval/src/ingress_count.rs crates/ipd-eval/src/longitudinal.rs crates/ipd-eval/src/param_study.rs crates/ipd-eval/src/range_dist.rs crates/ipd-eval/src/report.rs crates/ipd-eval/src/stability.rs crates/ipd-eval/src/stats.rs crates/ipd-eval/src/symmetry.rs crates/ipd-eval/src/violations.rs Cargo.toml

crates/ipd-eval/src/lib.rs:
crates/ipd-eval/src/accuracy.rs:
crates/ipd-eval/src/case_study.rs:
crates/ipd-eval/src/daytime.rs:
crates/ipd-eval/src/harness.rs:
crates/ipd-eval/src/ingress_count.rs:
crates/ipd-eval/src/longitudinal.rs:
crates/ipd-eval/src/param_study.rs:
crates/ipd-eval/src/range_dist.rs:
crates/ipd-eval/src/report.rs:
crates/ipd-eval/src/stability.rs:
crates/ipd-eval/src/stats.rs:
crates/ipd-eval/src/symmetry.rs:
crates/ipd-eval/src/violations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
