/root/repo/target/debug/deps/ipd_bench-f45a17a2d1bf90fb.d: crates/ipd-bench/src/lib.rs

/root/repo/target/debug/deps/libipd_bench-f45a17a2d1bf90fb.rlib: crates/ipd-bench/src/lib.rs

/root/repo/target/debug/deps/libipd_bench-f45a17a2d1bf90fb.rmeta: crates/ipd-bench/src/lib.rs

crates/ipd-bench/src/lib.rs:
