/root/repo/target/debug/deps/ipd_stattime-e509617813d0d5ec.d: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

/root/repo/target/debug/deps/ipd_stattime-e509617813d0d5ec: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

crates/ipd-stattime/src/lib.rs:
crates/ipd-stattime/src/bucketer.rs:
crates/ipd-stattime/src/drift.rs:
