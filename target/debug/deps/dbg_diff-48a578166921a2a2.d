/root/repo/target/debug/deps/dbg_diff-48a578166921a2a2.d: crates/ipd-core/tests/dbg_diff.rs

/root/repo/target/debug/deps/dbg_diff-48a578166921a2a2: crates/ipd-core/tests/dbg_diff.rs

crates/ipd-core/tests/dbg_diff.rs:
