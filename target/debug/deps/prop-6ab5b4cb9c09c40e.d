/root/repo/target/debug/deps/prop-6ab5b4cb9c09c40e.d: crates/ipd-stattime/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-6ab5b4cb9c09c40e.rmeta: crates/ipd-stattime/tests/prop.rs Cargo.toml

crates/ipd-stattime/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
