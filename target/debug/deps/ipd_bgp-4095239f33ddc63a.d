/root/repo/target/debug/deps/ipd_bgp-4095239f33ddc63a.d: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

/root/repo/target/debug/deps/libipd_bgp-4095239f33ddc63a.rlib: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

/root/repo/target/debug/deps/libipd_bgp-4095239f33ddc63a.rmeta: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

crates/ipd-bgp/src/lib.rs:
crates/ipd-bgp/src/dump.rs:
crates/ipd-bgp/src/rib.rs:
crates/ipd-bgp/src/route.rs:
crates/ipd-bgp/src/stats.rs:
