/root/repo/target/debug/deps/ipd_tool-9e7f5c8a3f58b1c9.d: crates/ipd-cli/src/main.rs crates/ipd-cli/src/args.rs

/root/repo/target/debug/deps/ipd_tool-9e7f5c8a3f58b1c9: crates/ipd-cli/src/main.rs crates/ipd-cli/src/args.rs

crates/ipd-cli/src/main.rs:
crates/ipd-cli/src/args.rs:
