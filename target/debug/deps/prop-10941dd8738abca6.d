/root/repo/target/debug/deps/prop-10941dd8738abca6.d: crates/ipd-core/tests/prop.rs

/root/repo/target/debug/deps/prop-10941dd8738abca6: crates/ipd-core/tests/prop.rs

crates/ipd-core/tests/prop.rs:
