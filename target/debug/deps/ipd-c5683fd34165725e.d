/root/repo/target/debug/deps/ipd-c5683fd34165725e.d: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

/root/repo/target/debug/deps/ipd-c5683fd34165725e: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

crates/ipd-core/src/lib.rs:
crates/ipd-core/src/engine.rs:
crates/ipd-core/src/ingress.rs:
crates/ipd-core/src/output.rs:
crates/ipd-core/src/params.rs:
crates/ipd-core/src/pipeline.rs:
crates/ipd-core/src/range.rs:
crates/ipd-core/src/shard.rs:
crates/ipd-core/src/trie.rs:
