/root/repo/target/debug/examples/live_pipeline-79dd3f3a49cfa0db.d: examples/live_pipeline.rs

/root/repo/target/debug/examples/live_pipeline-79dd3f3a49cfa0db: examples/live_pipeline.rs

examples/live_pipeline.rs:
