/root/repo/target/debug/examples/mini_internet-7c0e465f47a197db.d: examples/mini_internet.rs

/root/repo/target/debug/examples/mini_internet-7c0e465f47a197db: examples/mini_internet.rs

examples/mini_internet.rs:
