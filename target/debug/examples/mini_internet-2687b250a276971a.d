/root/repo/target/debug/examples/mini_internet-2687b250a276971a.d: examples/mini_internet.rs Cargo.toml

/root/repo/target/debug/examples/libmini_internet-2687b250a276971a.rmeta: examples/mini_internet.rs Cargo.toml

examples/mini_internet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
