/root/repo/target/debug/examples/parameter_sweep-6e7ff46f0eb0aa87.d: examples/parameter_sweep.rs

/root/repo/target/debug/examples/parameter_sweep-6e7ff46f0eb0aa87: examples/parameter_sweep.rs

examples/parameter_sweep.rs:
