/root/repo/target/debug/examples/quickstart-a5015d6b7cc1cf8e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a5015d6b7cc1cf8e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
