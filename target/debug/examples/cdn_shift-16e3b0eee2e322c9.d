/root/repo/target/debug/examples/cdn_shift-16e3b0eee2e322c9.d: examples/cdn_shift.rs

/root/repo/target/debug/examples/cdn_shift-16e3b0eee2e322c9: examples/cdn_shift.rs

examples/cdn_shift.rs:
