/root/repo/target/debug/examples/peering_violation-baba2f6b75bedbcb.d: examples/peering_violation.rs

/root/repo/target/debug/examples/peering_violation-baba2f6b75bedbcb: examples/peering_violation.rs

examples/peering_violation.rs:
