/root/repo/target/debug/examples/peering_violation-516346b36460c98c.d: examples/peering_violation.rs Cargo.toml

/root/repo/target/debug/examples/libpeering_violation-516346b36460c98c.rmeta: examples/peering_violation.rs Cargo.toml

examples/peering_violation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
