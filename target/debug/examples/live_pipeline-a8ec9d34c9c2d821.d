/root/repo/target/debug/examples/live_pipeline-a8ec9d34c9c2d821.d: examples/live_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/liblive_pipeline-a8ec9d34c9c2d821.rmeta: examples/live_pipeline.rs Cargo.toml

examples/live_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
