/root/repo/target/debug/examples/quickstart-84d3bf5be3a30796.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-84d3bf5be3a30796: examples/quickstart.rs

examples/quickstart.rs:
