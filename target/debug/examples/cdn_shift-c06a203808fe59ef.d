/root/repo/target/debug/examples/cdn_shift-c06a203808fe59ef.d: examples/cdn_shift.rs Cargo.toml

/root/repo/target/debug/examples/libcdn_shift-c06a203808fe59ef.rmeta: examples/cdn_shift.rs Cargo.toml

examples/cdn_shift.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
