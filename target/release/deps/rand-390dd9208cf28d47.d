/root/repo/target/release/deps/rand-390dd9208cf28d47.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-390dd9208cf28d47.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-390dd9208cf28d47.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
