/root/repo/target/release/deps/ipd_bench-27f0105c9452f2e2.d: crates/ipd-bench/src/lib.rs

/root/repo/target/release/deps/libipd_bench-27f0105c9452f2e2.rlib: crates/ipd-bench/src/lib.rs

/root/repo/target/release/deps/libipd_bench-27f0105c9452f2e2.rmeta: crates/ipd-bench/src/lib.rs

crates/ipd-bench/src/lib.rs:
