/root/repo/target/release/deps/ipd_stattime-cde3df69e2fa218d.d: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

/root/repo/target/release/deps/libipd_stattime-cde3df69e2fa218d.rlib: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

/root/repo/target/release/deps/libipd_stattime-cde3df69e2fa218d.rmeta: crates/ipd-stattime/src/lib.rs crates/ipd-stattime/src/bucketer.rs crates/ipd-stattime/src/drift.rs

crates/ipd-stattime/src/lib.rs:
crates/ipd-stattime/src/bucketer.rs:
crates/ipd-stattime/src/drift.rs:
