/root/repo/target/release/deps/criterion-fb57093e2e774187.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-fb57093e2e774187.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-fb57093e2e774187.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
