/root/repo/target/release/deps/serde_derive-589b1f112a49899c.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-589b1f112a49899c.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
