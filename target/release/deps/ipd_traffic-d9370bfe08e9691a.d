/root/repo/target/release/deps/ipd_traffic-d9370bfe08e9691a.d: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

/root/repo/target/release/deps/libipd_traffic-d9370bfe08e9691a.rlib: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

/root/repo/target/release/deps/libipd_traffic-d9370bfe08e9691a.rmeta: crates/ipd-traffic/src/lib.rs crates/ipd-traffic/src/asmodel.rs crates/ipd-traffic/src/diurnal.rs crates/ipd-traffic/src/events.rs crates/ipd-traffic/src/mapping.rs crates/ipd-traffic/src/sim.rs crates/ipd-traffic/src/world.rs

crates/ipd-traffic/src/lib.rs:
crates/ipd-traffic/src/asmodel.rs:
crates/ipd-traffic/src/diurnal.rs:
crates/ipd-traffic/src/events.rs:
crates/ipd-traffic/src/mapping.rs:
crates/ipd-traffic/src/sim.rs:
crates/ipd-traffic/src/world.rs:
