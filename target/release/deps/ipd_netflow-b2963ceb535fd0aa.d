/root/repo/target/release/deps/ipd_netflow-b2963ceb535fd0aa.d: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

/root/repo/target/release/deps/libipd_netflow-b2963ceb535fd0aa.rlib: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

/root/repo/target/release/deps/libipd_netflow-b2963ceb535fd0aa.rmeta: crates/ipd-netflow/src/lib.rs crates/ipd-netflow/src/collector.rs crates/ipd-netflow/src/ipfix.rs crates/ipd-netflow/src/record.rs crates/ipd-netflow/src/sampling.rs crates/ipd-netflow/src/trace.rs crates/ipd-netflow/src/v5.rs

crates/ipd-netflow/src/lib.rs:
crates/ipd-netflow/src/collector.rs:
crates/ipd-netflow/src/ipfix.rs:
crates/ipd-netflow/src/record.rs:
crates/ipd-netflow/src/sampling.rs:
crates/ipd-netflow/src/trace.rs:
crates/ipd-netflow/src/v5.rs:
