/root/repo/target/release/deps/ipd_suite-37e22fdc165e7c20.d: src/lib.rs

/root/repo/target/release/deps/libipd_suite-37e22fdc165e7c20.rlib: src/lib.rs

/root/repo/target/release/deps/libipd_suite-37e22fdc165e7c20.rmeta: src/lib.rs

src/lib.rs:
