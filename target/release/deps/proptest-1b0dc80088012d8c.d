/root/repo/target/release/deps/proptest-1b0dc80088012d8c.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1b0dc80088012d8c.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1b0dc80088012d8c.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
