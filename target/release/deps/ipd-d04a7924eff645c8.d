/root/repo/target/release/deps/ipd-d04a7924eff645c8.d: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

/root/repo/target/release/deps/libipd-d04a7924eff645c8.rlib: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

/root/repo/target/release/deps/libipd-d04a7924eff645c8.rmeta: crates/ipd-core/src/lib.rs crates/ipd-core/src/engine.rs crates/ipd-core/src/ingress.rs crates/ipd-core/src/output.rs crates/ipd-core/src/params.rs crates/ipd-core/src/pipeline.rs crates/ipd-core/src/range.rs crates/ipd-core/src/shard.rs crates/ipd-core/src/trie.rs

crates/ipd-core/src/lib.rs:
crates/ipd-core/src/engine.rs:
crates/ipd-core/src/ingress.rs:
crates/ipd-core/src/output.rs:
crates/ipd-core/src/params.rs:
crates/ipd-core/src/pipeline.rs:
crates/ipd-core/src/range.rs:
crates/ipd-core/src/shard.rs:
crates/ipd-core/src/trie.rs:
