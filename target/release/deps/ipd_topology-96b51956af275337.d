/root/repo/target/release/deps/ipd_topology-96b51956af275337.d: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

/root/repo/target/release/deps/libipd_topology-96b51956af275337.rlib: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

/root/repo/target/release/deps/libipd_topology-96b51956af275337.rmeta: crates/ipd-topology/src/lib.rs crates/ipd-topology/src/builder.rs crates/ipd-topology/src/generate.rs crates/ipd-topology/src/model.rs

crates/ipd-topology/src/lib.rs:
crates/ipd-topology/src/builder.rs:
crates/ipd-topology/src/generate.rs:
crates/ipd-topology/src/model.rs:
