/root/repo/target/release/deps/serde-66fddf7612b4d606.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-66fddf7612b4d606.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-66fddf7612b4d606.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
