/root/repo/target/release/deps/sharded-b8c4ed00e76352ad.d: crates/ipd-bench/benches/sharded.rs

/root/repo/target/release/deps/sharded-b8c4ed00e76352ad: crates/ipd-bench/benches/sharded.rs

crates/ipd-bench/benches/sharded.rs:
