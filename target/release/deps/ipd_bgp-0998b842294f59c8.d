/root/repo/target/release/deps/ipd_bgp-0998b842294f59c8.d: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

/root/repo/target/release/deps/libipd_bgp-0998b842294f59c8.rlib: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

/root/repo/target/release/deps/libipd_bgp-0998b842294f59c8.rmeta: crates/ipd-bgp/src/lib.rs crates/ipd-bgp/src/dump.rs crates/ipd-bgp/src/rib.rs crates/ipd-bgp/src/route.rs crates/ipd-bgp/src/stats.rs

crates/ipd-bgp/src/lib.rs:
crates/ipd-bgp/src/dump.rs:
crates/ipd-bgp/src/rib.rs:
crates/ipd-bgp/src/route.rs:
crates/ipd-bgp/src/stats.rs:
