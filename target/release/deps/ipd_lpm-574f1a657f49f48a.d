/root/repo/target/release/deps/ipd_lpm-574f1a657f49f48a.d: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

/root/repo/target/release/deps/libipd_lpm-574f1a657f49f48a.rlib: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

/root/repo/target/release/deps/libipd_lpm-574f1a657f49f48a.rmeta: crates/ipd-lpm/src/lib.rs crates/ipd-lpm/src/addr.rs crates/ipd-lpm/src/prefix.rs crates/ipd-lpm/src/trie.rs

crates/ipd-lpm/src/lib.rs:
crates/ipd-lpm/src/addr.rs:
crates/ipd-lpm/src/prefix.rs:
crates/ipd-lpm/src/trie.rs:
