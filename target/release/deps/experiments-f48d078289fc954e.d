/root/repo/target/release/deps/experiments-f48d078289fc954e.d: crates/ipd-eval/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-f48d078289fc954e: crates/ipd-eval/src/bin/experiments.rs

crates/ipd-eval/src/bin/experiments.rs:
