/root/repo/target/release/deps/bytes-92d4693772f5458a.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-92d4693772f5458a.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-92d4693772f5458a.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
