/root/repo/target/release/deps/ipd_tool-b4da67d2cc1e28be.d: crates/ipd-cli/src/main.rs crates/ipd-cli/src/args.rs

/root/repo/target/release/deps/ipd_tool-b4da67d2cc1e28be: crates/ipd-cli/src/main.rs crates/ipd-cli/src/args.rs

crates/ipd-cli/src/main.rs:
crates/ipd-cli/src/args.rs:
