//! Minimal offline stand-in for the `crossbeam` crate (see `shims/README.md`).
//!
//! Only `channel::bounded` is provided: a blocking MPMC queue built on
//! `Mutex` + `Condvar` with crossbeam's disconnect semantics — `send` fails
//! once every `Receiver` is gone, `recv`/`iter` end once every `Sender` is
//! gone and the queue has drained.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when the queue gains an item or all senders disconnect.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or all receivers disconnect.
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; gives
    /// the unsent value back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Create a bounded MPMC channel. `cap = 0` is treated as capacity 1
    /// (the real crate offers rendezvous semantics; nothing here uses them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue. Fails if every receiver
        /// has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.capacity {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.shared.not_full.wait(inner).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives. Fails once the channel is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator; ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator over currently queued values.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of values currently queued (racy by nature, like the real
        /// crate's `len` — use for monitoring, not control flow).
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty (racy, like [`len`](Self::len)).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the queue is at capacity — i.e. senders may be parked in
        /// `send` (racy, like [`len`](Self::len)). Matches the real crate's
        /// `Receiver::is_full`.
        pub fn is_full(&self) -> bool {
            let inner = self.shared.inner.lock().unwrap();
            inner.queue.len() >= inner.capacity
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, TryRecvError};
    use std::thread;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn blocking_backpressure_across_threads() {
        let (tx, rx) = bounded(2);
        let producer = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_fails_after_senders_drop_and_drain() {
        let (tx, rx) = bounded(4);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_clone_both_sides() {
        let (tx, rx) = bounded(16);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        let consumers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|r| thread::spawn(move || r.iter().count()))
            .collect();
        for t in [tx, tx2] {
            thread::spawn(move || {
                for i in 0..500 {
                    t.send(i).unwrap();
                }
            });
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn try_iter_never_blocks() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }
}
