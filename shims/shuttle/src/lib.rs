//! Offline stand-in for the `shuttle` crate: a deterministic scheduled
//! executor for exploring thread interleavings.
//!
//! The real shuttle library intercepts `std::sync` at compile time and
//! explores schedules with partial-order reduction. This shim keeps the part
//! the IPD interleaving harness needs — *deterministic, seed-addressable
//! schedules over cooperatively yielding tasks* — and nothing else:
//!
//! * [`run`] executes a scenario under a seeded scheduler. Exactly one task
//!   runs at a time (tasks are real OS threads, but a baton protocol ensures
//!   mutual exclusion), so every execution is a serialisation of the tasks'
//!   yield-to-yield segments.
//! * [`spawn`] registers a new task with the current scheduler.
//! * [`yield_now`] is a scheduling point: the scheduler picks the next
//!   runnable task with a seeded xorshift generator and records the choice
//!   into a rolling FNV-1a trace hash. Outside a [`run`] it is a no-op, which
//!   lets library code call it unconditionally via an instrumentation hook.
//!
//! Two runs with the same seed and the same scenario make identical scheduling
//! decisions — a failing seed reproduces exactly. Distinct schedules are
//! countable via [`Run::trace`]: the harness loops seeds and hashes traces
//! into a set until it has explored as many distinct interleavings as the
//! scenario demands.
//!
//! The scheduler is cooperative: a task that blocks on anything other than
//! another task's yield (e.g. an external lock held by a non-task thread)
//! would starve the run, so scenarios must confine cross-task blocking to
//! yield points. A watchdog turns such mistakes into a panic rather than a
//! hung test, and a step cap bounds livelocks (e.g. a reader retry loop that
//! is never scheduled against its writer — the seeded chooser makes this
//! vanishingly unlikely, the cap makes it finite).

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// No task is scheduled (all blocked in their baton wait or none left).
const IDLE: usize = usize::MAX;
/// Upper bound on scheduling decisions per run; beyond this the run aborts.
const MAX_STEPS: usize = 1_000_000;
/// How long a task waits for its baton before declaring the run wedged.
const WATCHDOG: Duration = Duration::from_secs(60);

/// Outcome of one scheduled execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// FNV-1a hash of the sequence of scheduling choices — two runs with
    /// equal traces executed the same interleaving.
    pub trace: u64,
    /// Number of scheduling decisions taken.
    pub steps: usize,
}

struct State {
    /// Task ids ready to run (the active task is not in this list).
    runnable: Vec<usize>,
    /// Task currently holding the baton, or [`IDLE`].
    active: usize,
    /// Tasks spawned and not yet finished.
    live: usize,
    next_id: usize,
    rng: u64,
    trace: u64,
    steps: usize,
    /// Set when any task panics or a limit trips; unblocks everyone.
    abort: bool,
    payload: Option<Box<dyn Any + Send>>,
    joins: Vec<JoinHandle<()>>,
}

struct Sched {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

fn fnv1a(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

fn xorshift(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x
}

impl Sched {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A task that panicked inside the harness poisons nothing of ours on
        // purpose, but assertion panics in scenario code can poison the state
        // mutex while it is held across a notify; recover the guard — the
        // abort flag, not poisoning, is the corruption signal here.
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Pick the next active task among `runnable`, recording the choice.
    fn pick_next(&self, st: &mut State) {
        if st.runnable.is_empty() {
            st.active = IDLE;
            return;
        }
        let i = (xorshift(&mut st.rng) % st.runnable.len() as u64) as usize;
        let chosen = st.runnable.swap_remove(i);
        st.active = chosen;
        st.steps += 1;
        st.trace = fnv1a(st.trace, chosen as u64);
    }

    fn begin_abort(&self, st: &mut State, payload: Box<dyn Any + Send>) {
        if st.payload.is_none() {
            st.payload = Some(payload);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Block until this task holds the baton. Panics (aborting the run) if
    /// the watchdog fires or another task already aborted.
    fn wait_for_turn(&self, id: usize) {
        let mut st = self.lock();
        let mut waited = Duration::ZERO;
        while st.active != id && !st.abort {
            let (g, t) = match self.cv.wait_timeout(st, WATCHDOG) {
                Ok(r) => r,
                Err(p) => {
                    let (g, t) = p.into_inner();
                    (g, t)
                }
            };
            st = g;
            if t.timed_out() {
                waited += WATCHDOG;
            }
            if waited >= WATCHDOG {
                self.begin_abort(
                    &mut st,
                    Box::new("shuttle: watchdog fired (a task blocked outside a yield point)"),
                );
                break;
            }
        }
        let abort = st.abort;
        drop(st);
        if abort {
            panic!("shuttle: run aborted");
        }
    }
}

fn task_main(sched: Arc<Sched>, id: usize, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), id)));
    sched.wait_for_turn(id);
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut st = sched.lock();
    st.live -= 1;
    match result {
        Ok(()) => {
            if !st.abort {
                sched.pick_next(&mut st);
            }
        }
        Err(payload) => {
            // An "aborted" panic propagated from wait_for_turn is secondary;
            // keep the first real payload.
            sched.begin_abort(&mut st, payload);
        }
    }
    sched.cv.notify_all();
}

/// Execute `body` (task 0) and everything it [`spawn`]s under one seeded
/// schedule. Returns the trace fingerprint; panics propagate the first task
/// panic to the caller.
pub fn run(seed: u64, body: impl FnOnce() + Send + 'static) -> Run {
    CTX.with(|c| {
        assert!(c.borrow().is_none(), "shuttle::run cannot be nested");
    });
    let sched = Arc::new(Sched {
        state: Mutex::new(State {
            runnable: Vec::new(),
            active: 0,
            live: 1,
            next_id: 1,
            // Never let the xorshift state be zero (fixed point).
            rng: seed | 1,
            trace: 0xcbf2_9ce4_8422_2325,
            steps: 0,
            abort: false,
            payload: None,
            joins: Vec::new(),
        }),
        cv: Condvar::new(),
    });
    let s0 = Arc::clone(&sched);
    let h0 = std::thread::spawn(move || task_main(s0, 0, Box::new(body)));
    // Wait for every task (including ones spawned later) to finish.
    {
        let mut st = sched.lock();
        let mut waited = Duration::ZERO;
        while st.live > 0 {
            let (g, t) = match sched.cv.wait_timeout(st, WATCHDOG) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            st = g;
            if t.timed_out() {
                waited += WATCHDOG;
                if waited >= WATCHDOG * 2 {
                    sched.begin_abort(&mut st, Box::new("shuttle: run never finished"));
                    break;
                }
            }
        }
    }
    let joins = {
        let mut st = sched.lock();
        std::mem::take(&mut st.joins)
    };
    let _ = h0.join();
    for h in joins {
        let _ = h.join();
    }
    let mut st = sched.lock();
    if let Some(p) = st.payload.take() {
        drop(st);
        panic::resume_unwind(p);
    }
    Run {
        trace: st.trace,
        steps: st.steps,
    }
}

/// Register a new task with the current scheduler. The task becomes runnable
/// immediately but only executes when the scheduler picks it.
///
/// Panics when called outside a [`run`] — spawning real uncoordinated threads
/// would silently void the determinism guarantee.
pub fn spawn(f: impl FnOnce() + Send + 'static) {
    let sched = CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|(s, _)| Arc::clone(s))
            .expect("shuttle::spawn outside shuttle::run")
    });
    let s2 = Arc::clone(&sched);
    let mut st = sched.lock();
    let id = st.next_id;
    st.next_id += 1;
    st.live += 1;
    st.runnable.push(id);
    let h = std::thread::spawn(move || task_main(s2, id, Box::new(f)));
    st.joins.push(h);
}

/// A scheduling point. Inside a [`run`], hands the baton to a seeded choice
/// among the runnable tasks (possibly this one); outside, a no-op.
pub fn yield_now() {
    let ctx = CTX.with(|c| c.borrow().as_ref().map(|(s, id)| (Arc::clone(s), *id)));
    let Some((sched, id)) = ctx else { return };
    {
        let mut st = sched.lock();
        if st.abort {
            drop(st);
            panic!("shuttle: run aborted");
        }
        if st.steps >= MAX_STEPS {
            sched.begin_abort(&mut st, Box::new("shuttle: step cap exceeded (livelock?)"));
            drop(st);
            panic!("shuttle: run aborted");
        }
        debug_assert_eq!(st.active, id, "yield_now from a task without the baton");
        st.runnable.push(id);
        sched.pick_next(&mut st);
        if st.active == id {
            return; // chose ourselves; keep running
        }
        sched.cv.notify_all();
    }
    sched.wait_for_turn(id);
}

/// Whether the calling thread is executing inside a [`run`].
pub fn in_run() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn same_seed_same_trace() {
        let mk = || {
            let counter = Arc::new(AtomicU64::new(0));
            let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
            move || {
                spawn(move || {
                    for _ in 0..5 {
                        a.fetch_add(1, Ordering::SeqCst);
                        yield_now();
                    }
                });
                for _ in 0..5 {
                    b.fetch_add(10, Ordering::SeqCst);
                    yield_now();
                }
            }
        };
        let r1 = run(42, mk());
        let r2 = run(42, mk());
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_reach_distinct_traces() {
        let mut traces = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let v = Arc::new(AtomicU64::new(0));
            let (a, b) = (Arc::clone(&v), Arc::clone(&v));
            let r = run(seed, move || {
                spawn(move || {
                    for _ in 0..4 {
                        a.fetch_add(1, Ordering::SeqCst);
                        yield_now();
                    }
                });
                for _ in 0..4 {
                    b.fetch_add(1, Ordering::SeqCst);
                    yield_now();
                }
            });
            traces.insert(r.trace);
        }
        assert!(
            traces.len() > 20,
            "expected schedule diversity, got {}",
            traces.len()
        );
    }

    #[test]
    fn interleaving_is_exclusive() {
        // With the baton protocol, increments between yields are atomic
        // segments: a non-atomic read-modify-write per segment never tears.
        for seed in 0..50u64 {
            let v = Arc::new(AtomicU64::new(0));
            let (a, b) = (Arc::clone(&v), Arc::clone(&v));
            let fin = Arc::clone(&v);
            run(seed, move || {
                spawn(move || {
                    for _ in 0..10 {
                        let x = a.load(Ordering::SeqCst);
                        a.store(x + 1, Ordering::SeqCst);
                        yield_now();
                    }
                });
                for _ in 0..10 {
                    let x = b.load(Ordering::SeqCst);
                    b.store(x + 1, Ordering::SeqCst);
                    yield_now();
                }
                // Task 0 may finish before the spawned task; the final total
                // is checked by whoever runs last via the shared counter.
            });
            assert_eq!(fin.load(Ordering::SeqCst), 20, "seed {seed}");
        }
    }

    #[test]
    fn task_panic_propagates() {
        let r = panic::catch_unwind(|| {
            run(7, || {
                spawn(|| panic!("boom from task"));
                for _ in 0..10 {
                    yield_now();
                }
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn yield_outside_run_is_noop() {
        yield_now();
        assert!(!in_run());
    }
}
