//! Minimal offline stand-in for the `bytes` crate (see `shims/README.md`).
//!
//! `Bytes` is a cheaply-cloneable immutable byte buffer, `BytesMut` a growable
//! builder, and `Buf`/`BufMut` the big-endian cursor traits — exactly the
//! subset the NetFlow/IPFIX codecs and the pipeline use. No splitting,
//! no zero-copy slicing.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer for building messages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

macro_rules! get_methods {
    ($($name:ident => $t:ty),*) => {$(
        /// Read a big-endian value, advancing the cursor.
        ///
        /// # Panics
        /// Panics if fewer than `size_of::<T>()` bytes remain.
        fn $name(&mut self) -> $t {
            const N: usize = std::mem::size_of::<$t>();
            let mut raw = [0u8; N];
            self.copy_to_slice(&mut raw);
            <$t>::from_be_bytes(raw)
        }
    )*};
}

/// Read cursor over a byte buffer (big-endian accessors).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    get_methods!(
        get_u8 => u8, get_u16 => u16, get_u32 => u32,
        get_u64 => u64, get_u128 => u128
    );
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

macro_rules! put_methods {
    ($($name:ident => $t:ty),*) => {$(
        /// Write a big-endian value, advancing the cursor.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_be_bytes());
        }
    )*};
}

/// Write cursor over a byte buffer (big-endian accessors).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    put_methods!(
        put_u8 => u8, put_u16 => u16, put_u32 => u32,
        put_u64 => u64, put_u128 => u128
    );
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for &mut [u8] {
    /// # Panics
    /// Panics if the slice has fewer than `src.len()` bytes left.
    fn put_slice(&mut self, src: &[u8]) {
        assert!(src.len() <= self.len(), "write past end of buffer");
        let (head, rest) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_bytesmut() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u16(0xBEEF);
        b.put_u32(7);
        b.put_u64(u64::MAX);
        b.put_u8(3);
        let frozen = b.freeze();
        let mut r = &frozen[..];
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 7);
        assert_eq!(r.get_u64(), u64::MAX);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn fixed_slice_writer_advances() {
        let mut buf = [0u8; 12];
        {
            let mut w = &mut buf[..];
            w.put_u64(0x0102030405060708);
            w.put_u32(0x0A0B0C0D);
            assert!(w.is_empty());
        }
        assert_eq!(buf[..8], 0x0102030405060708u64.to_be_bytes());
        let mut r = &buf[8..];
        assert_eq!(r.get_u32(), 0x0A0B0C0D);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = &data[..];
        r.advance(3);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 4);
    }

    #[test]
    fn u128_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u128(u128::MAX - 17);
        let v = b.freeze();
        let mut r = &v[..];
        assert_eq!(r.get_u128(), u128::MAX - 17);
    }
}
