//! Minimal offline stand-in for `serde_derive` (see `shims/README.md`).
//!
//! Emits marker-trait impls only — the shimmed `serde::Serialize` /
//! `serde::Deserialize` traits carry no methods, so deriving them just makes
//! the `#[derive(...)]` attributes compile. `#[serde(...)]` field/container
//! attributes are accepted and ignored. Hand-rolled token scanning instead of
//! `syn` keeps this crate dependency-free; generic types are not supported
//! (nothing in this workspace derives serde on a generic type).

use proc_macro::{TokenStream, TokenTree};

/// Find the type name: the identifier following `struct`, `enum`, or `union`.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tree in input {
        match tree {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_keyword {
                    return s;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_keyword = true;
                }
            }
            _ => {
                if saw_keyword {
                    break;
                }
            }
        }
    }
    panic!("serde shim derive: could not find type name in input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
