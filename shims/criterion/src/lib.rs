//! Minimal offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Benchmarks run and report a wall-clock mean per iteration plus throughput;
//! there is no statistical analysis, outlier rejection, or HTML report. The
//! measurement loop auto-calibrates the iteration count to target roughly
//! `sample_size` × ~30 ms of measurement per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: scales the per-iteration time into a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Controls how `iter_batched` amortizes setup; the shim runs one setup per
/// timed routine call regardless, so this only exists for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, 10, &mut f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.throughput, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.throughput, self.sample_size, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(name: &str, throughput: Option<Throughput>, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        total: Duration::ZERO,
        iterations: 0,
        sample_size,
    };
    f(&mut bencher);
    let iters = bencher.iterations.max(1);
    let per_iter = bencher.total.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format_rate(n as f64 / (per_iter * 1e-9), "elem/s"),
        Throughput::Bytes(n) => format_rate(n as f64 / (per_iter * 1e-9), "B/s"),
    });
    match rate {
        Some(r) => eprintln!(
            "{name:<40} {:>14} ns/iter   thrpt: {r}",
            format_ns(per_iter)
        ),
        None => eprintln!("{name:<40} {:>14} ns/iter", format_ns(per_iter)),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{:.0}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{:.2} {unit}", per_sec)
    }
}

/// Passed to the benchmark closure; accumulates timed iterations.
pub struct Bencher {
    total: Duration,
    iterations: u64,
    sample_size: usize,
}

impl Bencher {
    /// Per-sample measurement budget: keeps full `cargo bench` runs in
    /// seconds, not minutes, while still timing enough iterations to matter.
    const SAMPLE_BUDGET: Duration = Duration::from_millis(30);

    /// Time `routine` repeatedly, auto-scaling the iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up & calibration: run once to estimate cost.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let per_sample = (Self::SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.iterations += per_sample as u64;
        }
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with one setup+routine pair.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));

        let per_sample = (Self::SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 10_000);
        for _ in 0..self.sample_size {
            for _ in 0..per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                self.total += start.elapsed();
                self.iterations += 1;
            }
        }
    }
}

/// Declare a group-runner function that executes each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(2);
        g.throughput(Throughput::Elements(100));
        g.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("iter_batched", |b| {
            b.iter_batched(
                || vec![1u64; 100],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
