//! Minimal offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Deterministic xoshiro256++ behind the `StdRng` name, seeded via SplitMix64
//! exactly like the reference implementation recommends. The streams differ
//! from upstream `rand`'s ChaCha12 but are stable across runs and platforms,
//! which is all this workspace needs (seeded simulations + pinned digests).

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard distribution
    /// (integers: uniform over the whole domain; `f64`: uniform in `[0, 1)`;
    /// `bool`: fair coin).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics on an empty range, like upstream `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Sample `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable from 64 random bits ("standard" distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn from.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_below(rng, span as u128) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128;
                if span == <$u>::MAX as u128 {
                    // Full domain: every value equally likely.
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, u128 => u128,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize, i128 => u128
);

/// Uniform integer in `[0, bound)` (`bound > 0`) by widening multiply —
/// negligible bias at these bounds, fully deterministic.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let x = rng.next_u64() as u128;
        (x * bound) >> 64
    } else {
        u128::sample(rng) % bound
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (not upstream's ChaCha12 — see
    /// the shim README).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro reference.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-45i64..=45);
            assert!((-45..=45).contains(&y));
            let f = rng.random_range(0.35f64..0.92);
            assert!((0.35..0.92).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let big = rng.random_range(0u128..(1u128 << 63));
            assert!(big < (1u128 << 63));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(1);
        // Must not panic or loop.
        let _: u8 = rng.random_range(0u8..=u8::MAX);
        let _: u64 = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }
}
