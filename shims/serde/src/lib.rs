//! Minimal offline stand-in for `serde` (see `shims/README.md`).
//!
//! `Serialize` and `Deserialize` are empty marker traits here: the workspace
//! derives them on its model types for forward compatibility but never
//! actually serializes anything (there is no serde_json/bincode in the tree).
//! The derive macros from the sibling `serde_derive` shim emit empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
