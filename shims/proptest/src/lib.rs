//! Minimal offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the subset this workspace uses: `Strategy` with `prop_map` and
//! `boxed`, `any::<T>()`, integer range strategies, tuples, weighted
//! `prop_oneof!`, `collection::{vec, hash_map}`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Differences from upstream:
//! cases are generated from a deterministic per-test seed (FNV-1a of the test
//! name) and there is **no shrinking** — a failure reports the case index and
//! seed so it can be replayed by rerunning the test.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub use rand::Rng;
use rand::SeedableRng;

/// The RNG handed to strategies. A concrete type keeps `Strategy`
/// object-safe.
pub type TestRng = rand::rngs::StdRng;

/// Error type returned (via `Err`) by `prop_assert!` family macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of values of type `Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// directly produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    fn boxed(self) -> strategy::BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        strategy::BoxedStrategy(Rc::new(self))
    }
}

/// Types with a canonical "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64, f32);

/// Strategy producing any value of `T` (uniform over the domain).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod strategy {
    use super::*;

    /// See [`any`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased, cheaply-cloneable strategy (`Rc`, not `Box`, so the
    /// `prefix.clone()` idiom works).
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Weighted union of strategies; built by `prop_oneof!`.
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            OneOf { arms, total }
        }
    }

    impl<V> Clone for OneOf<V> {
        fn clone(&self) -> Self {
            OneOf {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.random_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weight walk exhausted")
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

pub mod collection {
    use super::*;

    /// Inclusive size bounds for collection strategies; converts from exact
    /// sizes and ranges like the upstream type.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `HashMap` built from up to `size` sampled pairs (duplicate keys
    /// collapse, as upstream).
    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> HashMapStrategy<K, V>
    where
        K::Value: Eq + Hash,
    {
        HashMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
    where
        K::Value: Eq + Hash,
    {
        type Value = HashMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Number of cases per property (override with `PROPTEST_CASES`).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Driver used by the `proptest!` macro: runs `body` for each derived case
/// seed and panics (with replay info) on the first failure.
pub fn run_proptest<F>(name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    for case in 0..case_count() {
        let seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::seed_from_u64(seed);
        if let Err(e) = body(&mut rng) {
            panic!("proptest {name}: case {case} (seed {seed:#018x}) failed: {e}");
        }
    }
}

/// Declare property tests. Each `arg in strategy` binding is regenerated per
/// case; the body may use `prop_assert!`/`prop_assert_eq!`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strats = ($($strat,)+);
                $crate::run_proptest(stringify!($name), |rng| {
                    let ($($arg,)+) = $crate::Strategy::generate(&strats, rng);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )+
    };
}

/// Weighted (`w => strategy`) or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((($weight) as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Like `assert!` but returns a `TestCaseError` so the driver can report the
/// failing case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` but returns a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!` but returns a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just};
    pub use crate::{any, Arbitrary, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Rng;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u32),
        Del(u32),
    }

    fn arb_op() -> impl Strategy<Value = Op> + Clone {
        prop_oneof![
            3 => (1u32..100).prop_map(Op::Add),
            1 => (1u32..100).prop_map(Op::Del),
        ]
    }

    proptest! {
        /// Generated vectors respect the requested length bounds.
        #[test]
        fn vec_length_bounds(xs in crate::collection::vec(any::<u32>(), 3..10)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 10);
        }

        #[test]
        fn exact_vec_length(xs in crate::collection::vec(any::<u8>(), 20)) {
            prop_assert_eq!(xs.len(), 20);
        }

        #[test]
        fn ranges_and_tuples(t in (0u16..600, any::<u32>(), 0u8..6)) {
            prop_assert!(t.0 < 600);
            prop_assert!(t.2 < 6);
        }

        #[test]
        fn oneof_clone_reuse(ops in crate::collection::vec(arb_op(), 1..50)) {
            for op in &ops {
                match op {
                    Op::Add(v) | Op::Del(v) => prop_assert!((1..100).contains(v)),
                }
            }
        }

        #[test]
        fn hash_map_sizes(m in crate::collection::hash_map(any::<u16>(), any::<u32>(), 0..40)) {
            prop_assert!(m.len() < 40);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut first: Vec<u64> = Vec::new();
        crate::run_proptest("stream_probe", |rng| {
            first.push(rng.random());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        crate::run_proptest("stream_probe", |rng| {
            second.push(rng.random());
            Ok(())
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), super::case_count() as usize);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics_with_seed() {
        crate::run_proptest("always_fails", |rng| {
            let x: u64 = rng.random();
            crate::prop_assert!(x == 1, "x was {}", x);
            Ok(())
        });
    }
}
