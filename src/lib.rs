//! `ipd-suite` — façade crate for the IPD reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests have a single dependency. Start with [`ipd`] (the
//! algorithm) and [`traffic`] (the synthetic tier-1 ISP workload).

pub use ipd;
pub use ipd_bgp as bgp;
pub use ipd_eval as eval;
pub use ipd_lpm as lpm;
pub use ipd_netflow as netflow;
pub use ipd_serve as serve;
pub use ipd_spoof as spoof;
pub use ipd_stattime as stattime;
pub use ipd_telemetry as telemetry;
pub use ipd_topology as topology;
pub use ipd_traffic as traffic;
