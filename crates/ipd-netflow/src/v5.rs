//! NetFlow v5 wire codec.
//!
//! NetFlow v5 is the least common denominator of flow export and still what
//! many border routers emit. A datagram is a 24-byte header followed by up to
//! 30 fixed 48-byte flow records; v5 carries IPv4 only. Field layout follows
//! the classic Cisco definition.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ipd_lpm::{Addr, Af};

use crate::record::{DecodeError, FlowRecord, RouterId};

/// Wire size of the v5 header.
pub const HEADER_LEN: usize = 24;
/// Wire size of one v5 flow record.
pub const RECORD_LEN: usize = 48;
/// Maximum records per datagram (fits a 1500-byte MTU).
pub const MAX_RECORDS: usize = 30;

/// A decoded v5 datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct V5Packet {
    /// Router sys-uptime at export, milliseconds.
    pub sys_uptime_ms: u32,
    /// Export wall-clock time, unix seconds (per the router's clock).
    pub unix_secs: u32,
    /// Sequence number of the first flow in this datagram.
    pub flow_sequence: u32,
    /// Export engine id.
    pub engine_id: u8,
    /// Sampling interval (1-out-of-n); 0 means unsampled.
    pub sampling_interval: u16,
    /// The flows.
    pub records: Vec<FlowRecord>,
}

/// Stateful NetFlow v5 exporter for one router: maintains the flow sequence
/// counter and packs records into MTU-sized datagrams.
#[derive(Debug)]
pub struct V5Exporter {
    router: RouterId,
    engine_id: u8,
    sampling_interval: u16,
    flow_sequence: u32,
    boot_ts: u64,
}

impl V5Exporter {
    /// A new exporter. `sampling_interval` is the configured 1-out-of-n rate
    /// advertised in every header; `boot_ts` anchors the sys-uptime field.
    pub fn new(router: RouterId, engine_id: u8, sampling_interval: u16, boot_ts: u64) -> Self {
        V5Exporter {
            router,
            engine_id,
            sampling_interval,
            flow_sequence: 0,
            boot_ts,
        }
    }

    /// Start the flow sequence at `seq` instead of 0 — long-lived exporters
    /// sit anywhere in the sequence space, including just before the u32
    /// wrap, and collectors must cope.
    pub fn with_flow_sequence(mut self, seq: u32) -> Self {
        self.flow_sequence = seq;
        self
    }

    /// The router this exporter speaks for.
    pub fn router(&self) -> RouterId {
        self.router
    }

    /// Current flow sequence (next datagram's first-flow number).
    pub fn flow_sequence(&self) -> u32 {
        self.flow_sequence
    }

    /// Encode `records` into one or more datagrams.
    ///
    /// Returns [`DecodeError::Malformed`] if any record is IPv6 — v5 cannot
    /// carry it; callers route IPv6 through the IPFIX exporter instead.
    pub fn encode(&mut self, now: u64, records: &[FlowRecord]) -> Result<Vec<Bytes>, DecodeError> {
        if records.iter().any(|r| r.af() == Af::V6) {
            return Err(DecodeError::Malformed("NetFlow v5 cannot carry IPv6 flows"));
        }
        let uptime_ms = (now.saturating_sub(self.boot_ts) as u32).wrapping_mul(1000);
        let mut out = Vec::with_capacity(records.len().div_ceil(MAX_RECORDS));
        for chunk in records.chunks(MAX_RECORDS) {
            let mut buf = BytesMut::with_capacity(HEADER_LEN + RECORD_LEN * chunk.len());
            buf.put_u16(5); // version
            buf.put_u16(chunk.len() as u16);
            buf.put_u32(uptime_ms);
            buf.put_u32(now as u32);
            buf.put_u32(0); // unix_nsecs
            buf.put_u32(self.flow_sequence);
            buf.put_u8(0); // engine_type
            buf.put_u8(self.engine_id);
            buf.put_u16(self.sampling_interval & 0x3FFF);
            for r in chunk {
                encode_record(&mut buf, uptime_ms, r);
            }
            self.flow_sequence = self.flow_sequence.wrapping_add(chunk.len() as u32);
            out.push(buf.freeze());
        }
        Ok(out)
    }
}

fn encode_record(buf: &mut BytesMut, uptime_ms: u32, r: &FlowRecord) {
    buf.put_u32(r.src.bits() as u32);
    buf.put_u32(r.dst.bits() as u32);
    buf.put_u32(0); // nexthop
    buf.put_u16(r.input_if);
    buf.put_u16(r.output_if);
    buf.put_u32(r.packets);
    buf.put_u32(r.bytes);
    buf.put_u32(uptime_ms); // first
    buf.put_u32(uptime_ms); // last
    buf.put_u16(r.src_port);
    buf.put_u16(r.dst_port);
    buf.put_u8(0); // pad1
    buf.put_u8(0); // tcp_flags
    buf.put_u8(r.proto);
    buf.put_u8(0); // tos
    buf.put_u16(0); // src_as
    buf.put_u16(0); // dst_as
    buf.put_u8(0); // src_mask
    buf.put_u8(0); // dst_mask
    buf.put_u16(0); // pad2
}

/// Decode one v5 datagram. The exporting `router` comes from the datagram's
/// network source address, which the transport (or simulation harness) knows.
pub fn decode(datagram: &[u8], router: RouterId) -> Result<V5Packet, DecodeError> {
    if datagram.len() < HEADER_LEN {
        return Err(DecodeError::Truncated {
            need: HEADER_LEN,
            have: datagram.len(),
        });
    }
    let mut buf = datagram;
    let version = buf.get_u16();
    if version != 5 {
        return Err(DecodeError::BadVersion(version));
    }
    let count = buf.get_u16() as usize;
    if count > MAX_RECORDS {
        return Err(DecodeError::Malformed("v5 record count exceeds 30"));
    }
    let sys_uptime_ms = buf.get_u32();
    let unix_secs = buf.get_u32();
    let _unix_nsecs = buf.get_u32();
    let flow_sequence = buf.get_u32();
    let _engine_type = buf.get_u8();
    let engine_id = buf.get_u8();
    let sampling_interval = buf.get_u16() & 0x3FFF;

    let need = HEADER_LEN + count * RECORD_LEN;
    if datagram.len() != need {
        return Err(DecodeError::BadLength {
            claimed: need,
            actual: datagram.len(),
        });
    }

    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let src = Addr::v4(buf.get_u32());
        let dst = Addr::v4(buf.get_u32());
        let _nexthop = buf.get_u32();
        let input_if = buf.get_u16();
        let output_if = buf.get_u16();
        let packets = buf.get_u32();
        let bytes = buf.get_u32();
        let _first = buf.get_u32();
        let _last = buf.get_u32();
        let src_port = buf.get_u16();
        let dst_port = buf.get_u16();
        let _pad1 = buf.get_u8();
        let _tcp_flags = buf.get_u8();
        let proto = buf.get_u8();
        let _tos = buf.get_u8();
        let _src_as = buf.get_u16();
        let _dst_as = buf.get_u16();
        let _src_mask = buf.get_u8();
        let _dst_mask = buf.get_u8();
        let _pad2 = buf.get_u16();
        records.push(FlowRecord {
            ts: unix_secs as u64,
            src,
            dst,
            router,
            input_if,
            output_if,
            proto,
            src_port,
            dst_port,
            packets,
            bytes,
        });
    }
    Ok(V5Packet {
        sys_uptime_ms,
        unix_secs,
        flow_sequence,
        engine_id,
        sampling_interval,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| FlowRecord {
                ts: 1_600_000_000,
                src: Addr::v4(0x0A00_0000 + i as u32),
                dst: Addr::v4(0xC633_6401),
                router: 42,
                input_if: (i % 7) as u16,
                output_if: 1,
                proto: 6,
                src_port: 443,
                dst_port: 40000 + i as u16,
                packets: 1 + i as u32,
                bytes: 1400 * (1 + i as u32),
            })
            .collect()
    }

    #[test]
    fn roundtrip_single_datagram() {
        let mut exp = V5Exporter::new(42, 1, 1000, 1_600_000_000 - 3600);
        let records = sample_records(5);
        let grams = exp.encode(1_600_000_000, &records).unwrap();
        assert_eq!(grams.len(), 1);
        assert_eq!(grams[0].len(), HEADER_LEN + 5 * RECORD_LEN);
        let pkt = decode(&grams[0], 42).unwrap();
        assert_eq!(pkt.records, records);
        assert_eq!(pkt.flow_sequence, 0);
        assert_eq!(pkt.sampling_interval, 1000);
        assert_eq!(pkt.unix_secs, 1_600_000_000);
    }

    #[test]
    fn chunking_at_30_records() {
        let mut exp = V5Exporter::new(1, 0, 1000, 0);
        let records = sample_records(65);
        let grams = exp.encode(100, &records).unwrap();
        assert_eq!(grams.len(), 3);
        let counts: Vec<usize> = grams
            .iter()
            .map(|g| decode(g, 1).unwrap().records.len())
            .collect();
        assert_eq!(counts, vec![30, 30, 5]);
        // Sequence numbers advance by the number of flows per datagram.
        let seqs: Vec<u32> = grams
            .iter()
            .map(|g| decode(g, 1).unwrap().flow_sequence)
            .collect();
        assert_eq!(seqs, vec![0, 30, 60]);
        assert_eq!(exp.flow_sequence(), 65);
    }

    #[test]
    fn rejects_ipv6() {
        let mut exp = V5Exporter::new(1, 0, 1000, 0);
        let mut records = sample_records(1);
        records.push(FlowRecord::synthetic(1, Addr::v6(0x2001 << 112), 1, 1));
        assert!(matches!(
            exp.encode(100, &records),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            decode(&[0u8; 10], 1),
            Err(DecodeError::Truncated { need: 24, have: 10 })
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut exp = V5Exporter::new(1, 0, 0, 0);
        let gram = exp.encode(100, &sample_records(1)).unwrap().remove(0);
        let mut bad = gram.to_vec();
        bad[1] = 9;
        assert!(matches!(decode(&bad, 1), Err(DecodeError::BadVersion(9))));
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut exp = V5Exporter::new(1, 0, 0, 0);
        let gram = exp.encode(100, &sample_records(2)).unwrap().remove(0);
        let bad = &gram[..gram.len() - 1];
        assert!(matches!(decode(bad, 1), Err(DecodeError::BadLength { .. })));
    }

    #[test]
    fn empty_batch_encodes_nothing() {
        let mut exp = V5Exporter::new(1, 0, 0, 0);
        assert!(exp.encode(100, &[]).unwrap().is_empty());
        assert_eq!(exp.flow_sequence(), 0);
    }

    #[test]
    fn sequence_wraps() {
        let mut exp = V5Exporter::new(1, 0, 0, 0);
        exp.flow_sequence = u32::MAX;
        let grams = exp.encode(100, &sample_records(2)).unwrap();
        assert_eq!(decode(&grams[0], 1).unwrap().flow_sequence, u32::MAX);
        assert_eq!(exp.flow_sequence(), 1);
    }
}
