//! The canonical flow record and shared error types.

use std::fmt;

use ipd_lpm::{Addr, Af};
use serde::{Deserialize, Serialize};

/// Identifier of an exporting (border) router.
///
/// In a real deployment this is derived from the exporter's source address;
/// in this reproduction the topology crate assigns dense ids, which keeps the
/// per-ingress counters in the IPD engine compact.
pub type RouterId = u32;

/// One sampled flow, as seen by the collector and consumed by IPD.
///
/// Field semantics follow NetFlow v5 / IPFIX: `packets` and `bytes` are the
/// *sampled* delta counts (multiply by the sampling interval for an estimate
/// of the true volume). `ts` is the export timestamp in unix seconds — the
/// statistical-time pre-processing (crate `ipd-stattime`) is what deals with
/// router clocks that lie about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Export timestamp, unix seconds, as claimed by the router clock.
    pub ts: u64,
    /// Source address of the flow (what IPD maps to an ingress point).
    pub src: Addr,
    /// Destination address of the flow.
    pub dst: Addr,
    /// Exporting border router.
    pub router: RouterId,
    /// SNMP ifIndex of the interface the flow *entered* on.
    pub input_if: u16,
    /// SNMP ifIndex of the interface the flow left on (0 if unknown).
    pub output_if: u16,
    /// Transport protocol (6 = TCP, 17 = UDP, ...).
    pub proto: u8,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Sampled packet count.
    pub packets: u32,
    /// Sampled byte count.
    pub bytes: u32,
}

impl FlowRecord {
    /// A minimal record carrying only what IPD strictly needs; the rest is
    /// filled with plausible defaults. Used pervasively in tests.
    pub fn synthetic(ts: u64, src: Addr, router: RouterId, input_if: u16) -> Self {
        FlowRecord {
            ts,
            src,
            dst: match src.af() {
                Af::V4 => Addr::v4(0x0A00_0001),
                Af::V6 => Addr::v6(0xfd00 << 112 | 1),
            },
            router,
            input_if,
            output_if: 0,
            proto: 6,
            src_port: 443,
            dst_port: 50000,
            packets: 1,
            bytes: 1400,
        }
    }

    /// Address family of the flow (keyed off the source address).
    pub fn af(&self) -> Af {
        self.src.af()
    }
}

/// Errors produced while decoding flow export datagrams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Datagram shorter than the fixed header.
    Truncated { need: usize, have: usize },
    /// Unsupported export version (only 5 and 10 are handled).
    BadVersion(u16),
    /// Header record/length field inconsistent with the datagram size.
    BadLength { claimed: usize, actual: usize },
    /// IPFIX data set references a template the collector has not seen.
    UnknownTemplate { domain: u32, template: u16 },
    /// IPFIX set/field structure is malformed.
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "truncated datagram: need {need} bytes, have {have}")
            }
            DecodeError::BadVersion(v) => write!(f, "unsupported flow export version {v}"),
            DecodeError::BadLength { claimed, actual } => {
                write!(
                    f,
                    "length mismatch: header claims {claimed}, datagram has {actual}"
                )
            }
            DecodeError::UnknownTemplate { domain, template } => {
                write!(f, "unknown IPFIX template {template} in domain {domain}")
            }
            DecodeError::Malformed(what) => write!(f, "malformed datagram: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_record_is_v4_when_src_is_v4() {
        let r = FlowRecord::synthetic(100, Addr::v4(0xC0000201), 7, 3);
        assert_eq!(r.af(), Af::V4);
        assert_eq!(r.router, 7);
        assert_eq!(r.input_if, 3);
        assert_eq!(r.packets, 1);
    }

    #[test]
    fn synthetic_record_v6() {
        let r = FlowRecord::synthetic(100, Addr::v6(0x2001 << 112), 1, 1);
        assert_eq!(r.af(), Af::V6);
        assert_eq!(r.dst.af(), Af::V6);
    }

    #[test]
    fn decode_error_display() {
        let e = DecodeError::Truncated { need: 24, have: 10 };
        assert!(e.to_string().contains("truncated"));
        assert!(DecodeError::BadVersion(9).to_string().contains('9'));
        assert!(DecodeError::UnknownTemplate {
            domain: 1,
            template: 256
        }
        .to_string()
        .contains("256"));
    }
}
