//! Version-sniffing flow collector.
//!
//! In the deployment (§5.7) "the machine receives and processes live 300
//! billion flow records per day" from ~3,000 routers; per-router flow-reader
//! processes decode datagrams and hand records to the IPD. This module is
//! that reader: it sniffs the export version of each datagram (NetFlow v5 or
//! IPFIX), decodes, and tracks the loss accounting a real collector needs
//! (sequence gaps mean the kernel or network dropped export datagrams).

use std::collections::HashMap;

use ipd_telemetry::{Counter, Telemetry, Watermark};

use crate::ipfix::IpfixDecoder;
use crate::record::{DecodeError, FlowRecord, RouterId};
use crate::v5;

/// Collector statistics, kept per instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Datagrams successfully decoded.
    pub datagrams: u64,
    /// Flow records extracted.
    pub records: u64,
    /// Datagrams rejected with a decode error.
    pub errors: u64,
    /// Flow records lost according to sequence-number gaps.
    pub sequence_gap: u64,
    /// Datagrams that arrived out of order (sequence behind the expected
    /// one). Reordering is not loss: the records are still delivered, so
    /// they are counted here instead of in [`CollectorStats::sequence_gap`].
    pub reordered: u64,
    /// IPFIX data sets skipped because their template id was unknown (data
    /// arrived before the template, or the template was lost).
    pub unknown_template_sets: u64,
}

/// Advance a per-peer expected sequence number past a datagram carrying `n`
/// records at sequence `seq`. Returns `(lost, reordered)`: a forward jump
/// below half the sequence space counts its gap as lost records; anything at
/// or above half the space is a late (reordered) datagram — the expected
/// sequence is left alone so the still-outstanding in-order datagram does
/// not produce a phantom gap when it arrives.
fn advance_seq(expected: &mut u32, seq: u32, n: u32) -> (u64, bool) {
    let gap = seq.wrapping_sub(*expected);
    if gap >= u32::MAX / 2 {
        return (0, true);
    }
    *expected = seq.wrapping_add(n);
    (gap as u64, false)
}

/// Telemetry handles mirroring [`CollectorStats`] into a shared
/// [`Telemetry`] registry, so a live run exposes decode health on
/// `/metrics` without polling each reader thread's stats struct. All
/// counters are deterministic: their values are pure functions of the fed
/// datagram stream.
#[derive(Debug, Clone, Default)]
struct CollectorMetrics {
    datagrams: Counter,
    records: Counter,
    errors: Counter,
    sequence_lost: Counter,
    reordered: Counter,
    unknown_template_sets: Counter,
    templates_registered: Counter,
    template_redefinitions: Counter,
    /// `ipd_collector_watermark` — high-water mark of decoded flow
    /// timestamps; the head of the end-to-end freshness chain (timing
    /// class, like all watermarks).
    watermark: Watermark,
}

impl CollectorMetrics {
    fn register(telemetry: &Telemetry) -> Self {
        CollectorMetrics {
            datagrams: telemetry.counter(
                "ipd_collector_datagrams_total",
                "Export datagrams successfully decoded",
            ),
            records: telemetry.counter(
                "ipd_collector_records_total",
                "Flow records extracted from decoded datagrams",
            ),
            errors: telemetry.counter(
                "ipd_collector_errors_total",
                "Datagrams rejected with a decode error",
            ),
            sequence_lost: telemetry.counter(
                "ipd_collector_sequence_lost_total",
                "Flow records lost according to export sequence-number gaps",
            ),
            reordered: telemetry.counter(
                "ipd_collector_reordered_total",
                "Export datagrams that arrived out of order (delivered, not lost)",
            ),
            unknown_template_sets: telemetry.counter(
                "ipd_collector_unknown_template_sets_total",
                "IPFIX data sets skipped because their template was unknown",
            ),
            templates_registered: telemetry.counter(
                "ipd_collector_templates_registered_total",
                "IPFIX templates registered for the first time",
            ),
            template_redefinitions: telemetry.counter(
                "ipd_collector_template_redefinitions_total",
                "IPFIX templates that replaced an existing definition",
            ),
            watermark: telemetry.watermark(
                "ipd_collector_watermark",
                "High-water mark of decoded flow timestamps",
            ),
        }
    }
}

/// A flow collector for any number of exporting routers.
#[derive(Debug, Default)]
pub struct Collector {
    ipfix: IpfixDecoder,
    /// Expected next v5 flow sequence per (router, engine).
    v5_seq: HashMap<(RouterId, u8), u32>,
    /// Expected next IPFIX sequence per observation domain.
    ipfix_seq: HashMap<u32, u32>,
    stats: CollectorStats,
    metrics: CollectorMetrics,
}

impl Collector {
    /// A fresh collector with empty template cache and statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// A collector that mirrors its statistics into `telemetry` as
    /// `ipd_collector_*` counters. With a disabled registry this is
    /// identical to [`Collector::new`].
    pub fn with_telemetry(telemetry: &Telemetry) -> Self {
        Collector {
            metrics: CollectorMetrics::register(telemetry),
            ..Self::default()
        }
    }

    /// Decode statistics so far.
    pub fn stats(&self) -> &CollectorStats {
        &self.stats
    }

    /// Feed one datagram from `router`; appends decoded records to `out`.
    ///
    /// Decode errors are returned *and* counted in [`CollectorStats::errors`];
    /// the collector stays usable (a malformed datagram from one router must
    /// not take down the feed of the other 2,999).
    pub fn feed(
        &mut self,
        datagram: &[u8],
        router: RouterId,
        out: &mut Vec<FlowRecord>,
    ) -> Result<usize, DecodeError> {
        if datagram.len() < 2 {
            self.stats.errors += 1;
            self.metrics.errors.inc();
            return Err(DecodeError::Truncated {
                need: 2,
                have: datagram.len(),
            });
        }
        let version = u16::from_be_bytes([datagram[0], datagram[1]]);
        let result = match version {
            5 => self.feed_v5(datagram, router, out),
            10 => self.feed_ipfix(datagram, router, out),
            v => Err(DecodeError::BadVersion(v)),
        };
        match result {
            Ok(n) => {
                self.stats.datagrams += 1;
                self.stats.records += n as u64;
                self.metrics.datagrams.inc();
                self.metrics.records.add(n as u64);
                if n > 0 {
                    // Decoders append in arrival order; the freshest flow
                    // of this datagram is the last appended (the watermark
                    // is monotone-max, so mild reordering is harmless).
                    if let Some(last) = out.last() {
                        self.metrics.watermark.record(last.ts);
                    }
                }
                Ok(n)
            }
            Err(e) => {
                self.stats.errors += 1;
                self.metrics.errors.inc();
                Err(e)
            }
        }
    }

    fn feed_v5(
        &mut self,
        datagram: &[u8],
        router: RouterId,
        out: &mut Vec<FlowRecord>,
    ) -> Result<usize, DecodeError> {
        let pkt = v5::decode(datagram, router)?;
        let key = (router, pkt.engine_id);
        let n = pkt.records.len();
        match self.v5_seq.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (lost, reordered) = advance_seq(e.get_mut(), pkt.flow_sequence, n as u32);
                self.stats.sequence_gap += lost;
                self.stats.reordered += reordered as u64;
                self.metrics.sequence_lost.add(lost);
                self.metrics.reordered.add(reordered as u64);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(pkt.flow_sequence.wrapping_add(n as u32));
            }
        }
        out.extend(pkt.records);
        Ok(n)
    }

    fn feed_ipfix(
        &mut self,
        datagram: &[u8],
        router: RouterId,
        out: &mut Vec<FlowRecord>,
    ) -> Result<usize, DecodeError> {
        let registered_before = self.ipfix.templates_registered();
        let redefined_before = self.ipfix.template_redefinitions();
        let msg = self.ipfix.decode(datagram, router)?;
        self.metrics
            .templates_registered
            .add(self.ipfix.templates_registered() - registered_before);
        self.metrics
            .template_redefinitions
            .add(self.ipfix.template_redefinitions() - redefined_before);
        self.stats.unknown_template_sets += msg.skipped_sets;
        self.metrics.unknown_template_sets.add(msg.skipped_sets);
        let n = msg.records.len();
        match self.ipfix_seq.entry(msg.domain) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (lost, reordered) = advance_seq(e.get_mut(), msg.sequence, n as u32);
                self.stats.sequence_gap += lost;
                self.stats.reordered += reordered as u64;
                self.metrics.sequence_lost.add(lost);
                self.metrics.reordered.add(reordered as u64);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(msg.sequence.wrapping_add(n as u32));
            }
        }
        out.extend(msg.records);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipfix::IpfixExporter;
    use crate::v5::V5Exporter;
    use ipd_lpm::Addr;

    fn records(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| FlowRecord::synthetic(1000, Addr::v4(0x0A000000 + i as u32), 7, 2))
            .collect()
    }

    #[test]
    fn collects_v5_and_ipfix_interleaved() {
        let mut v5exp = V5Exporter::new(7, 0, 1000, 0);
        let mut ipfixexp = IpfixExporter::new(8, 10);
        let mut col = Collector::new();
        let mut out = Vec::new();
        for g in v5exp.encode(1000, &records(3)).unwrap() {
            col.feed(&g, 7, &mut out).unwrap();
        }
        for g in ipfixexp.encode(1000, &records(2)) {
            col.feed(&g, 8, &mut out).unwrap();
        }
        assert_eq!(out.len(), 5);
        assert_eq!(col.stats().records, 5);
        assert_eq!(col.stats().datagrams, 2);
        assert_eq!(col.stats().sequence_gap, 0);
        assert_eq!(col.stats().errors, 0);
    }

    #[test]
    fn v5_sequence_gap_detected() {
        let mut exp = V5Exporter::new(7, 0, 1000, 0);
        let mut col = Collector::new();
        let mut out = Vec::new();
        let g1 = exp.encode(1000, &records(5)).unwrap().remove(0);
        let _lost = exp.encode(1000, &records(4)).unwrap(); // never fed
        let g3 = exp.encode(1000, &records(3)).unwrap().remove(0);
        col.feed(&g1, 7, &mut out).unwrap();
        col.feed(&g3, 7, &mut out).unwrap();
        assert_eq!(col.stats().sequence_gap, 4);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn ipfix_sequence_gap_detected() {
        let mut exp = IpfixExporter::new(9, 1000);
        let mut col = Collector::new();
        let mut out = Vec::new();
        let g1 = exp.encode(1000, &records(5)).remove(0);
        let _lost = exp.encode(1000, &records(7));
        let g3 = exp.encode(1000, &records(1)).remove(0);
        col.feed(&g1, 9, &mut out).unwrap();
        col.feed(&g3, 9, &mut out).unwrap();
        assert_eq!(col.stats().sequence_gap, 7);
    }

    #[test]
    fn per_router_sequences_are_independent() {
        let mut a = V5Exporter::new(1, 0, 1000, 0);
        let mut b = V5Exporter::new(2, 0, 1000, 0);
        let mut col = Collector::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            for g in a.encode(1000, &records(2)).unwrap() {
                col.feed(&g, 1, &mut out).unwrap();
            }
            for g in b.encode(1000, &records(2)).unwrap() {
                col.feed(&g, 2, &mut out).unwrap();
            }
        }
        assert_eq!(col.stats().sequence_gap, 0);
    }

    #[test]
    fn reordered_datagram_is_not_a_billion_record_gap() {
        let mut exp = V5Exporter::new(7, 0, 1000, 0);
        let mut col = Collector::new();
        let mut out = Vec::new();
        let g1 = exp.encode(1000, &records(5)).unwrap().remove(0);
        let g2 = exp.encode(1000, &records(4)).unwrap().remove(0);
        let g3 = exp.encode(1000, &records(3)).unwrap().remove(0);
        // g2 and g3 swap in flight: feed 1, 3, 2.
        col.feed(&g1, 7, &mut out).unwrap();
        col.feed(&g3, 7, &mut out).unwrap();
        col.feed(&g2, 7, &mut out).unwrap();
        // The 1→3 jump is a real 4-record gap; the late g2 is a reorder,
        // not ~u32::MAX lost records — and its records still arrive.
        assert_eq!(col.stats().sequence_gap, 4);
        assert_eq!(col.stats().reordered, 1);
        assert_eq!(out.len(), 12);
        // The late datagram must not rewind the expected sequence: the next
        // in-order datagram continues gap-free.
        let g4 = exp.encode(1000, &records(2)).unwrap().remove(0);
        col.feed(&g4, 7, &mut out).unwrap();
        assert_eq!(
            col.stats().sequence_gap,
            4,
            "no phantom gap after a reorder"
        );
        assert_eq!(col.stats().reordered, 1);
    }

    #[test]
    fn true_sequence_wraparound_is_not_a_reorder() {
        // An exporter whose sequence space wraps: 2 records before
        // u32::MAX, the next datagram starts at sequence 1 (= MAX - 2 + 3,
        // wrapped). A small forward gap across the wrap is in-order delivery.
        let mut exp = V5Exporter::new(7, 0, 1000, 0).with_flow_sequence(u32::MAX - 2);
        let mut col = Collector::new();
        let mut out = Vec::new();
        let g1 = exp.encode(1000, &records(3)).unwrap().remove(0);
        let g2 = exp.encode(1000, &records(3)).unwrap().remove(0);
        col.feed(&g1, 7, &mut out).unwrap();
        col.feed(&g2, 7, &mut out).unwrap();
        assert_eq!(col.stats().sequence_gap, 0);
        assert_eq!(col.stats().reordered, 0);
        assert_eq!(out.len(), 6);
        // A gap across the wrap still counts as loss, not reorder.
        let _lost = exp.encode(1000, &records(4)).unwrap();
        let g4 = exp.encode(1000, &records(1)).unwrap().remove(0);
        col.feed(&g4, 7, &mut out).unwrap();
        assert_eq!(col.stats().sequence_gap, 4);
        assert_eq!(col.stats().reordered, 0);
    }

    #[test]
    fn ipfix_reorder_detected() {
        let mut exp = IpfixExporter::new(9, 1);
        let mut col = Collector::new();
        let mut out = Vec::new();
        let g1 = exp.encode(1000, &records(5)).remove(0);
        let g2 = exp.encode(1000, &records(4)).remove(0);
        col.feed(&g1, 9, &mut out).unwrap();
        col.feed(&g2, 9, &mut out).unwrap();
        // Replay g1 (late duplicate / reordered): counted, nothing lost.
        col.feed(&g1, 9, &mut out).unwrap();
        assert_eq!(col.stats().reordered, 1);
        assert_eq!(col.stats().sequence_gap, 0);
    }

    #[test]
    fn telemetry_mirrors_stats_exactly() {
        use ipd_telemetry::Telemetry;

        let telemetry = Telemetry::new();
        let mut col = Collector::with_telemetry(&telemetry);
        let mut out = Vec::new();

        // Errors, a v5 gap + reorder, and an IPFIX data-before-template skip.
        let _ = col.feed(&[1], 7, &mut out);
        let mut v5exp = V5Exporter::new(7, 0, 1000, 0);
        let g1 = v5exp.encode(1000, &records(5)).unwrap().remove(0);
        let g2 = v5exp.encode(1000, &records(4)).unwrap().remove(0);
        let g3 = v5exp.encode(1000, &records(3)).unwrap().remove(0);
        col.feed(&g1, 7, &mut out).unwrap();
        col.feed(&g3, 7, &mut out).unwrap(); // 4-record gap
        col.feed(&g2, 7, &mut out).unwrap(); // late: reorder
        let mut ipfixexp = IpfixExporter::new(8, 1_000_000);
        let with_templates = ipfixexp.encode(1000, &records(2)).remove(0);
        let data_only = ipfixexp.encode(1000, &records(2)).remove(0);
        col.feed(&data_only, 8, &mut out).unwrap(); // unknown template: skipped
        col.feed(&with_templates, 8, &mut out).unwrap(); // registers 2 templates
        col.feed(&with_templates, 8, &mut out).unwrap(); // redefines 2, reorders

        let snap = telemetry.snapshot();
        let stats = col.stats();
        assert_eq!(
            snap.counter("ipd_collector_datagrams_total"),
            Some(stats.datagrams)
        );
        assert_eq!(
            snap.counter("ipd_collector_records_total"),
            Some(stats.records)
        );
        assert_eq!(
            snap.counter("ipd_collector_errors_total"),
            Some(stats.errors)
        );
        assert_eq!(
            snap.counter("ipd_collector_sequence_lost_total"),
            Some(stats.sequence_gap)
        );
        assert_eq!(
            snap.counter("ipd_collector_reordered_total"),
            Some(stats.reordered)
        );
        assert_eq!(
            snap.counter("ipd_collector_unknown_template_sets_total"),
            Some(stats.unknown_template_sets)
        );
        assert_eq!(
            snap.counter("ipd_collector_templates_registered_total"),
            Some(2)
        );
        assert_eq!(
            snap.counter("ipd_collector_template_redefinitions_total"),
            Some(2)
        );
        // Sanity: the scenario actually exercised every counter.
        assert!(stats.errors > 0 && stats.sequence_gap > 0);
        assert!(stats.reordered > 0 && stats.unknown_template_sets > 0);
    }

    #[test]
    fn disabled_telemetry_collector_matches_plain() {
        use ipd_telemetry::Telemetry;

        let mut plain = Collector::new();
        let mut instrumented = Collector::with_telemetry(&Telemetry::disabled());
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        let mut exp = V5Exporter::new(7, 0, 1000, 0);
        for _ in 0..3 {
            let g = exp.encode(1000, &records(2)).unwrap().remove(0);
            plain.feed(&g, 7, &mut out_a).unwrap();
            instrumented.feed(&g, 7, &mut out_b).unwrap();
        }
        assert_eq!(out_a, out_b);
        assert_eq!(plain.stats(), instrumented.stats());
    }

    #[test]
    fn errors_are_counted_and_survivable() {
        let mut col = Collector::new();
        let mut out = Vec::new();
        assert!(col.feed(&[1], 1, &mut out).is_err());
        assert!(col.feed(&[0, 9, 0, 0], 1, &mut out).is_err());
        assert_eq!(col.stats().errors, 2);
        // Still works afterwards.
        let mut exp = V5Exporter::new(1, 0, 1000, 0);
        let g = exp.encode(1000, &records(1)).unwrap().remove(0);
        col.feed(&g, 1, &mut out).unwrap();
        assert_eq!(col.stats().records, 1);
    }
}
