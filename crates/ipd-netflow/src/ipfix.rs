//! IPFIX (RFC 7011) subset codec.
//!
//! IPFIX is template-based: an exporter periodically sends *template sets*
//! describing the field layout of its *data sets*, and a collector keeps a
//! per-observation-domain template cache to interpret them. We implement the
//! subset the IPD deployment needs — enough to carry both IPv4 and IPv6 flow
//! records with ingress interface information — but the decoder is a real
//! template-driven parser: it walks whatever field list the template
//! declares, picks out the information elements it knows, and skips the rest.

use std::collections::HashMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ipd_lpm::{Addr, Af};

use crate::record::{DecodeError, FlowRecord, RouterId};

/// IPFIX message header length.
pub const MSG_HEADER_LEN: usize = 16;
/// Set header length.
pub const SET_HEADER_LEN: usize = 4;
/// Target maximum datagram size.
pub const MAX_DATAGRAM: usize = 1400;

/// IANA information element ids used by our templates.
pub mod ie {
    pub const OCTET_DELTA_COUNT: u16 = 1;
    pub const PACKET_DELTA_COUNT: u16 = 2;
    pub const PROTOCOL_IDENTIFIER: u16 = 4;
    pub const SOURCE_TRANSPORT_PORT: u16 = 7;
    pub const SOURCE_IPV4_ADDRESS: u16 = 8;
    pub const INGRESS_INTERFACE: u16 = 10;
    pub const DESTINATION_TRANSPORT_PORT: u16 = 11;
    pub const DESTINATION_IPV4_ADDRESS: u16 = 12;
    pub const EGRESS_INTERFACE: u16 = 14;
    pub const SOURCE_IPV6_ADDRESS: u16 = 27;
    pub const DESTINATION_IPV6_ADDRESS: u16 = 28;
}

/// Template id for IPv4 flow records.
pub const TEMPLATE_V4: u16 = 256;
/// Template id for IPv6 flow records.
pub const TEMPLATE_V6: u16 = 257;

/// A template: ordered list of (information element id, field length).
pub type Template = Vec<(u16, u16)>;

fn template_v4() -> Template {
    vec![
        (ie::SOURCE_IPV4_ADDRESS, 4),
        (ie::DESTINATION_IPV4_ADDRESS, 4),
        (ie::INGRESS_INTERFACE, 4),
        (ie::EGRESS_INTERFACE, 4),
        (ie::PACKET_DELTA_COUNT, 8),
        (ie::OCTET_DELTA_COUNT, 8),
        (ie::PROTOCOL_IDENTIFIER, 1),
        (ie::SOURCE_TRANSPORT_PORT, 2),
        (ie::DESTINATION_TRANSPORT_PORT, 2),
    ]
}

fn template_v6() -> Template {
    vec![
        (ie::SOURCE_IPV6_ADDRESS, 16),
        (ie::DESTINATION_IPV6_ADDRESS, 16),
        (ie::INGRESS_INTERFACE, 4),
        (ie::EGRESS_INTERFACE, 4),
        (ie::PACKET_DELTA_COUNT, 8),
        (ie::OCTET_DELTA_COUNT, 8),
        (ie::PROTOCOL_IDENTIFIER, 1),
        (ie::SOURCE_TRANSPORT_PORT, 2),
        (ie::DESTINATION_TRANSPORT_PORT, 2),
    ]
}

fn record_len(t: &Template) -> usize {
    t.iter().map(|&(_, l)| l as usize).sum()
}

/// Stateful IPFIX exporter for one observation domain (router).
///
/// Template sets are re-sent every `template_refresh` messages (routers do
/// this on a timer; collectors must survive joining mid-stream, which
/// [`IpfixDecoder`] exercises in tests).
#[derive(Debug)]
pub struct IpfixExporter {
    domain: u32,
    sequence: u32,
    msgs_since_template: u32,
    template_refresh: u32,
}

impl IpfixExporter {
    /// New exporter; `domain` is conventionally the router id.
    pub fn new(domain: u32, template_refresh: u32) -> Self {
        IpfixExporter {
            domain,
            sequence: 0,
            // Force templates into the very first message.
            msgs_since_template: u32::MAX,
            template_refresh: template_refresh.max(1),
        }
    }

    /// Data-record sequence number of the next message.
    pub fn sequence(&self) -> u32 {
        self.sequence
    }

    /// Encode records (v4 and v6 mixed freely) into datagrams.
    pub fn encode(&mut self, now: u64, records: &[FlowRecord]) -> Vec<Bytes> {
        let mut out = Vec::new();
        let t4 = template_v4();
        let t6 = template_v6();
        let mut idx = 0;
        loop {
            let include_templates = self.msgs_since_template >= self.template_refresh;
            // Nothing (more) to send and no template refresh due: done.
            if idx >= records.len() && !include_templates {
                break;
            }
            let mut body = BytesMut::new();
            if include_templates {
                encode_template_set(&mut body, &[(TEMPLATE_V4, &t4), (TEMPLATE_V6, &t6)]);
                self.msgs_since_template = 0;
            }
            // Greedily fill one data set per family until the size budget.
            let mut n_data = 0u32;
            for (tid, tmpl, af) in [(TEMPLATE_V4, &t4, Af::V4), (TEMPLATE_V6, &t6, Af::V6)] {
                let rlen = record_len(tmpl);
                let mut set = BytesMut::new();
                while idx < records.len()
                    && MSG_HEADER_LEN + body.len() + SET_HEADER_LEN + set.len() + rlen
                        <= MAX_DATAGRAM
                {
                    let r = &records[idx];
                    if r.af() != af {
                        break;
                    }
                    encode_data_record(&mut set, r);
                    n_data += 1;
                    idx += 1;
                }
                if !set.is_empty() {
                    body.put_u16(tid);
                    body.put_u16((SET_HEADER_LEN + set.len()) as u16);
                    body.extend_from_slice(&set);
                }
            }
            let mut msg = BytesMut::with_capacity(MSG_HEADER_LEN + body.len());
            msg.put_u16(10);
            msg.put_u16((MSG_HEADER_LEN + body.len()) as u16);
            msg.put_u32(now as u32);
            msg.put_u32(self.sequence);
            msg.put_u32(self.domain);
            msg.extend_from_slice(&body);
            self.sequence = self.sequence.wrapping_add(n_data);
            self.msgs_since_template = self.msgs_since_template.saturating_add(1);
            out.push(msg.freeze());
            if idx >= records.len() {
                break;
            }
        }
        out
    }
}

fn encode_template_set(buf: &mut BytesMut, templates: &[(u16, &Template)]) {
    let mut set = BytesMut::new();
    for (tid, t) in templates {
        set.put_u16(*tid);
        set.put_u16(t.len() as u16);
        for &(ie_id, len) in t.iter() {
            set.put_u16(ie_id);
            set.put_u16(len);
        }
    }
    buf.put_u16(2); // template set id
    buf.put_u16((SET_HEADER_LEN + set.len()) as u16);
    buf.extend_from_slice(&set);
}

fn encode_data_record(buf: &mut BytesMut, r: &FlowRecord) {
    match r.af() {
        Af::V4 => {
            buf.put_u32(r.src.bits() as u32);
            buf.put_u32(r.dst.bits() as u32);
        }
        Af::V6 => {
            buf.put_u128(r.src.bits());
            buf.put_u128(r.dst.bits());
        }
    }
    buf.put_u32(r.input_if as u32);
    buf.put_u32(r.output_if as u32);
    buf.put_u64(r.packets as u64);
    buf.put_u64(r.bytes as u64);
    buf.put_u8(r.proto);
    buf.put_u16(r.src_port);
    buf.put_u16(r.dst_port);
}

/// Template-caching IPFIX decoder (collector side).
#[derive(Debug, Default)]
pub struct IpfixDecoder {
    templates: HashMap<(u32, u16), Template>,
    unknown_template_sets: u64,
    templates_registered: u64,
    template_redefinitions: u64,
}

/// Result of decoding one IPFIX message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpfixMessage {
    /// Export time from the message header (unix seconds).
    pub export_time: u32,
    /// Sequence number from the header (count of prior data records).
    pub sequence: u32,
    /// Observation domain id.
    pub domain: u32,
    /// Decoded flow records.
    pub records: Vec<FlowRecord>,
    /// Data sets in this message skipped because their template id was not
    /// (yet) in the cache.
    pub skipped_sets: u64,
}

impl IpfixDecoder {
    /// A decoder with an empty template cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Data sets skipped over the decoder's lifetime because their template
    /// was unknown (data before template, or the template datagram was lost).
    pub fn unknown_template_sets(&self) -> u64 {
        self.unknown_template_sets
    }

    /// Templates registered for the first time (new `(domain, id)` pairs)
    /// over the decoder's lifetime.
    pub fn templates_registered(&self) -> u64 {
        self.templates_registered
    }

    /// Templates that *replaced* an existing `(domain, id)` entry. Routine
    /// template refreshes land here too, so a steady nonzero rate is
    /// normal; what matters operationally is a rate far above the refresh
    /// cadence (an exporter churning layouts).
    pub fn template_redefinitions(&self) -> u64 {
        self.template_redefinitions
    }

    /// Decode one IPFIX message. A data set referencing an unknown template
    /// is *skipped* and counted ([`IpfixMessage::skipped_sets`],
    /// [`IpfixDecoder::unknown_template_sets`]) rather than failing the
    /// whole message — co-packed sets with known templates still decode, and
    /// the stream recovers at the next template refresh (RFC 7011 §8 says a
    /// collector must not assume templates precede data in the stream).
    pub fn decode(
        &mut self,
        datagram: &[u8],
        router: RouterId,
    ) -> Result<IpfixMessage, DecodeError> {
        if datagram.len() < MSG_HEADER_LEN {
            return Err(DecodeError::Truncated {
                need: MSG_HEADER_LEN,
                have: datagram.len(),
            });
        }
        let mut buf = datagram;
        let version = buf.get_u16();
        if version != 10 {
            return Err(DecodeError::BadVersion(version));
        }
        let length = buf.get_u16() as usize;
        if length != datagram.len() {
            return Err(DecodeError::BadLength {
                claimed: length,
                actual: datagram.len(),
            });
        }
        let export_time = buf.get_u32();
        let sequence = buf.get_u32();
        let domain = buf.get_u32();

        let mut records = Vec::new();
        let mut skipped_sets = 0u64;
        while buf.remaining() > 0 {
            if buf.remaining() < SET_HEADER_LEN {
                return Err(DecodeError::Malformed("dangling bytes after last set"));
            }
            let set_id = buf.get_u16();
            let set_len = buf.get_u16() as usize;
            if set_len < SET_HEADER_LEN || set_len - SET_HEADER_LEN > buf.remaining() {
                return Err(DecodeError::Malformed("set length out of bounds"));
            }
            let mut set = &buf[..set_len - SET_HEADER_LEN];
            buf.advance(set_len - SET_HEADER_LEN);
            match set_id {
                2 => self.decode_template_set(&mut set, domain)?,
                3 => { /* options templates: ignored in this subset */ }
                id if id >= 256 => {
                    if self.templates.contains_key(&(domain, id)) {
                        self.decode_data_set(
                            &mut set,
                            domain,
                            id,
                            export_time,
                            router,
                            &mut records,
                        )?;
                    } else {
                        skipped_sets += 1;
                        self.unknown_template_sets += 1;
                    }
                }
                _ => return Err(DecodeError::Malformed("reserved set id")),
            }
        }
        Ok(IpfixMessage {
            export_time,
            sequence,
            domain,
            records,
            skipped_sets,
        })
    }

    fn decode_template_set(&mut self, set: &mut &[u8], domain: u32) -> Result<(), DecodeError> {
        while set.remaining() >= 4 {
            let tid = set.get_u16();
            let field_count = set.get_u16() as usize;
            if tid < 256 {
                return Err(DecodeError::Malformed("template id below 256"));
            }
            if set.remaining() < field_count * 4 {
                return Err(DecodeError::Malformed("template field list truncated"));
            }
            let mut t = Vec::with_capacity(field_count);
            for _ in 0..field_count {
                let ie_id = set.get_u16();
                if ie_id & 0x8000 != 0 {
                    return Err(DecodeError::Malformed("enterprise IEs not supported"));
                }
                let len = set.get_u16();
                t.push((ie_id, len));
            }
            if self.templates.insert((domain, tid), t).is_some() {
                self.template_redefinitions += 1;
            } else {
                self.templates_registered += 1;
            }
        }
        Ok(())
    }

    fn decode_data_set(
        &self,
        set: &mut &[u8],
        domain: u32,
        template: u16,
        export_time: u32,
        router: RouterId,
        out: &mut Vec<FlowRecord>,
    ) -> Result<(), DecodeError> {
        let tmpl = self
            .templates
            .get(&(domain, template))
            .ok_or(DecodeError::UnknownTemplate { domain, template })?;
        let rlen = record_len(tmpl);
        if rlen == 0 {
            return Err(DecodeError::Malformed("zero-length template record"));
        }
        // Trailing bytes shorter than one record are padding per RFC 7011.
        while set.remaining() >= rlen {
            let mut r = FlowRecord {
                ts: export_time as u64,
                src: Addr::v4(0),
                dst: Addr::v4(0),
                router,
                input_if: 0,
                output_if: 0,
                proto: 0,
                src_port: 0,
                dst_port: 0,
                packets: 0,
                bytes: 0,
            };
            let mut have_src = false;
            for &(ie_id, len) in tmpl.iter() {
                let len = len as usize;
                let field = &set[..len];
                match (ie_id, len) {
                    (ie::SOURCE_IPV4_ADDRESS, 4) => {
                        r.src = Addr::v4(u32::from_be_bytes(field.try_into().unwrap()));
                        have_src = true;
                    }
                    (ie::DESTINATION_IPV4_ADDRESS, 4) => {
                        r.dst = Addr::v4(u32::from_be_bytes(field.try_into().unwrap()));
                    }
                    (ie::SOURCE_IPV6_ADDRESS, 16) => {
                        r.src = Addr::v6(u128::from_be_bytes(field.try_into().unwrap()));
                        have_src = true;
                    }
                    (ie::DESTINATION_IPV6_ADDRESS, 16) => {
                        r.dst = Addr::v6(u128::from_be_bytes(field.try_into().unwrap()));
                    }
                    (ie::INGRESS_INTERFACE, 4) => {
                        r.input_if = u32::from_be_bytes(field.try_into().unwrap()) as u16;
                    }
                    (ie::EGRESS_INTERFACE, 4) => {
                        r.output_if = u32::from_be_bytes(field.try_into().unwrap()) as u16;
                    }
                    (ie::PACKET_DELTA_COUNT, 8) => {
                        r.packets = u64::from_be_bytes(field.try_into().unwrap()) as u32;
                    }
                    (ie::OCTET_DELTA_COUNT, 8) => {
                        r.bytes = u64::from_be_bytes(field.try_into().unwrap()) as u32;
                    }
                    (ie::PROTOCOL_IDENTIFIER, 1) => r.proto = field[0],
                    (ie::SOURCE_TRANSPORT_PORT, 2) => {
                        r.src_port = u16::from_be_bytes(field.try_into().unwrap());
                    }
                    (ie::DESTINATION_TRANSPORT_PORT, 2) => {
                        r.dst_port = u16::from_be_bytes(field.try_into().unwrap());
                    }
                    _ => { /* unknown IE: skip */ }
                }
                set.advance(len);
            }
            if have_src {
                out.push(r);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4_record(i: u32) -> FlowRecord {
        FlowRecord {
            ts: 1_700_000_000,
            src: Addr::v4(0x0B00_0000 + i),
            dst: Addr::v4(0xC633_6402),
            router: 9,
            input_if: 4,
            output_if: 2,
            proto: 17,
            src_port: 53,
            dst_port: 5353,
            packets: 2,
            bytes: 300,
        }
    }

    fn v6_record(i: u128) -> FlowRecord {
        FlowRecord {
            ts: 1_700_000_000,
            src: Addr::v6((0x2001_0db8u128 << 96) + i),
            dst: Addr::v6((0x2001_0db8u128 << 96) | 0xffff),
            router: 9,
            input_if: 6,
            output_if: 1,
            proto: 6,
            src_port: 443,
            dst_port: 41000,
            packets: 10,
            bytes: 14000,
        }
    }

    #[test]
    fn roundtrip_mixed_families() {
        let mut exp = IpfixExporter::new(9, 16);
        let mut dec = IpfixDecoder::new();
        let records: Vec<FlowRecord> = vec![
            v4_record(1),
            v4_record(2),
            v6_record(1),
            v6_record(2),
            v6_record(3),
        ];
        let grams = exp.encode(1_700_000_000, &records);
        let mut got = Vec::new();
        for g in &grams {
            got.extend(dec.decode(g, 9).unwrap().records);
        }
        // Encoder groups by family per set; order within family preserved.
        let mut expect = records.clone();
        expect.sort_by_key(|r| (r.af() == Af::V6, r.src.bits()));
        got.sort_by_key(|r| (r.af() == Af::V6, r.src.bits()));
        assert_eq!(got, expect);
        assert_eq!(dec.template_count(), 2);
    }

    #[test]
    fn data_before_template_is_skipped_and_counted() {
        let mut exp = IpfixExporter::new(9, 1_000_000);
        // First message carries templates; second does not.
        let first = exp.encode(100, &[v4_record(1)]);
        let second = exp.encode(100, &[v4_record(2)]);
        assert_eq!(first.len(), 1);
        assert_eq!(second.len(), 1);
        // A fresh decoder joining mid-stream skips the set (it cannot
        // interpret it) but does not fail the message.
        let mut fresh = IpfixDecoder::new();
        let msg = fresh.decode(&second[0], 9).unwrap();
        assert!(msg.records.is_empty());
        assert_eq!(msg.skipped_sets, 1);
        assert_eq!(fresh.unknown_template_sets(), 1);
        // After seeing the template message it recovers.
        fresh.decode(&first[0], 9).unwrap();
        let msg = fresh.decode(&second[0], 9).unwrap();
        // The decoder stamps records with the message export time (100), not
        // the original flow timestamp — the wire carries no per-flow clock in
        // this template.
        let expect = FlowRecord {
            ts: 100,
            ..v4_record(2)
        };
        assert_eq!(msg.records, vec![expect]);
        assert_eq!(msg.skipped_sets, 0);
    }

    #[test]
    fn template_redefinition_applies_to_subsequent_data() {
        // Same template id, two generations of field lists: first only a
        // source address, then source + ingress interface. Data sets after
        // the redefinition must be parsed with the *new* layout.
        let msg_with = |body: &BytesMut| {
            let mut msg = BytesMut::new();
            msg.put_u16(10);
            msg.put_u16((MSG_HEADER_LEN + body.len()) as u16);
            msg.put_u32(500);
            msg.put_u32(0);
            msg.put_u32(9);
            msg.extend_from_slice(body);
            msg
        };
        let mut dec = IpfixDecoder::new();

        let gen1: Template = vec![(ie::SOURCE_IPV4_ADDRESS, 4)];
        let mut body = BytesMut::new();
        encode_template_set(&mut body, &[(300, &gen1)]);
        body.put_u16(300);
        body.put_u16(4 + 4);
        body.put_u32(0x0A000001);
        let out = dec.decode(&msg_with(&body), 9).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].src, Addr::v4(0x0A000001));
        assert_eq!(out.records[0].input_if, 0);

        // Redefine id 300 with a wider record, then send data in the new
        // shape in the same message.
        let gen2: Template = vec![(ie::SOURCE_IPV4_ADDRESS, 4), (ie::INGRESS_INTERFACE, 4)];
        let mut body = BytesMut::new();
        encode_template_set(&mut body, &[(300, &gen2)]);
        body.put_u16(300);
        body.put_u16(4 + 8);
        body.put_u32(0x0A000002);
        body.put_u32(42);
        let out = dec.decode(&msg_with(&body), 9).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].src, Addr::v4(0x0A000002));
        assert_eq!(out.records[0].input_if, 42, "new field list in effect");
        assert_eq!(dec.template_count(), 1, "redefinition replaces, not adds");
        assert_eq!(dec.templates_registered(), 1);
        assert_eq!(dec.template_redefinitions(), 1);
    }

    #[test]
    fn unknown_template_set_does_not_corrupt_co_packed_sets() {
        // One message: template for id 300, a data set for unknown id 301,
        // then a data set for 300. The unknown set must be skipped without
        // losing the records around it.
        let tmpl: Template = vec![(ie::SOURCE_IPV4_ADDRESS, 4)];
        let mut body = BytesMut::new();
        encode_template_set(&mut body, &[(300, &tmpl)]);
        body.put_u16(301); // never defined
        body.put_u16(4 + 6);
        body.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        body.put_u16(300);
        body.put_u16(4 + 4);
        body.put_u32(0x0A000003);
        let mut msg = BytesMut::new();
        msg.put_u16(10);
        msg.put_u16((MSG_HEADER_LEN + body.len()) as u16);
        msg.put_u32(500);
        msg.put_u32(0);
        msg.put_u32(9);
        msg.extend_from_slice(&body);
        let mut dec = IpfixDecoder::new();
        let out = dec.decode(&msg, 9).unwrap();
        assert_eq!(out.skipped_sets, 1);
        assert_eq!(
            out.records.len(),
            1,
            "the known set after the unknown one decodes"
        );
        assert_eq!(out.records[0].src, Addr::v4(0x0A000003));
        assert_eq!(dec.unknown_template_sets(), 1);
    }

    #[test]
    fn template_refresh_cadence() {
        let mut exp = IpfixExporter::new(9, 2);
        let g1 = exp.encode(100, &[v4_record(1)]); // templates (first message)
        let g2 = exp.encode(100, &[v4_record(2)]); // no templates
        let g3 = exp.encode(100, &[v4_record(3)]); // refresh
                                                   // A fresh decoder can parse g1 and g3; g2's data set is skipped
                                                   // (no template yet).
        let mut d = IpfixDecoder::new();
        assert_eq!(d.decode(&g1[0], 9).unwrap().records.len(), 1);
        let mut d2 = IpfixDecoder::new();
        let msg = d2.decode(&g2[0], 9).unwrap();
        assert!(msg.records.is_empty());
        assert_eq!(msg.skipped_sets, 1);
        let mut d3 = IpfixDecoder::new();
        assert_eq!(d3.decode(&g3[0], 9).unwrap().records.len(), 1);
    }

    #[test]
    fn sequence_counts_data_records() {
        let mut exp = IpfixExporter::new(9, 1000);
        assert_eq!(exp.sequence(), 0);
        exp.encode(100, &[v4_record(1), v4_record(2), v6_record(1)]);
        assert_eq!(exp.sequence(), 3);
    }

    #[test]
    fn big_batch_spans_multiple_datagrams() {
        let mut exp = IpfixExporter::new(9, 1000);
        let records: Vec<FlowRecord> = (0..200).map(v4_record).collect();
        let grams = exp.encode(100, &records);
        assert!(
            grams.len() > 1,
            "200 records cannot fit one 1400-byte datagram"
        );
        assert!(grams.iter().all(|g| g.len() <= MAX_DATAGRAM));
        let mut dec = IpfixDecoder::new();
        let total: usize = grams
            .iter()
            .map(|g| dec.decode(g, 9).unwrap().records.len())
            .sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn rejects_garbage() {
        let mut dec = IpfixDecoder::new();
        assert!(matches!(
            dec.decode(&[0u8; 4], 1),
            Err(DecodeError::Truncated { .. })
        ));
        let mut msg = vec![0u8; 16];
        msg[0] = 0;
        msg[1] = 5; // version 5 in an IPFIX decoder
        msg[3] = 16;
        assert!(matches!(
            dec.decode(&msg, 1),
            Err(DecodeError::BadVersion(5))
        ));
        // Bad length field.
        let mut exp = IpfixExporter::new(1, 1);
        let g = exp.encode(100, &[v4_record(1)]).remove(0);
        let mut bad = g.to_vec();
        bad[2] = 0;
        bad[3] = 17; // claims 17 bytes
        assert!(matches!(
            dec.decode(&bad, 1),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn unknown_ies_are_skipped() {
        // Hand-roll a template with an IE we do not understand between two we do.
        let mut body = BytesMut::new();
        let tmpl: Template = vec![
            (ie::SOURCE_IPV4_ADDRESS, 4),
            (999, 3), // unknown, 3 bytes
            (ie::INGRESS_INTERFACE, 4),
        ];
        encode_template_set(&mut body, &[(300, &tmpl)]);
        body.put_u16(300);
        body.put_u16(4 + 11);
        body.put_u32(0x0A0A0A0A);
        body.extend_from_slice(&[1, 2, 3]);
        body.put_u32(77);
        let mut msg = BytesMut::new();
        msg.put_u16(10);
        msg.put_u16((16 + body.len()) as u16);
        msg.put_u32(500);
        msg.put_u32(0);
        msg.put_u32(1);
        msg.extend_from_slice(&body);
        let mut dec = IpfixDecoder::new();
        let out = dec.decode(&msg, 3).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].src, Addr::v4(0x0A0A0A0A));
        assert_eq!(out.records[0].input_if, 77);
        assert_eq!(out.records[0].ts, 500);
    }
}
