//! Flow-record substrate for the IPD reproduction.
//!
//! The IPD paper (§3.1) consumes *sampled flow-level traces* ("e.g., Netflow
//! or IPFIX") exported by every border router. This crate provides that
//! substrate end to end:
//!
//! * [`FlowRecord`] — the canonical in-memory flow sample: export timestamp,
//!   source/destination address, the exporting router and its ingress
//!   interface, packet/byte counts. This is the only thing IPD ever sees.
//! * [`v5`] — a wire-accurate NetFlow v5 encoder/decoder (24-byte header,
//!   48-byte records, at most 30 records per datagram, IPv4 only).
//! * [`ipfix`] — a template-based IPFIX (RFC 7011) subset that carries both
//!   IPv4 and IPv6 flows; the decoder maintains a per-observation-domain
//!   template cache like a real collector.
//! * [`sampling`] — random 1-out-of-n packet sampling (the paper: n = 1,000
//!   to 10,000; "unsampled data is *never* available").
//! * [`collector`] — version-sniffing datagram collector with sequence-gap
//!   accounting, turning raw datagrams back into [`FlowRecord`]s.
//!
//! Everything is synchronous and allocation-light: datagrams are built into
//! and parsed from [`bytes::Bytes`] buffers, so the threaded IPD pipeline can
//! pass them between reader threads without copying.

pub mod collector;
pub mod ipfix;
pub mod record;
pub mod sampling;
pub mod trace;
pub mod v5;

pub use collector::{Collector, CollectorStats};
pub use record::{DecodeError, FlowRecord, RouterId};
pub use sampling::PacketSampler;
pub use trace::{TraceReader, TraceWriter};
