//! Random 1-out-of-n packet sampling.
//!
//! The paper (§3.1): "routers apply random packet sampling (1 out of n pkts)
//! with rates that range from n = 1,000 to 10,000 … unsampled data is *never*
//! available." The traffic generator therefore produces *true* flows and this
//! sampler decides, per packet, whether the router's flow cache would have
//! seen it — yielding the sampled record IPD actually receives.

use rand::Rng;

use crate::record::FlowRecord;

/// Random per-packet sampler with rate 1/n.
///
/// For a flow of `p` true packets the number of sampled packets is
/// Binomial(p, 1/n); we draw that exactly for small `p` and via a normal
/// approximation for large `p` (the error is far below the noise floor IPD is
/// designed to absorb, and the approximation keeps huge elephant flows cheap).
#[derive(Debug, Clone)]
pub struct PacketSampler {
    n: u32,
}

impl PacketSampler {
    /// A sampler with rate 1-out-of-`n`. `n = 1` disables sampling.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "sampling interval must be >= 1");
        PacketSampler { n }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> u32 {
        self.n
    }

    /// Number of packets sampled out of `true_packets`.
    pub fn sample_packets<R: Rng + ?Sized>(&self, rng: &mut R, true_packets: u64) -> u64 {
        if self.n == 1 {
            return true_packets;
        }
        let p = 1.0 / self.n as f64;
        if true_packets <= 256 {
            let mut hits = 0;
            for _ in 0..true_packets {
                if rng.random::<f64>() < p {
                    hits += 1;
                }
            }
            hits
        } else {
            // Normal approximation to Binomial(n, p), clamped to [0, n].
            let mean = true_packets as f64 * p;
            let sd = (true_packets as f64 * p * (1.0 - p)).sqrt();
            let z = sample_standard_normal(rng);
            let v = (mean + sd * z).round();
            v.clamp(0.0, true_packets as f64) as u64
        }
    }

    /// Apply sampling to a *true* flow: returns the sampled record (packet and
    /// byte counts scaled down), or `None` if no packet of the flow was
    /// sampled — in which case the router exports nothing at all, which is
    /// exactly the visibility loss IPD has to live with.
    pub fn sample_flow<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mut flow: FlowRecord,
        true_packets: u64,
        true_bytes: u64,
    ) -> Option<FlowRecord> {
        let sampled = self.sample_packets(rng, true_packets);
        if sampled == 0 {
            return None;
        }
        let mean_pkt = (true_bytes as f64 / true_packets.max(1) as f64).max(40.0);
        flow.packets = sampled.min(u32::MAX as u64) as u32;
        flow.bytes = ((sampled as f64 * mean_pkt) as u64).min(u32::MAX as u64) as u32;
        Some(flow)
    }

    /// Multiply a sampled count by the sampling interval to estimate the
    /// true count, saturating at `u32::MAX` (the wire format's count
    /// width). This is the collector-side inverse of the router's 1/n
    /// sampling: unbiased in expectation, never below the sampled count.
    pub fn upscale_count(&self, sampled: u32) -> u32 {
        sampled.saturating_mul(self.n)
    }

    /// Upscale a sampled record's packet and byte counts back to estimates
    /// of the true flow ([`PacketSampler::upscale_count`] applied to both).
    /// With `n = 1` this is the identity.
    pub fn upscale_flow(&self, mut flow: FlowRecord) -> FlowRecord {
        flow.packets = self.upscale_count(flow.packets);
        flow.bytes = self.upscale_count(flow.bytes);
        flow
    }
}

/// Box–Muller standard normal draw.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_lpm::Addr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interval_one_passes_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = PacketSampler::new(1);
        assert_eq!(s.sample_packets(&mut rng, 12345), 12345);
    }

    #[test]
    #[should_panic]
    fn interval_zero_panics() {
        let _ = PacketSampler::new(0);
    }

    #[test]
    fn small_flow_mostly_unsampled_at_1000() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = PacketSampler::new(1000);
        let mut kept = 0;
        for _ in 0..10_000 {
            if s.sample_packets(&mut rng, 10) > 0 {
                kept += 1;
            }
        }
        // P(at least one of 10 pkts sampled) = 1 - 0.999^10 ≈ 1%.
        assert!(kept > 20 && kept < 300, "kept {kept} of 10000");
    }

    #[test]
    fn large_flow_sampling_is_unbiased() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = PacketSampler::new(1000);
        let trials = 200;
        let true_packets = 1_000_000u64;
        let total: u64 = (0..trials)
            .map(|_| s.sample_packets(&mut rng, true_packets))
            .sum();
        let mean = total as f64 / trials as f64;
        let expect = true_packets as f64 / 1000.0;
        assert!(
            (mean - expect).abs() < expect * 0.05,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn sample_flow_scales_bytes() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = PacketSampler::new(100);
        let f = FlowRecord::synthetic(5, Addr::v4(1), 1, 1);
        // 100k packets of 1000 bytes → expect ~1000 sampled pkts, ~1MB bytes.
        let out = s.sample_flow(&mut rng, f, 100_000, 100_000_000).unwrap();
        assert!(
            out.packets > 800 && out.packets < 1200,
            "packets {}",
            out.packets
        );
        let bpp = out.bytes as f64 / out.packets as f64;
        assert!((bpp - 1000.0).abs() < 1.0, "bytes per packet {bpp}");
    }

    #[test]
    fn fully_unsampled_flow_is_none() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = PacketSampler::new(1_000_000);
        let f = FlowRecord::synthetic(5, Addr::v4(1), 1, 1);
        assert!(s.sample_flow(&mut rng, f, 1, 1400).is_none());
    }
}
