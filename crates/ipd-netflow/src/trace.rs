//! Flow trace files: record and replay flow streams.
//!
//! The paper's validation works from a captured 25-hour trace (§4). This
//! module provides the equivalent artifact for the reproduction: a compact
//! length-checked binary format (`.ipdt`) holding [`FlowRecord`]s, so a
//! simulated (or collected) stream can be written once and replayed into
//! IPD any number of times — including by the `ipd-tool` CLI.
//!
//! Format: an 8-byte magic `IPDTRC01`, then fixed 62-byte records:
//!
//! ```text
//! ts u64 | af u8 | src u128 | dst u128 | router u32 | in u16 | out u16
//! | proto u8 | sport u16 | dport u16 | packets u32 | bytes u32
//! ```
//!
//! All integers big-endian. The format is deliberately dumb: seekable,
//! `records = (len - 8) / 62`, no compression (leave that to the filesystem).

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};
use ipd_lpm::{Addr, Af};

use crate::record::FlowRecord;

/// File magic.
pub const MAGIC: [u8; 8] = *b"IPDTRC01";
/// Bytes per record on disk.
pub const RECORD_LEN: usize = 62;

/// Encode one record into the fixed 62-byte wire shape. Pure; shared by
/// [`TraceWriter`] and the `ipd-state` write-ahead journal.
pub fn encode_record(r: &FlowRecord) -> [u8; RECORD_LEN] {
    let mut buf = [0u8; RECORD_LEN];
    {
        let mut b = &mut buf[..];
        b.put_u64(r.ts);
        b.put_u8(match r.src.af() {
            Af::V4 => 4,
            Af::V6 => 6,
        });
        b.put_u128(r.src.bits());
        b.put_u128(r.dst.bits());
        b.put_u32(r.router);
        b.put_u16(r.input_if);
        b.put_u16(r.output_if);
        b.put_u8(r.proto);
        b.put_u16(r.src_port);
        b.put_u16(r.dst_port);
        b.put_u32(r.packets);
        b.put_u32(r.bytes);
    }
    buf
}

/// Decode one 62-byte record. Pure inverse of [`encode_record`].
pub fn decode_record(buf: &[u8; RECORD_LEN]) -> io::Result<FlowRecord> {
    let mut b = &buf[..];
    let ts = b.get_u64();
    let af = match b.get_u8() {
        4 => Af::V4,
        6 => Af::V6,
        x => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad address family tag {x}"),
            ))
        }
    };
    let src = Addr::new(af, b.get_u128());
    let dst_bits = b.get_u128();
    // The destination may legitimately be the other family only for
    // synthetic records; we tag both with `af` on disk.
    let dst = Addr::new(af, dst_bits);
    Ok(FlowRecord {
        ts,
        src,
        dst,
        router: b.get_u32(),
        input_if: b.get_u16(),
        output_if: b.get_u16(),
        proto: b.get_u8(),
        src_port: b.get_u16(),
        dst_port: b.get_u16(),
        packets: b.get_u32(),
        bytes: b.get_u32(),
    })
}

/// Streaming trace writer.
pub struct TraceWriter<W: Write> {
    inner: W,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Create a writer and emit the magic.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(&MAGIC)?;
        Ok(TraceWriter { inner, count: 0 })
    }

    /// Append one record.
    pub fn write(&mut self, r: &FlowRecord) -> io::Result<()> {
        self.inner.write_all(&encode_record(r))?;
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming trace reader; iterate to get records.
pub struct TraceReader<R: Read> {
    inner: R,
    read: u64,
}

impl<R: Read> TraceReader<R> {
    /// Open a trace: checks the magic.
    pub fn new(mut inner: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        inner.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an IPD trace file",
            ));
        }
        Ok(TraceReader { inner, read: 0 })
    }

    /// Records read so far (named to avoid clashing with `Iterator::count`).
    pub fn records_read(&self) -> u64 {
        self.read
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<FlowRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        // Fill manually so a clean end-of-file (0 bytes) is distinguishable
        // from a truncated record (a partial read followed by EOF).
        let mut buf = [0u8; RECORD_LEN];
        let mut filled = 0;
        while filled < RECORD_LEN {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return None,
                Ok(0) => {
                    return Some(Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("truncated record: {filled} of {RECORD_LEN} bytes"),
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(Err(e)),
            }
        }
        let record = match decode_record(&buf) {
            Ok(r) => r,
            Err(e) => return Some(Err(e)),
        };
        self.read += 1;
        Some(Ok(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<FlowRecord> {
        vec![
            FlowRecord::synthetic(100, Addr::v4(0x0A000001), 1, 2),
            FlowRecord::synthetic(101, Addr::v6(0x2001 << 112 | 7), 3, 4),
            FlowRecord {
                packets: u32::MAX,
                bytes: u32::MAX,
                ..FlowRecord::synthetic(u64::MAX, Addr::v4(u32::MAX), u32::MAX, u16::MAX)
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for r in &records() {
            w.write(r).unwrap();
        }
        assert_eq!(w.count(), 3);
        let bytes = w.finish().unwrap();
        assert_eq!(bytes.len(), 8 + 3 * RECORD_LEN);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let got: Vec<FlowRecord> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(got, records());
        assert_eq!(reader.records_read(), 3);
    }

    #[test]
    fn rejects_bad_magic() {
        match TraceReader::new(&b"NOTATRACE"[..]) {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidData),
            Ok(_) => panic!("bad magic accepted"),
        }
    }

    #[test]
    fn truncated_record_is_eof_error() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write(&records()[0]).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 10);
        let reader = TraceReader::new(&bytes[..]).unwrap();
        let results: Vec<_> = reader.collect();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_err());
    }

    #[test]
    fn empty_trace_is_fine() {
        let w = TraceWriter::new(Vec::new()).unwrap();
        let bytes = w.finish().unwrap();
        let reader = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.records_read(), 0);
        assert_eq!(reader.collect::<Vec<_>>().len(), 0);
    }

    #[test]
    fn bad_family_tag_is_error() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.write(&records()[0]).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes[8 + 8] = 9; // corrupt the af tag of record 0
        let reader = TraceReader::new(&bytes[..]).unwrap();
        let results: Vec<_> = reader.collect();
        assert!(results[0].is_err());
    }
}
