//! Property-based tests: flow records survive the wire round-trip.

use ipd_lpm::Addr;
use ipd_netflow::ipfix::IpfixExporter;
use ipd_netflow::v5::V5Exporter;
use ipd_netflow::{Collector, FlowRecord, PacketSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_v4_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        1u32..=u32::MAX,
        1u32..=u32::MAX,
    )
        .prop_map(
            |(src, dst, inp, outp, proto, sp, dp, pkts, bytes)| FlowRecord {
                ts: 0, // overwritten by export time on the wire
                src: Addr::v4(src),
                dst: Addr::v4(dst),
                router: 11,
                input_if: inp,
                output_if: outp,
                proto,
                src_port: sp,
                dst_port: dp,
                packets: pkts,
                bytes,
            },
        )
}

fn arb_v6_record() -> impl Strategy<Value = FlowRecord> {
    (any::<u128>(), any::<u128>(), any::<u16>(), 1u32..=u32::MAX).prop_map(
        |(src, dst, inp, pkts)| FlowRecord {
            ts: 0,
            src: Addr::v6(src),
            dst: Addr::v6(dst),
            router: 11,
            input_if: inp,
            output_if: 3,
            proto: 6,
            src_port: 443,
            dst_port: 50000,
            packets: pkts,
            bytes: pkts.saturating_mul(100),
        },
    )
}

fn with_ts(ts: u64, records: &[FlowRecord]) -> Vec<FlowRecord> {
    records.iter().map(|r| FlowRecord { ts, ..*r }).collect()
}

proptest! {
    /// NetFlow v5 round-trips arbitrary IPv4 records through arbitrary batch
    /// sizes and datagram chunking.
    #[test]
    fn v5_roundtrip(records in proptest::collection::vec(arb_v4_record(), 0..100),
                    now in 1u64..=u32::MAX as u64) {
        let mut exp = V5Exporter::new(11, 0, 1000, 0);
        let mut col = Collector::new();
        let mut out = Vec::new();
        for g in exp.encode(now, &records).unwrap() {
            col.feed(&g, 11, &mut out).unwrap();
        }
        prop_assert_eq!(out, with_ts(now, &records));
        prop_assert_eq!(col.stats().sequence_gap, 0);
    }

    /// IPFIX round-trips mixed v4/v6 records; family grouping may reorder
    /// across families but never within one.
    #[test]
    fn ipfix_roundtrip(v4 in proptest::collection::vec(arb_v4_record(), 0..60),
                       v6 in proptest::collection::vec(arb_v6_record(), 0..60),
                       now in 1u64..=u32::MAX as u64) {
        let mut records = v4.clone();
        records.extend(v6.clone());
        let mut exp = IpfixExporter::new(11, 4);
        let mut col = Collector::new();
        let mut out = Vec::new();
        for g in exp.encode(now, &records) {
            col.feed(&g, 11, &mut out).unwrap();
        }
        let got_v4: Vec<_> = out.iter().filter(|r| r.src.af() == ipd_lpm::Af::V4).cloned().collect();
        let got_v6: Vec<_> = out.iter().filter(|r| r.src.af() == ipd_lpm::Af::V6).cloned().collect();
        prop_assert_eq!(got_v4, with_ts(now, &v4));
        prop_assert_eq!(got_v6, with_ts(now, &v6));
        prop_assert_eq!(col.stats().sequence_gap, 0);
    }

    /// The collector never panics on arbitrary garbage bytes.
    #[test]
    fn collector_survives_garbage(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let mut col = Collector::new();
        let mut out = Vec::new();
        let _ = col.feed(&data, 1, &mut out);
        // Decodes of random bytes may or may not error, but must not panic,
        // and stats stay coherent.
        prop_assert_eq!(col.stats().datagrams + col.stats().errors, 1);
    }

    /// Rate-1 sampling is the identity: every packet is "sampled" and
    /// upscaling multiplies by 1.
    #[test]
    fn sampling_rate_one_is_identity(record in arb_v4_record(), seed in any::<u64>()) {
        let sampler = PacketSampler::new(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let true_packets = record.packets as u64;
        let true_bytes = record.bytes as u64;
        let sampled = sampler
            .sample_flow(&mut rng, record, true_packets, true_bytes)
            .expect("rate 1 samples every packet");
        prop_assert_eq!(sampled.packets as u64, true_packets);
        let upscaled = sampler.upscale_flow(sampled);
        prop_assert_eq!(&upscaled, &sampled);
    }

    /// A sampled flow never reports more packets than the true flow had,
    /// and upscaled counts are never below the raw sampled counts.
    #[test]
    fn sampling_bounds_hold(record in arb_v4_record(),
                            n in 1u32..=10_000,
                            seed in any::<u64>()) {
        let sampler = PacketSampler::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let true_packets = record.packets as u64;
        let true_bytes = record.bytes as u64;
        if let Some(sampled) = sampler.sample_flow(&mut rng, record, true_packets, true_bytes) {
            prop_assert!(sampled.packets as u64 <= true_packets);
            prop_assert!(sampled.packets > 0, "zero-packet flows are None, not exported");
            let upscaled = sampler.upscale_flow(sampled);
            prop_assert!(upscaled.packets >= sampled.packets);
            prop_assert!(upscaled.bytes >= sampled.bytes);
        }
    }

    /// Upscaling saturates instead of wrapping: counts whose product with
    /// the interval exceeds u32::MAX pin to u32::MAX.
    #[test]
    fn upscale_saturates_on_overflow(count in 1u32..=u32::MAX, n in 2u32..=10_000) {
        let sampler = PacketSampler::new(n);
        let up = sampler.upscale_count(count);
        prop_assert!(up >= count, "upscale must never shrink a count");
        if (count as u64) * (n as u64) > u32::MAX as u64 {
            prop_assert_eq!(up, u32::MAX);
        } else {
            prop_assert_eq!(up, count * n);
        }
    }
}
