//! Statistical-time pre-processing.
//!
//! The paper (§3.1, "Addressing clock drift with statistical time"): with
//! over 3,000 routers, "inaccurate router clocks occur", so IPD's pre-processing
//! "rel[ies] on inferring sequences of events from time input in the flow
//! data, rather than assuming that all clocks are in sync. This *statistical
//! time* approach segments traffic into uniform time buckets and analyzes
//! flow samples within these periods. Intervals that don't meet a certain
//! activity threshold are discarded, along with data outside the current
//! time range."
//!
//! [`TimeBucketer`] implements exactly that contract:
//!
//! * incoming flows are binned into uniform buckets of `bucket_secs`;
//! * the *statistical now* is advanced by observed traffic mass, not by any
//!   single router's claim — a lone fast clock cannot drag time forward;
//! * flows clamed to be further than `max_skew_buckets` behind statistical
//!   now are discarded as out-of-range;
//! * closed buckets below the activity threshold are discarded whole;
//! * emitted flows are re-stamped to the bucket start, so downstream IPD
//!   sees one consistent clock.
//!
//! [`ClockDrift`] is the matching fault injector used by the traffic
//! generator to corrupt router clocks in the first place.

mod bucketer;
mod drift;

pub use bucketer::{Flush, StatTimeConfig, TimeBucketer};
pub use drift::ClockDrift;
