//! Uniform time-bucketing with traffic-mass-driven statistical time.

use std::collections::BTreeMap;

use ipd_netflow::FlowRecord;

/// Configuration for [`TimeBucketer`].
#[derive(Debug, Clone, Copy)]
pub struct StatTimeConfig {
    /// Bucket length in seconds (the paper's `t`, default 60).
    pub bucket_secs: u64,
    /// Minimum flows for a closed bucket to be emitted rather than discarded
    /// ("intervals that don't meet a certain activity threshold are
    /// discarded").
    pub activity_threshold: usize,
    /// Flows claiming a time more than this many buckets *behind* statistical
    /// now are discarded as out-of-range.
    pub max_skew_buckets: u64,
    /// Traffic mass (flows) a *future* bucket must accumulate before
    /// statistical now advances to it. This is what makes time statistical:
    /// one router with a fast clock cannot move it.
    pub promote_threshold: usize,
}

impl Default for StatTimeConfig {
    fn default() -> Self {
        StatTimeConfig {
            bucket_secs: 60,
            activity_threshold: 10,
            max_skew_buckets: 2,
            promote_threshold: 100,
        }
    }
}

/// Outcome of flushing one closed bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Flush {
    /// The bucket met the activity threshold; flows are re-stamped to the
    /// bucket start time.
    Emitted {
        /// Start of the bucket (unix seconds).
        bucket_start: u64,
        /// The flows, each with `ts` rewritten to `bucket_start`.
        flows: Vec<FlowRecord>,
    },
    /// The bucket was below the activity threshold and dropped whole.
    Discarded {
        /// Start of the bucket (unix seconds).
        bucket_start: u64,
        /// How many flows were dropped with it.
        flows: usize,
    },
}

/// Streaming statistical-time bucketer. See the crate docs for the contract.
#[derive(Debug)]
pub struct TimeBucketer {
    cfg: StatTimeConfig,
    /// Open buckets, keyed by bucket index (`ts / bucket_secs`).
    buckets: BTreeMap<u64, Vec<FlowRecord>>,
    /// Current statistical bucket index.
    stat_now: Option<u64>,
    /// Flows discarded because their claimed time was too far in the past.
    out_of_range: u64,
}

impl TimeBucketer {
    /// A bucketer with the given configuration.
    pub fn new(cfg: StatTimeConfig) -> Self {
        assert!(cfg.bucket_secs > 0, "bucket length must be positive");
        TimeBucketer {
            cfg,
            buckets: BTreeMap::new(),
            stat_now: None,
            out_of_range: 0,
        }
    }

    /// Current statistical time (start of the current bucket), once enough
    /// traffic has been seen to establish one.
    pub fn statistical_now(&self) -> Option<u64> {
        self.stat_now.map(|b| b * self.cfg.bucket_secs)
    }

    /// Flows discarded as out-of-range so far.
    pub fn out_of_range_count(&self) -> u64 {
        self.out_of_range
    }

    /// Feed one flow. Returns `true` if the flow was accepted into a bucket,
    /// `false` if it was discarded as out-of-range.
    pub fn push(&mut self, flow: FlowRecord) -> bool {
        let b = flow.ts / self.cfg.bucket_secs;
        let now = *self.stat_now.get_or_insert(b);

        if b + self.cfg.max_skew_buckets < now {
            self.out_of_range += 1;
            return false;
        }
        let bucket = self.buckets.entry(b).or_default();
        bucket.push(flow);

        // Advance statistical now when a future bucket has enough mass.
        if b > now && bucket.len() >= self.cfg.promote_threshold {
            self.stat_now = Some(b);
        }
        true
    }

    /// Flush buckets that are strictly in the past of statistical now (older
    /// than `stat_now - max_skew_buckets`, so no in-range flow can still land
    /// in them). Call once per processing cycle.
    pub fn flush_closed(&mut self) -> Vec<Flush> {
        let Some(now) = self.stat_now else {
            return Vec::new();
        };
        let keep_from = now.saturating_sub(self.cfg.max_skew_buckets);
        let closed: Vec<u64> = self.buckets.range(..keep_from).map(|(&b, _)| b).collect();
        closed.into_iter().map(|b| self.flush_bucket(b)).collect()
    }

    /// Flush everything that remains, regardless of statistical now. Call at
    /// end of stream.
    pub fn finish(&mut self) -> Vec<Flush> {
        let all: Vec<u64> = self.buckets.keys().copied().collect();
        all.into_iter().map(|b| self.flush_bucket(b)).collect()
    }

    fn flush_bucket(&mut self, b: u64) -> Flush {
        let mut flows = self.buckets.remove(&b).unwrap_or_default();
        let bucket_start = b * self.cfg.bucket_secs;
        if flows.len() < self.cfg.activity_threshold {
            Flush::Discarded {
                bucket_start,
                flows: flows.len(),
            }
        } else {
            for f in &mut flows {
                f.ts = bucket_start;
            }
            Flush::Emitted {
                bucket_start,
                flows,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_lpm::Addr;

    fn flow(ts: u64) -> FlowRecord {
        FlowRecord::synthetic(ts, Addr::v4(0x0A000001), 1, 1)
    }

    fn cfg() -> StatTimeConfig {
        StatTimeConfig {
            bucket_secs: 60,
            activity_threshold: 3,
            max_skew_buckets: 2,
            promote_threshold: 5,
        }
    }

    #[test]
    fn in_sync_flows_pass_through_rounded() {
        let mut tb = TimeBucketer::new(cfg());
        for i in 0..10 {
            assert!(tb.push(flow(600 + i)));
        }
        let out = tb.finish();
        assert_eq!(out.len(), 1);
        match &out[0] {
            Flush::Emitted {
                bucket_start,
                flows,
            } => {
                assert_eq!(*bucket_start, 600);
                assert_eq!(flows.len(), 10);
                assert!(flows.iter().all(|f| f.ts == 600));
            }
            other => panic!("expected emit, got {other:?}"),
        }
    }

    #[test]
    fn low_activity_bucket_discarded() {
        let mut tb = TimeBucketer::new(cfg());
        tb.push(flow(600));
        tb.push(flow(600));
        let out = tb.finish();
        assert_eq!(
            out,
            vec![Flush::Discarded {
                bucket_start: 600,
                flows: 2
            }]
        );
    }

    #[test]
    fn single_fast_clock_cannot_advance_time() {
        let mut tb = TimeBucketer::new(cfg());
        for _ in 0..10 {
            tb.push(flow(600));
        }
        // One flow claims to be an hour ahead — below promote threshold.
        tb.push(flow(4200));
        assert_eq!(tb.statistical_now(), Some(600));
        // Old traffic is still accepted.
        assert!(tb.push(flow(610)));
        assert_eq!(tb.out_of_range_count(), 0);
    }

    #[test]
    fn mass_advances_time_and_stragglers_get_dropped() {
        let mut tb = TimeBucketer::new(cfg());
        for _ in 0..10 {
            tb.push(flow(600));
        }
        // Enough traffic in a much later bucket promotes statistical now.
        for _ in 0..5 {
            tb.push(flow(1200));
        }
        assert_eq!(tb.statistical_now(), Some(1200));
        // 1200/60 = bucket 20; max_skew 2 → buckets < 18 are out of range.
        assert!(!tb.push(flow(600)), "way-old flow must be discarded");
        assert!(tb.push(flow(1080)), "within skew window is fine");
        assert_eq!(tb.out_of_range_count(), 1);
    }

    #[test]
    fn flush_closed_only_releases_settled_buckets() {
        let mut tb = TimeBucketer::new(cfg());
        for _ in 0..5 {
            tb.push(flow(0));
        }
        for _ in 0..5 {
            tb.push(flow(300)); // bucket 5 — promotes now
        }
        assert_eq!(tb.statistical_now(), Some(300));
        let flushed = tb.flush_closed();
        // Buckets < 5-2=3 close: that's bucket 0.
        assert_eq!(flushed.len(), 1);
        assert!(matches!(
            flushed[0],
            Flush::Emitted {
                bucket_start: 0,
                ..
            }
        ));
        // Bucket 5 itself stays open.
        let remaining = tb.finish();
        assert_eq!(remaining.len(), 1);
    }

    #[test]
    fn flush_closed_before_any_traffic_is_empty() {
        let mut tb = TimeBucketer::new(cfg());
        assert!(tb.flush_closed().is_empty());
        assert_eq!(tb.statistical_now(), None);
    }

    #[test]
    fn drifted_router_within_skew_is_merged() {
        use crate::drift::ClockDrift;
        let mut tb = TimeBucketer::new(cfg());
        let good = ClockDrift::accurate();
        let bad = ClockDrift::offset(-70); // one bucket behind
        for i in 0..20 {
            tb.push(flow(good.claimed(6000 + i)));
            tb.push(flow(bad.claimed(6000 + i)));
        }
        let out = tb.finish();
        let emitted: usize = out
            .iter()
            .map(|f| match f {
                Flush::Emitted { flows, .. } => flows.len(),
                Flush::Discarded { .. } => 0,
            })
            .sum();
        // All 40 flows survive; the drifted ones just land one bucket early.
        assert_eq!(emitted, 40);
        assert_eq!(tb.out_of_range_count(), 0);
    }
}
