//! Clock-drift fault injection.

/// A router clock model: a fixed offset plus linear skew.
///
/// `claimed(t) = t + offset_secs + skew_ppm * (t - epoch) / 1e6`
///
/// The traffic generator attaches one of these to each router to corrupt the
/// export timestamps, and the statistical-time bucketer has to undo the
/// damage. An accurate clock is `ClockDrift::accurate()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDrift {
    /// Constant offset in seconds (positive = clock runs ahead).
    pub offset_secs: i64,
    /// Linear skew in parts per million of elapsed time since `epoch`.
    pub skew_ppm: f64,
    /// Reference time the skew is measured from.
    pub epoch: u64,
}

impl ClockDrift {
    /// A perfectly synchronized clock.
    pub fn accurate() -> Self {
        ClockDrift {
            offset_secs: 0,
            skew_ppm: 0.0,
            epoch: 0,
        }
    }

    /// A clock with constant offset only.
    pub fn offset(offset_secs: i64) -> Self {
        ClockDrift {
            offset_secs,
            skew_ppm: 0.0,
            epoch: 0,
        }
    }

    /// What this clock claims when the true time is `t`. Saturates at zero
    /// rather than going negative.
    pub fn claimed(&self, t: u64) -> u64 {
        let skew = self.skew_ppm * (t.saturating_sub(self.epoch)) as f64 / 1e6;
        let claimed = t as i64 + self.offset_secs + skew as i64;
        claimed.max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_clock_is_identity() {
        let c = ClockDrift::accurate();
        for t in [0u64, 1, 1_000_000_000] {
            assert_eq!(c.claimed(t), t);
        }
    }

    #[test]
    fn positive_and_negative_offsets() {
        assert_eq!(ClockDrift::offset(30).claimed(100), 130);
        assert_eq!(ClockDrift::offset(-30).claimed(100), 70);
    }

    #[test]
    fn saturates_at_zero() {
        assert_eq!(ClockDrift::offset(-500).claimed(100), 0);
    }

    #[test]
    fn skew_accumulates() {
        let c = ClockDrift {
            offset_secs: 0,
            skew_ppm: 1000.0,
            epoch: 1000,
        };
        // 1000 ppm = 1ms/s; after 10,000s → 10s ahead.
        assert_eq!(c.claimed(11_000), 11_010);
        // Before the epoch: no skew has accumulated.
        assert_eq!(c.claimed(500), 500);
    }
}
