//! Property-based tests for statistical time: no flow is ever duplicated,
//! ordering of flushes is sane, and drifted-but-in-range traffic survives.

use ipd_lpm::Addr;
use ipd_netflow::FlowRecord;
use ipd_stattime::{ClockDrift, Flush, StatTimeConfig, TimeBucketer};
use proptest::prelude::*;

fn flow(ts: u64, tag: u32) -> FlowRecord {
    FlowRecord::synthetic(ts, Addr::v4(tag), 1, 1)
}

fn cfg(threshold: usize) -> StatTimeConfig {
    StatTimeConfig {
        bucket_secs: 60,
        activity_threshold: threshold,
        max_skew_buckets: 2,
        promote_threshold: 10,
    }
}

proptest! {
    /// Conservation: every pushed flow is either accepted (and eventually
    /// flushed, emitted or discarded) or rejected as out-of-range — never
    /// duplicated, never silently lost.
    #[test]
    fn flows_are_conserved(
        offsets in proptest::collection::vec((0u64..1200, any::<u32>()), 1..300),
        threshold in 0usize..20,
    ) {
        let mut tb = TimeBucketer::new(cfg(threshold));
        let mut accepted = 0u64;
        for &(ts, tag) in &offsets {
            if tb.push(flow(ts, tag)) {
                accepted += 1;
            }
        }
        let mut flushed = tb.flush_closed();
        flushed.extend(tb.finish());
        let mut emitted = 0u64;
        let mut discarded = 0u64;
        for f in &flushed {
            match f {
                Flush::Emitted { flows, .. } => emitted += flows.len() as u64,
                Flush::Discarded { flows, .. } => discarded += *flows as u64,
            }
        }
        prop_assert_eq!(emitted + discarded, accepted);
        prop_assert_eq!(accepted + tb.out_of_range_count(), offsets.len() as u64);
        // Emitted buckets meet the threshold; discarded ones do not.
        for f in &flushed {
            match f {
                Flush::Emitted { flows, bucket_start } => {
                    prop_assert!(flows.len() >= threshold);
                    prop_assert!(flows.iter().all(|fl| fl.ts == *bucket_start));
                }
                Flush::Discarded { flows, .. } => prop_assert!(*flows < threshold),
            }
        }
    }

    /// Bucket starts are unique and sorted within one flush call.
    #[test]
    fn flush_is_ordered(
        offsets in proptest::collection::vec(0u64..3000, 1..300),
    ) {
        let mut tb = TimeBucketer::new(cfg(0));
        for (i, &ts) in offsets.iter().enumerate() {
            tb.push(flow(ts, i as u32));
        }
        let flushed = tb.finish();
        let starts: Vec<u64> = flushed
            .iter()
            .map(|f| match f {
                Flush::Emitted { bucket_start, .. } | Flush::Discarded { bucket_start, .. } => {
                    *bucket_start
                }
            })
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&starts, &sorted);
    }

    /// A clock with drift inside the skew window never loses traffic.
    #[test]
    fn small_drift_is_tolerated(offset in -100i64..=100) {
        let drift = ClockDrift::offset(offset);
        let mut tb = TimeBucketer::new(cfg(0));
        let mut accepted = 0;
        for i in 0..200u64 {
            let true_ts = 6000 + i * 3;
            // Interleave an accurate reference stream with the drifted one.
            tb.push(flow(true_ts, 1));
            if tb.push(flow(drift.claimed(true_ts), 2)) {
                accepted += 1;
            }
        }
        // |offset| ≤ 100 s < max_skew_buckets × 60 s + bucket: everything
        // within two buckets of statistical now must be kept.
        prop_assert_eq!(accepted, 200);
        prop_assert_eq!(tb.out_of_range_count(), 0);
    }
}
