//! `ipd-tool` — command-line front end for the IPD reproduction.
//!
//! ```text
//! ipd-tool simulate --minutes 30 --flows-per-minute 20000 --seed 42 \
//!          --out trace.ipdt [--bgp-dump rib.txt]
//! ipd-tool run      --trace trace.ipdt [--q 0.95] [--cidr-max 28] \
//!          [--factor <auto>] [--shards K] [--table3 out.txt]
//! ipd-tool lookup   --trace trace.ipdt --addr 22.1.2.3 [--addr ...]
//! ipd-tool info     --trace trace.ipdt
//! ```
//!
//! `simulate` generates the synthetic tier-1 world and records its flow
//! stream to a trace file; `run` replays any trace through the engine and
//! prints the classification summary (optionally the full Table-3 output);
//! `lookup` resolves addresses against the final LPM table; `info` shows
//! trace statistics; `checkpoint` inspects a durable state directory;
//! `restore` recovers a crashed run and finishes the stream; `serve` runs
//! the pipeline and the ingress-lookup query server together, publishing a
//! fresh epoch every bucket close (or serves the last durable checkpoint
//! directly, no replay); `query` is the matching one-liner client.

mod args;

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::process::ExitCode;

use args::{ArgError, Args};
use ipd::output::default_ingress_format;
use ipd::pipeline::{
    run_offline_instrumented, run_offline_with, BucketClock, IpdPipeline, NoopHook, PipelineConfig,
    PipelineHook, PipelineOutput, ShardedPipeline, TickEngine,
};
use ipd::{IpdEngine, IpdParams, ShardedEngine, Snapshot};
use ipd_bgp::write_dump;
use ipd_hist::{HistConfig, HistPublisher, HistStore, HistTelemetry};
use ipd_lpm::Addr;
use ipd_netflow::{FlowRecord, TraceReader, TraceWriter};
use ipd_serve::proto::{AnswerKind, WireAnswer};
use ipd_serve::{
    ClientPool, HistoryProvider, RetryPolicy, ServeClient, ServePublisher, ServeServer,
    ServeTelemetry,
};
use ipd_spoof::{
    run_offline, MapView, RouteExpect, SpoofDetector, SpoofReport, SpoofRunConfig, SpoofTelemetry,
    VerdictDigest, VerdictRecord,
};
use ipd_state::{read_journal, CheckpointStore, Durable, DurableConfig};
use ipd_telemetry::{install_panic_dump, Json, MetricsServer, StallDetector, StatusHub, Telemetry};
use ipd_topology::IngressPoint;
use ipd_traffic::{DfzConfig, DfzWorld, FlowSim, SimConfig, SpoofScenario, World, WorldConfig};
use std::sync::Arc;

const USAGE: &str =
    "usage: ipd-tool <simulate|run|lookup|info|checkpoint|restore|serve|query|spoof|hist> [--options]
  simulate   --out FILE [--minutes N] [--flows-per-minute N] [--seed N] [--bgp-dump FILE]
  run        --trace FILE [--q Q] [--cidr-max N] [--factor F] [--shards K] [--table3 FILE]
             [--checkpoint-dir DIR] [--checkpoint-every BUCKETS] [--retain N] [--limit N]
             [--metrics-addr HOST:PORT] [--metrics-dump]
  run        --scale dfz|100k|10k [--minutes N] [--seed N] [--prefixes N] [--v6-prefixes N]
             [--routers N] [--links N] [--flows-per-minute N] [--flap-fraction F]
             [--flap-secs S] [--updown-fraction F] [--up-secs S] [--down-secs S]
             (streaming DFZ substrate with route churn; no trace file involved)
  lookup     --trace FILE --addr A [--addr B ...]   (repeat via comma list)
  info       --trace FILE
  checkpoint --dir DIR                              (inspect a state directory)
  restore    --dir DIR [--trace FILE] [--shards K] [--table3 FILE]
  serve      --trace FILE | --from-checkpoint DIR   [--addr HOST:PORT] [--shards K]
             [--linger-secs S] [--port-file FILE] [--metrics-addr HOST:PORT]
             [--hist-dir DIR]       (record every epoch; answer QueryAt/DiffRange)
  query      --server HOST:PORT [--addr A,B,...] [--info] [--dump]
             [--at-epoch N] [--diff FROM,TO] [--wait-epoch N]
  top        --metrics-addr HOST:PORT [--interval-secs S] [--once]
             (live terminal view over a process's /statusz endpoint)
  spoof      --scale dfz|100k|10k [scale knobs] [--shards K] [--window-secs S]
             [--spoof-share F] [--shift-share F] [--shift-lag-secs S]
             [--server HOST:PORT [--pool N] | --from-checkpoint DIR]
             (judge a labeled scenario stream: offline deployment loop by
              default, or against a live server / a frozen checkpointed map)
  hist record   --dir DIR (--trace FILE | --scale dfz|100k|10k [scale knobs])
                [--shards K] [--keyframe-every K]
  hist info     --dir DIR
  hist query-at --dir DIR (--epoch N | --at-ts T) [--addr A,B,...]
  hist diff     --dir DIR --from N --to N [--limit N]
  hist compact  --dir DIR";

/// Snapshot cadence (in ticks) used by `run` and `restore`; the two must
/// agree for a restored run to resume the exact snapshot rhythm.
const SNAPSHOT_EVERY_TICKS: u32 = 5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ipd-tool: {e}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_cli(raw: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    // `hist` takes an action word before the options (`hist record --dir …`);
    // fold it into the command so the flat parser stays positional-free.
    let mut raw = raw;
    if raw.first().map(String::as_str) == Some("hist") {
        match raw.get(1) {
            Some(action) if !action.starts_with('-') => {
                let action = raw.remove(1);
                raw[0] = format!("hist-{action}");
            }
            _ => {
                return Err(Box::new(ArgError(
                    "hist needs an action: record, info, query-at, diff, or compact".into(),
                )))
            }
        }
    }
    let args = Args::parse(raw)?;
    match args.command.as_str() {
        "simulate" => simulate(&args),
        "run" => run(&args),
        "lookup" => lookup(&args),
        "info" => info(&args),
        "checkpoint" => checkpoint(&args),
        "restore" => restore(&args),
        "serve" => serve(&args),
        "query" => query(&args),
        "top" => top(&args),
        "spoof" => spoof(&args),
        "hist-record" => hist_record(&args),
        "hist-info" => hist_info(&args),
        "hist-query-at" => hist_query_at(&args),
        "hist-diff" => hist_diff(&args),
        "hist-compact" => hist_compact(&args),
        other => Err(Box::new(ArgError(format!("unknown subcommand {other:?}")))),
    }
}

fn simulate(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let out = args.require("out")?;
    let minutes: u64 = args.get_or("minutes", 30)?;
    let flows_per_minute: u64 = args.get_or("flows-per-minute", 20_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let quiet = args.flag("quiet");

    let world = World::generate(WorldConfig::default(), seed);
    if !quiet {
        eprintln!(
            "world: {} ASes, {} routers, {} links, {} BGP prefixes",
            world.ases.len(),
            world.topology.routers().len(),
            world.topology.links().len(),
            world.rib.prefix_count()
        );
    }
    if let Some(path) = args.get("bgp-dump") {
        std::fs::write(path, write_dump(&world.rib, world.config.epoch))?;
        eprintln!("wrote BGP table dump to {path}");
    }
    let mut sim = FlowSim::new(
        world,
        SimConfig {
            flows_per_minute,
            seed,
            ..SimConfig::default()
        },
    );
    let mut writer = TraceWriter::new(BufWriter::new(File::create(out)?))?;
    for m in 0..minutes {
        for lf in sim.next_minute().flows {
            writer.write(&lf.flow)?;
        }
        if m % 10 == 9 {
            eprintln!("  {}/{} minutes, {} flows", m + 1, minutes, writer.count());
        }
    }
    let n = writer.count();
    writer.finish()?.flush()?;
    eprintln!("wrote {n} flows over {minutes} minutes to {out}");
    Ok(())
}

fn load_trace(path: &str) -> Result<Vec<FlowRecord>, Box<dyn std::error::Error>> {
    let reader = TraceReader::new(BufReader::new(File::open(path)?))?;
    let mut flows = Vec::new();
    for r in reader {
        flows.push(r?);
    }
    Ok(flows)
}

/// Make the durability hook `run` drives the engine with: a [`Durable`]
/// session when `--checkpoint-dir` is given, the no-op hook otherwise.
fn make_hook(
    args: &Args,
    engine: &IpdEngine,
    telemetry: &Telemetry,
) -> Result<Box<dyn PipelineHook>, Box<dyn std::error::Error>> {
    let Some(dir) = args.get("checkpoint-dir") else {
        return Ok(Box::new(NoopHook));
    };
    let config = DurableConfig {
        checkpoint_every_buckets: args.get_or("checkpoint-every", 10)?,
        retain: args.get_or("retain", 3)?,
    };
    let durable =
        Durable::start(dir, engine, BucketClock::default(), config)?.with_telemetry(telemetry);
    eprintln!(
        "durable: checkpointing to {dir} every {} buckets (generation {}, retaining {})",
        config.checkpoint_every_buckets,
        durable.seq(),
        config.retain
    );
    Ok(Box::new(durable))
}

/// Auto-scale the n_cidr factor to the trace's flow rate unless given.
/// Computed over the whole trace, before any --limit cut, so a truncated
/// (crash-simulating) run uses the same parameters as a full one. Returns
/// the parameters and the observed flow rate per minute.
fn trace_params(
    args: &Args,
    flows: &[FlowRecord],
) -> Result<(IpdParams, f64), Box<dyn std::error::Error>> {
    let span_secs = match (flows.first(), flows.last()) {
        (Some(a), Some(b)) => b.ts.saturating_sub(a.ts).max(60),
        _ => 60,
    };
    let rate_per_min = flows.len() as f64 / (span_secs as f64 / 60.0);
    let auto_factor = (64.0 / 32.0e6 * rate_per_min).max(1e-4);
    let params = IpdParams {
        q: args.get_or("q", 0.95)?,
        cidr_max_v4: args.get_or("cidr-max", 28)?,
        ncidr_factor_v4: args.get_or("factor", auto_factor)?,
        ncidr_factor_v6: (rate_per_min * 1.5e-11).max(1e-9),
        ..IpdParams::default()
    };
    Ok((params, rate_per_min))
}

fn engine_over(
    args: &Args,
    flows: &[FlowRecord],
    telemetry: &Telemetry,
) -> Result<(IpdEngine, Option<Snapshot>), Box<dyn std::error::Error>> {
    let (params, rate_per_min) = trace_params(args, flows)?;
    let shards: usize = args.get_or("shards", 1)?;
    let limit: usize = args.get_or("limit", flows.len())?;
    let flows = &flows[..limit.min(flows.len())];
    eprintln!(
        "running IPD over {} flows (~{:.0} flows/min), q={}, cidr_max=/{}, n_cidr factor={:.4}, shards={}",
        flows.len(),
        rate_per_min,
        params.q,
        params.cidr_max_v4,
        params.ncidr_factor_v4,
        shards
    );
    let mut last_snapshot = None;
    let mut capture = |o: PipelineOutput| {
        if let PipelineOutput::Snapshot(s) = o {
            last_snapshot = Some(s);
        }
    };
    // The shard count only changes how many cores stage 1/2 run on — the
    // results are bit-for-bit identical at any K (see the shard module docs).
    // K != 1 goes through ShardedEngine so invalid counts (0, non-powers of
    // two, > 256) are rejected by its validation.
    let engine = if shards != 1 {
        let mut sharded = ShardedEngine::new(params, shards)?;
        sharded.attach_telemetry(telemetry);
        let mut hook = make_hook(args, sharded.engine(), telemetry)?;
        run_offline_instrumented(
            &mut sharded,
            flows.iter().cloned(),
            SNAPSHOT_EVERY_TICKS,
            None,
            hook.as_mut(),
            telemetry,
            &mut capture,
        );
        sharded.into_engine()
    } else {
        let mut engine = IpdEngine::new(params)?;
        let mut hook = make_hook(args, &engine, telemetry)?;
        run_offline_instrumented(
            &mut engine,
            flows.iter().cloned(),
            SNAPSHOT_EVERY_TICKS,
            None,
            hook.as_mut(),
            telemetry,
            &mut capture,
        );
        engine
    };
    Ok((engine, last_snapshot))
}

/// The classification summary both `run` and `restore` print.
fn report(
    args: &Args,
    engine: &IpdEngine,
    snapshot: Snapshot,
) -> Result<(), Box<dyn std::error::Error>> {
    let stats = engine.stats();
    println!("flows ingested:     {}", stats.flows_ingested);
    println!("stage-2 cycles:     {}", stats.ticks);
    println!("splits/joins:       {}/{}", stats.splits, stats.joins);
    println!("classifications:    {}", stats.classifications);
    println!("drops:              {}", stats.drops);
    println!("live ranges:        {}", engine.range_count());
    println!("classified ranges:  {}", engine.classified_count());
    println!(
        "state estimate:     {} KiB",
        engine.state_bytes_estimate() / 1024
    );
    if let Some(path) = args.get("table3") {
        std::fs::write(path, snapshot.to_table3(&default_ingress_format))?;
        println!(
            "wrote Table-3 output ({} ranges) to {path}",
            snapshot.records.len()
        );
    } else {
        println!("\ntop classified ranges by samples:");
        let mut classified: Vec<_> = snapshot.classified().collect();
        classified.sort_by(|a, b| b.sample_count.partial_cmp(&a.sample_count).expect("finite"));
        for r in classified.iter().take(10) {
            println!("  {}", r.table3_line(&default_ingress_format));
        }
    }
    Ok(())
}

/// Telemetry setup for `run` and `serve`: a live registry when either
/// metrics option is present (`--metrics-addr` additionally serves it over
/// HTTP, with `/statusz` beside `/metrics`), a disabled one otherwise — so
/// runs without the flags pay nothing. The returned [`StatusHub`] accepts
/// extra sections after the server is already bound (`serve` registers its
/// store and history state there). A live registry also installs the
/// panic-hook flight dump, so a crash prints the last recorded events.
fn metrics_setup(
    args: &Args,
) -> Result<(Telemetry, Option<MetricsServer>, StatusHub), Box<dyn std::error::Error>> {
    let telemetry = if args.get("metrics-addr").is_some() || args.flag("metrics-dump") {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    install_panic_dump(&telemetry.flight());
    let hub = StatusHub::with_telemetry(&telemetry);
    let server = match args.get("metrics-addr") {
        Some(addr) => {
            let server = MetricsServer::serve_with_status(addr, telemetry.clone(), hub.clone())?;
            eprintln!(
                "metrics: serving Prometheus text on http://{}/metrics \
                 (introspection on /statusz)",
                server.local_addr()
            );
            Some(server)
        }
        None => None,
    };
    Ok((telemetry, server, hub))
}

/// Resolve `--scale` plus its override knobs into a [`DfzConfig`]. The
/// preset picks coherent defaults; every knob then overrides its field.
fn dfz_config(args: &Args) -> Result<(DfzConfig, u64), Box<dyn std::error::Error>> {
    let scale = args.require("scale")?;
    let seed: u64 = args.get_or("seed", 42)?;
    let mut cfg = match scale {
        "dfz" => DfzConfig::dfz(seed),
        "100k" => DfzConfig::tier_100k(seed),
        "10k" => DfzConfig::smoke_10k(seed),
        other => {
            return Err(Box::new(ArgError(format!(
                "unknown --scale {other:?} (want dfz, 100k, or 10k)"
            ))))
        }
    };
    if let Some(v) = args.get("prefixes") {
        cfg.plan.v4_prefixes = v.parse()?;
    }
    if let Some(v) = args.get("v6-prefixes") {
        cfg.plan.v6_prefixes = v.parse()?;
    }
    if let Some(v) = args.get("routers") {
        cfg.topology.routers = v.parse()?;
    }
    if let Some(v) = args.get("links") {
        cfg.topology.links = v.parse()?;
    }
    // Keep the hierarchy valid if the router count was shrunk below the
    // preset's PoP count.
    cfg.topology.pops = cfg
        .topology
        .pops
        .min(cfg.topology.routers.min(u16::MAX as u32) as u16);
    cfg.topology.countries = cfg.topology.countries.min(cfg.topology.pops);
    cfg.flows_per_minute = args.get_or("flows-per-minute", cfg.flows_per_minute)?;
    cfg.churn.flap_fraction = args.get_or("flap-fraction", cfg.churn.flap_fraction)?;
    cfg.churn.flap_mean_secs = args.get_or("flap-secs", cfg.churn.flap_mean_secs)?;
    cfg.churn.updown_fraction = args.get_or("updown-fraction", cfg.churn.updown_fraction)?;
    cfg.churn.up_mean_secs = args.get_or("up-secs", cfg.churn.up_mean_secs)?;
    cfg.churn.down_mean_secs = args.get_or("down-secs", cfg.churn.down_mean_secs)?;
    let minutes: u64 = args.get_or("minutes", 10)?;
    Ok((cfg, minutes))
}

/// `run --scale`: stream a churned DFZ-scale substrate straight into the
/// engine — no trace file, no materialized world; memory is the engine's own
/// state plus a few hundred KiB of generator tables.
fn run_scale(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (cfg, minutes) = dfz_config(args)?;
    let (telemetry, _server, _hub) = metrics_setup(args)?;
    let world = DfzWorld::new(cfg);
    let rate = cfg.flows_per_minute as f64;
    let params = IpdParams {
        q: args.get_or("q", 0.95)?,
        cidr_max_v4: args.get_or("cidr-max", 28)?,
        ncidr_factor_v4: args.get_or("factor", (64.0 / 32.0e6 * rate).max(1e-4))?,
        ncidr_factor_v6: (rate * 1.5e-11).max(1e-9),
        ..IpdParams::default()
    };
    let shards: usize = args.get_or("shards", 1)?;
    eprintln!(
        "scale world: {} IPv4 + {} IPv6 prefixes, {} routers, {} links, {} ASes \
         ({} KiB resident)",
        cfg.plan.v4_prefixes,
        cfg.plan.v6_prefixes,
        world.topology.router_count(),
        world.topology.link_count(),
        cfg.plan.ases,
        world.memory_bytes() / 1024,
    );
    eprintln!(
        "streaming {minutes} minutes at nominal {} flows/min (flap {:.0}% ~{}s, \
         up/down {:.0}% ~{}s/{}s), q={}, n_cidr factor={:.4}, shards={shards}",
        cfg.flows_per_minute,
        cfg.churn.flap_fraction * 100.0,
        cfg.churn.flap_mean_secs,
        cfg.churn.updown_fraction * 100.0,
        cfg.churn.up_mean_secs,
        cfg.churn.down_mean_secs,
        params.q,
        params.ncidr_factor_v4,
    );
    let mut last_snapshot = None;
    let mut capture = |o: PipelineOutput| {
        if let PipelineOutput::Snapshot(s) = o {
            last_snapshot = Some(s);
        }
    };
    let flows = world.flows(minutes).map(|f| f.flow);
    let engine = if shards != 1 {
        let mut sharded = ShardedEngine::new(params, shards)?;
        sharded.attach_telemetry(&telemetry);
        let mut hook = make_hook(args, sharded.engine(), &telemetry)?;
        run_offline_instrumented(
            &mut sharded,
            flows,
            SNAPSHOT_EVERY_TICKS,
            None,
            hook.as_mut(),
            &telemetry,
            &mut capture,
        );
        sharded.into_engine()
    } else {
        let mut engine = IpdEngine::new(params)?;
        let mut hook = make_hook(args, &engine, &telemetry)?;
        run_offline_instrumented(
            &mut engine,
            flows,
            SNAPSHOT_EVERY_TICKS,
            None,
            hook.as_mut(),
            &telemetry,
            &mut capture,
        );
        engine
    };
    let snapshot = last_snapshot.ok_or("scale stream produced no snapshots (zero minutes?)")?;
    report(args, &engine, snapshot)?;
    if args.flag("metrics-dump") {
        println!("\nend-of-run metrics:");
        print!("{}", telemetry.snapshot().render_table());
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    if args.get("scale").is_some() {
        return run_scale(args);
    }
    let flows = load_trace(args.require("trace")?)?;
    let (telemetry, _server, _hub) = metrics_setup(args)?;
    let (engine, snapshot) = engine_over(args, &flows, &telemetry)?;
    let snapshot = snapshot.ok_or("trace produced no snapshots (empty?)")?;
    report(args, &engine, snapshot)?;
    if args.flag("metrics-dump") {
        println!("\nend-of-run metrics:");
        print!("{}", telemetry.snapshot().render_table());
    }
    Ok(())
}

/// Inspect a durable state directory: one line per generation.
fn checkpoint(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.require("dir")?;
    let store = CheckpointStore::open(dir)?;
    let gens = store.generations()?;
    if gens.is_empty() {
        println!("no checkpoints in {dir}");
        return Ok(());
    }
    for seq in gens {
        match store.load_checkpoint(seq)? {
            Ok(state) => println!(
                "gen {seq}: valid, bucket {}, {} flows ingested, {} ingresses, {} ticks",
                state
                    .clock
                    .current_bucket
                    .map_or("-".into(), |b| b.to_string()),
                state.dump.stats.flows_ingested,
                state.dump.ingresses.len(),
                state.dump.stats.ticks,
            ),
            Err(e) => println!("gen {seq}: INVALID ({e})"),
        }
        let jpath = store.journal_path(seq);
        if jpath.exists() {
            let j = read_journal(&jpath)?;
            println!(
                "         journal: {} flows{}",
                j.records.len(),
                if j.torn_tail { ", torn tail" } else { "" }
            );
        }
    }
    Ok(())
}

/// Recover a crashed run from its state directory. With `--trace`, the
/// remainder of the stream (everything past the flows the restored engine
/// already ingested) is re-delivered before the final tick fires; without
/// it, the final tick closes out the restored state as-is.
fn restore(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.require("dir")?;
    let restored = ipd_state::restore(Path::new(dir), SNAPSHOT_EVERY_TICKS)?;
    eprintln!(
        "restored generation {} from {dir}: {} journal flows replayed{}{}",
        restored.seq,
        restored.replayed,
        if restored.torn_tail {
            ", torn journal tail"
        } else {
            ""
        },
        if restored.fell_back > 0 {
            format!(
                ", fell back past {} damaged generation(s)",
                restored.fell_back
            )
        } else {
            String::new()
        },
    );
    let applied = restored.engine.stats().flows_ingested as usize;
    let rest: Vec<FlowRecord> = match args.get("trace") {
        Some(path) => {
            let flows = load_trace(path)?;
            eprintln!(
                "continuing with {} of {} trace flows",
                flows.len().saturating_sub(applied),
                flows.len()
            );
            flows.get(applied..).unwrap_or(&[]).to_vec()
        }
        None => Vec::new(),
    };

    let mut last_snapshot = None;
    let mut capture = |o: PipelineOutput| {
        if let PipelineOutput::Snapshot(s) = o {
            last_snapshot = Some(s);
        }
    };
    let shards: usize = args.get_or("shards", 1)?;
    let engine = if shards != 1 {
        // A checkpoint is shard-count-free: restore at any width.
        let mut sharded = ShardedEngine::from_engine(restored.engine, shards)?;
        run_offline_with(
            &mut sharded,
            rest,
            SNAPSHOT_EVERY_TICKS,
            Some(restored.clock),
            &mut NoopHook,
            &mut capture,
        );
        sharded.into_engine()
    } else {
        let mut engine = restored.engine;
        run_offline_with(
            &mut engine,
            rest,
            SNAPSHOT_EVERY_TICKS,
            Some(restored.clock),
            &mut NoopHook,
            &mut capture,
        );
        engine
    };
    let snapshot = last_snapshot.ok_or("restored state produced no snapshot (no flows ever?)")?;
    report(args, &engine, snapshot)
}

/// Run the query server: drive a trace through the live pipeline (one
/// epoch per bucket close) or serve the newest durable checkpoint directly
/// (one epoch, no replay). `--linger-secs` keeps answering after the
/// source is exhausted; `--port-file` records the bound addresses for
/// scripts (line 1 query, line 2 metrics or `-`).
fn serve(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (telemetry, metrics_server, hub) = metrics_setup(args)?;
    let serve_metrics = ServeTelemetry::register(&telemetry);
    // One live-store region per engine shard: incremental publication then
    // parallelises along the same axis as ingest.
    let shards: usize = args.get_or("shards", 1)?;
    let mut publisher = ServePublisher::with_config(shards, serve_metrics.clone());
    let swap = publisher.swap();
    // --hist-dir: every published epoch is also appended to a longitudinal
    // store, and the server answers QueryAt/DiffRange out of it.
    let mut hist_pub = match args.get("hist-dir") {
        Some(dir) => {
            let store = HistStore::open_with(
                dir,
                HistConfig::default(),
                HistTelemetry::register(&telemetry),
            )?;
            eprintln!(
                "serve: recording history to {dir} (next epoch {})",
                store.last_epoch() + 1
            );
            Some(HistPublisher::new(store))
        }
        None => None,
    };
    let hist_store = hist_pub.as_ref().map(|p| p.store());
    let history: Option<Arc<dyn HistoryProvider>> = hist_store
        .as_ref()
        .map(|s| Arc::new(s.reader()) as Arc<dyn HistoryProvider>);
    // /statusz sections beyond the built-ins: the live store's publication
    // state (including garbage and rotation accounting) and, when recording,
    // the history manifest. Field names are part of the DESIGN.md §16
    // append-only contract.
    {
        let status_swap = swap.clone();
        hub.register("serve", move || {
            let current = status_swap.load();
            format!(
                "{{\"epoch\":{},\"ts\":{},\"entries\":{},\"memory_bytes\":{},\
                 \"garbage\":{},\"rotations\":{}}}",
                current.value.epoch(),
                current.value.ts(),
                current.value.len(),
                current.value.memory_bytes(),
                current.value.garbage(),
                current.epoch,
            )
        });
    }
    if let Some(store) = &hist_store {
        let store = Arc::clone(store);
        hub.register("hist", move || {
            format!(
                "{{\"last_epoch\":{},\"segments\":{},\"keyframes\":{},\"bytes_on_disk\":{}}}",
                store.last_epoch(),
                store.segment_count(),
                store.reader().keyframe_count(),
                store.bytes_on_disk(),
            )
        });
    }
    // Stall detection over the freshness watermarks: a wedged publication
    // (or persistence) stage surfaces within one poll interval, recording a
    // stall flight event and dumping the recorder tail to stderr. Watermark
    // registration is idempotent, so looking the stages up by name here
    // shares the cells the pipeline and hist layers record into.
    let _stall = if telemetry.is_enabled() {
        let mut detector = StallDetector::new(
            telemetry.watermark(
                "ipd_pipeline_ingest_watermark",
                "Flow time of the latest flow batch handed to the engine",
            ),
            telemetry.flight(),
            telemetry.counter("ipd_serve_stalls_total", "Stages detected wedged"),
        );
        detector.watch("publish", serve_metrics.publish_watermark.clone());
        if hist_store.is_some() {
            detector.watch(
                "hist",
                telemetry.watermark(
                    "ipd_hist_persist_watermark",
                    "Flow time of the latest durably appended epoch",
                ),
            );
        }
        Some(detector.spawn(std::time::Duration::from_secs(2)))
    } else {
        None
    };
    let server = ServeServer::serve_with_history(
        args.get("addr").unwrap_or("127.0.0.1:0"),
        swap.clone(),
        serve_metrics,
        history,
    )?;
    eprintln!("serve: answering queries on {}", server.local_addr());
    if let Some(path) = args.get("port-file") {
        // Written whole then renamed, so a polling script never reads a
        // half-written file.
        let metrics_line = metrics_server
            .as_ref()
            .map_or("-".to_string(), |s| s.local_addr().to_string());
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{}\n{metrics_line}\n", server.local_addr()))?;
        std::fs::rename(&tmp, path)?;
    }

    if let Some(dir) = args.get("from-checkpoint") {
        let store = CheckpointStore::open(dir)?;
        let (seq, engine, clock) = store
            .latest_engine()?
            .ok_or("no restorable checkpoint in the state directory")?;
        let ts = clock
            .current_bucket
            .map_or(0, |b| b * engine.params().t_secs);
        let epoch = publisher.publish_now(&engine, ts);
        if let Some(store) = &hist_store {
            store.append_store(&ipd_serve::IngressStore::from_engine(&engine, ts))?;
        }
        eprintln!(
            "serve: published generation {seq} ({} classified ranges, data ts {ts}) as epoch {epoch}",
            engine.classified_count()
        );
    } else {
        let flows = load_trace(args.require("trace")?)?;
        let (params, rate) = trace_params(args, &flows)?;
        eprintln!(
            "serve: streaming {} flows (~{rate:.0} flows/min) through the pipeline, shards={shards}",
            flows.len()
        );
        let config = PipelineConfig {
            params,
            shards,
            snapshot_every_ticks: SNAPSHOT_EVERY_TICKS,
            telemetry: telemetry.clone(),
            ..PipelineConfig::default()
        };
        // With a history directory the pipeline hook publishes on both
        // planes; append errors latch inside the wrapped HistPublisher (the
        // boxed hook is not recoverable after finish), so the end-of-run
        // compaction below is what surfaces persistent I/O trouble.
        let hook: Box<dyn PipelineHook> = match hist_pub.take() {
            Some(hist) => Box::new(RecordingPublisher {
                serve: publisher,
                hist,
            }),
            None => Box::new(publisher),
        };
        // The bounded output channel must be drained or the engine stalls
        // mid-stream; serve has no other use for the tick reports.
        let classified = if shards != 1 {
            let pipeline = ShardedPipeline::spawn_hooked(config, hook)?;
            let rx = pipeline.output().clone();
            let drainer = std::thread::spawn(move || rx.iter().count());
            let tx = pipeline.input();
            for chunk in flows.chunks(4096) {
                tx.send(chunk.to_vec())
                    .map_err(|_| "pipeline input closed early")?;
            }
            drop(tx);
            let (engine, _hook, _leftover) = pipeline.finish_hooked();
            drainer.join().expect("drainer");
            engine.into_engine().classified_count()
        } else {
            let pipeline = IpdPipeline::spawn_hooked(config, hook)?;
            let rx = pipeline.output().clone();
            let drainer = std::thread::spawn(move || rx.iter().count());
            let tx = pipeline.input();
            for chunk in flows.chunks(4096) {
                tx.send(chunk.to_vec())
                    .map_err(|_| "pipeline input closed early")?;
            }
            drop(tx);
            let (engine, _hook, _leftover) = pipeline.finish_hooked();
            drainer.join().expect("drainer");
            engine.classified_count()
        };
        eprintln!(
            "serve: stream complete at epoch {}, {classified} classified ranges",
            swap.load().value.epoch()
        );
    }

    let linger: u64 = args.get_or("linger-secs", 0)?;
    if linger > 0 {
        eprintln!("serve: answering for another {linger}s");
        std::thread::sleep(std::time::Duration::from_secs(linger));
    }
    if let Some(store) = &hist_store {
        store.compact_now()?;
        store.flush()?;
        eprintln!(
            "serve: history holds epochs {:?} ({} segments, {} KiB on disk)",
            store.reader().epochs(),
            store.segment_count(),
            store.bytes_on_disk() / 1024
        );
    }
    server.shutdown();
    drop(metrics_server);
    Ok(())
}

/// `serve --hist-dir`: one pipeline hook feeding both publication planes —
/// the live epoch swap and the longitudinal store — so the wire epoch and
/// the recorded epoch advance in lockstep.
struct RecordingPublisher {
    serve: ServePublisher,
    hist: HistPublisher,
}

impl PipelineHook for RecordingPublisher {
    fn flows(&mut self, flows: &[FlowRecord]) {
        self.serve.flows(flows);
        self.hist.flows(flows);
    }

    fn bucket_crossed(&mut self, engine: &IpdEngine, clock: BucketClock) {
        self.serve.bucket_crossed(engine, clock);
        self.hist.bucket_crossed(engine, clock);
    }

    fn finished(&mut self, engine: &IpdEngine, clock: BucketClock) {
        self.serve.finished(engine, clock);
        self.hist.finished(engine, clock);
    }

    fn closed(&mut self, engine: &IpdEngine, clock: BucketClock) {
        self.serve.closed(engine, clock);
        self.hist.closed(engine, clock);
    }
}

fn parse_addrs(spec: &str) -> Result<Vec<Addr>, std::net::AddrParseError> {
    spec.split(',')
        .map(|s| s.trim().parse::<std::net::IpAddr>().map(Addr::from))
        .collect()
}

fn print_wire_answer(addr: Addr, a: &ipd_serve::proto::WireAnswer) {
    match a.kind {
        AnswerKind::Unmapped => println!("  {addr:<18} (not classified)"),
        AnswerKind::Link => println!(
            "  {addr:<18} /{:<3} router {} if {}   link    confidence {:.3}",
            a.prefix_len, a.router, a.ifindex, a.confidence
        ),
        AnswerKind::Bundle => println!(
            "  {addr:<18} /{:<3} router {} if {}+  bundle  confidence {:.3}",
            a.prefix_len, a.router, a.ifindex, a.confidence
        ),
    }
}

fn wire_ingress_label(i: &Option<ipd_serve::proto::WireIngress>) -> String {
    match i {
        Some(w) if w.bundle => format!("router {} if {}+ (bundle)", w.router, w.ifindex),
        Some(w) => format!("router {} if {}", w.router, w.ifindex),
        None => "(unmapped)".to_string(),
    }
}

/// One-shot client against a running `serve`: batched lookups and/or the
/// store metadata line, plus the time-travel operations when the server
/// carries a history (`--at-epoch`, `--diff`) and epoch synchronization
/// (`--wait-epoch`).
fn query(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut client = ServeClient::connect(args.require("server")?)?;
    if args.flag("dump") {
        let events = client.dump()?;
        println!("{} flight event(s):", events.len());
        print!("{}", ipd_telemetry::render_events(&events));
        return Ok(());
    }
    if let Some(min) = args.get("wait-epoch") {
        let min: u64 = min.parse()?;
        let i = client.wait_epoch(min)?;
        println!(
            "epoch {} reached (data ts {}, {} entries)",
            i.epoch, i.ts, i.entries
        );
        if args.get("addr").is_none() && args.get("diff").is_none() {
            return Ok(());
        }
    }
    if let Some(spec) = args.get("diff") {
        let (from, to) = spec
            .split_once(',')
            .ok_or_else(|| ArgError("--diff wants FROM,TO (two epochs)".into()))?;
        let (from, to) = (from.trim().parse::<u64>()?, to.trim().parse::<u64>()?);
        let changes = client.diff_range(from, to)?;
        // Routinely piped into `head`; stop quietly when the reader hangs
        // up instead of panicking on the broken pipe.
        use std::io::Write as _;
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        if writeln!(
            out,
            "{} change(s) between epoch {from} and epoch {to}:",
            changes.len()
        )
        .is_err()
        {
            return Ok(());
        }
        for c in &changes {
            if writeln!(
                out,
                "  {:<20} {} -> {}",
                c.prefix,
                wire_ingress_label(&c.before),
                wire_ingress_label(&c.after)
            )
            .is_err()
            {
                return Ok(());
            }
        }
        return Ok(());
    }
    if let Some(epoch) = args.get("at-epoch") {
        let epoch: u64 = epoch.parse()?;
        let addrs = parse_addrs(args.require("addr")?)?;
        println!("epoch {epoch} (historical):");
        for addr in addrs {
            match client.query_at(epoch, addr)? {
                Some(a) => print_wire_answer(addr, &a),
                None => return Err(format!("server does not hold epoch {epoch}").into()),
            }
        }
        return Ok(());
    }
    if args.flag("info") || args.get("addr").is_none() {
        let i = client.info()?;
        println!("epoch:     {}", i.epoch);
        println!("data ts:   {}", i.ts);
        println!("entries:   {}", i.entries);
        println!("memory:    {} KiB", i.memory_bytes / 1024);
        println!("garbage:   {}", i.garbage);
        println!("rotations: {}", i.rotations);
        println!("epoch age: {:.3} s", i.age_nanos as f64 / 1e9);
        if args.get("addr").is_none() {
            return Ok(());
        }
    }
    let addrs = parse_addrs(args.require("addr")?)?;
    let (epoch, answers) = client.batch(&addrs)?;
    println!("epoch {epoch}:");
    for (addr, a) in addrs.iter().zip(&answers) {
        print_wire_answer(*addr, a);
    }
    Ok(())
}

/// One raw `GET /statusz` against a metrics endpoint, parsed into [`Json`].
/// Plain `std::net`, mirroring the serving side's zero-dependency HTTP.
fn fetch_statusz(addr: &str) -> Result<Json, Box<dyn std::error::Error>> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(5)))?;
    // One write syscall: the server reads once and then responds.
    let request = format!("GET /statusz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .ok_or("malformed HTTP response (no header/body separator)")?;
    Ok(Json::parse(body).map_err(|e| format!("/statusz is not valid JSON: {e}"))?)
}

/// Render one scalar JSON value for the `top` view.
fn json_scalar(v: &Json) -> String {
    match v {
        Json::Num(n) => format!("{n}"),
        Json::Str(s) => s.clone(),
        Json::Bool(b) => format!("{b}"),
        Json::Null => "null".to_string(),
        Json::Arr(items) => format!("[{} items]", items.len()),
        Json::Obj(fields) => format!("{{{} fields}}", fields.len()),
    }
}

/// Format a `/statusz` document as the `top` terminal view: watermarks and
/// the flight tail get dedicated layouts, every other section prints its
/// fields generically — so sections added by future processes show up
/// without a tool upgrade (the unknown-fields-are-ignored contract, read
/// side).
fn render_statusz(doc: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if let Some(wm) = doc.get("watermarks").and_then(Json::as_obj) {
        let _ = writeln!(out, "watermarks:");
        if wm.is_empty() {
            let _ = writeln!(out, "  (none recorded)");
        }
        for (name, w) in wm {
            let num = |k: &str| w.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  {name:<36} flow_ts {:>12}  age {:>9.3}s  updates {}",
                num("flow_ts"),
                num("age_seconds"),
                num("updates"),
            );
        }
    }
    for (name, section) in doc.as_obj().unwrap_or(&[]) {
        if name == "watermarks" || name == "flight" {
            continue;
        }
        let _ = writeln!(out, "{name}:");
        match section.as_obj() {
            Some([]) => {
                let _ = writeln!(out, "  (empty)");
            }
            Some(fields) => {
                for (k, v) in fields {
                    let _ = writeln!(out, "  {k:<36} {}", json_scalar(v));
                }
            }
            None => {
                let _ = writeln!(out, "  {}", json_scalar(section));
            }
        }
    }
    if let Some(flight) = doc.get("flight") {
        let recorded = flight.get("recorded").and_then(Json::as_f64).unwrap_or(0.0);
        let _ = writeln!(out, "flight ({recorded} recorded):");
        let tail = flight.get("tail").and_then(Json::as_arr).unwrap_or(&[]);
        if tail.is_empty() {
            let _ = writeln!(out, "  (no events)");
        }
        for e in tail {
            let num = |k: &str| e.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let _ = writeln!(
                out,
                "  #{:<8} {:<16} ts={} a={} b={} c={}",
                num("seq"),
                e.get("kind").and_then(Json::as_str).unwrap_or("?"),
                num("ts"),
                num("a"),
                num("b"),
                num("c"),
            );
        }
    }
    out
}

/// `top`: a live terminal view over a process's `/statusz` endpoint —
/// freshness watermarks, lag gauges, store/history state, and the flight
/// recorder tail, refreshed in place until interrupted (`--once` renders a
/// single frame, for scripts and tests).
fn top(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let addr = args.require("metrics-addr")?;
    let interval: u64 = args.get_or("interval-secs", 2)?;
    let once = args.flag("once");
    loop {
        let doc = fetch_statusz(addr)?;
        let frame = render_statusz(&doc);
        if !once {
            // ANSI clear + home: repaint in place like top(1).
            print!("\x1b[2J\x1b[H");
        }
        println!("ipd-tool top — {addr}");
        print!("{frame}");
        if once {
            return Ok(());
        }
        std::io::Write::flush(&mut std::io::stdout())?;
        std::thread::sleep(std::time::Duration::from_secs(interval.max(1)));
    }
}

/// Resolve the scenario + detector knobs shared by every `spoof` mode.
fn spoof_scenario(args: &Args) -> Result<(SpoofScenario, u64, u64), Box<dyn std::error::Error>> {
    let (dfz, minutes) = dfz_config(args)?;
    let mut scenario = SpoofScenario::mixed(dfz);
    scenario.spoof_share = args.get_or("spoof-share", scenario.spoof_share)?;
    scenario.shift_share = args.get_or("shift-share", scenario.shift_share)?;
    scenario.shift_lag_secs = args.get_or("shift-lag-secs", scenario.shift_lag_secs)?;
    let window_secs: u64 = args.get_or("window-secs", 300)?;
    Ok((scenario, minutes, window_secs))
}

/// The machine-readable summary every `spoof` mode ends with; the CI
/// smoke job greps these lines, so keys and formats are load-bearing.
fn print_spoof_report(r: &SpoofReport) {
    println!("flows: {}", r.flows);
    println!(
        "verdicts: consistent {} spoofed {} catchment-shift {}",
        r.verdicts[0], r.verdicts[1], r.verdicts[2]
    );
    println!("precision: {:.4}", r.precision());
    println!("recall: {:.4}", r.recall());
    println!("f1: {:.4}", r.f1());
    println!("shift_non_spoofed: {:.4}", r.shift_non_spoofed());
    println!("digest: {:#018x}", r.digest);
}

/// How a [`WireAnswer`] relates to the ingress a flow arrived at. A bundle
/// answer carries only its lowest member interface over the wire, so bundle
/// matching degrades to router equality — the same router is by definition
/// where every member interface terminates.
fn wire_view(a: &WireAnswer, observed: IngressPoint) -> MapView {
    match a.kind {
        AnswerKind::Unmapped => MapView::Unmapped,
        AnswerKind::Link if a.router == observed.router && a.ifindex == observed.ifindex => {
            MapView::Match
        }
        AnswerKind::Bundle if a.router == observed.router => MapView::Match,
        _ => MapView::Mismatch,
    }
}

/// `spoof`: judge a labeled scenario stream. Three map sources share one
/// detector: the offline deployment loop (engine + live publication, the
/// exact shape `ipd-spoof` pins golden), a running `serve` instance
/// (batched lookups through a bounded connection pool), or the newest
/// durable checkpoint (one frozen epoch, no replay).
fn spoof(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let (scenario, minutes, window_secs) = spoof_scenario(args)?;
    eprintln!(
        "spoof: {} v4 + {} v6 prefixes, {} flows/min x {minutes} min, shares spoof {:.3} shift {:.3} (lag {}s), window {window_secs}s",
        scenario.dfz.plan.v4_prefixes,
        scenario.dfz.plan.v6_prefixes,
        scenario.dfz.flows_per_minute,
        scenario.spoof_share,
        scenario.shift_share,
        scenario.shift_lag_secs,
    );

    let report = if let Some(server) = args.get("server") {
        spoof_against_server(args, server, &scenario, minutes, window_secs)?
    } else if let Some(dir) = args.get("from-checkpoint") {
        spoof_against_checkpoint(dir, &scenario, minutes, window_secs)?
    } else {
        let cfg = SpoofRunConfig {
            scenario,
            minutes,
            shards: args.get_or("shards", 1)?,
            window_secs,
            snapshot_every_ticks: SNAPSHOT_EVERY_TICKS,
        };
        eprintln!(
            "spoof: offline deployment loop, shards={}, publishing every bucket close",
            cfg.shards
        );
        run_offline(&cfg, &SpoofTelemetry::default())
    };
    print_spoof_report(&report);
    Ok(())
}

/// Judge the scenario against whatever map a running `serve` holds. Lookups
/// go out in batches through a [`ClientPool`], so a slow or restarting
/// server costs reconnects, not verdicts.
fn spoof_against_server(
    args: &Args,
    server: &str,
    scenario: &SpoofScenario,
    minutes: u64,
    window_secs: u64,
) -> Result<SpoofReport, Box<dyn std::error::Error>> {
    const BATCH: usize = 256;
    let pool = ClientPool::new(server, args.get_or("pool", 2)?, RetryPolicy::default())?;
    let world = DfzWorld::new(scenario.dfz);
    let detector = SpoofDetector::new(
        RouteExpect::new(&world, window_secs),
        SpoofTelemetry::default(),
    );
    eprintln!(
        "spoof: judging against live map at {server} (pool of {}, batches of {BATCH})",
        pool.capacity()
    );

    let mut scorer = SpoofScorer::default();
    let mut pending = Vec::with_capacity(BATCH);
    let mut stream = scenario.stream(&world, minutes);
    loop {
        pending.clear();
        pending.extend(stream.by_ref().take(BATCH));
        if pending.is_empty() {
            break;
        }
        let addrs: Vec<Addr> = pending.iter().map(|sf| sf.flow.src).collect();
        let (epoch, answers) = pool.checkout().batch(&addrs)?;
        for (sf, a) in pending.iter().zip(&answers) {
            let observed = IngressPoint::new(sf.flow.router, sf.flow.input_if);
            let map = wire_view(a, observed);
            scorer.judge(&detector, sf, observed, map, epoch);
        }
    }
    Ok(scorer.finish(pool.checkout().info()?.epoch))
}

/// Judge the scenario against the newest durable checkpoint: one frozen
/// epoch published into a local [`LiveStore`](ipd_serve::LiveStore), no
/// replay, no network.
fn spoof_against_checkpoint(
    dir: &str,
    scenario: &SpoofScenario,
    minutes: u64,
    window_secs: u64,
) -> Result<SpoofReport, Box<dyn std::error::Error>> {
    let store = CheckpointStore::open(dir)?;
    let (seq, engine, clock) = store
        .latest_engine()?
        .ok_or("no restorable checkpoint in the state directory")?;
    let ts = clock
        .current_bucket
        .map_or(0, |b| b * engine.params().t_secs);
    let mut publisher = ServePublisher::new();
    let epoch = publisher.publish_now(&engine, ts);
    eprintln!(
        "spoof: judging against checkpoint generation {seq} ({} classified ranges, data ts {ts}) as epoch {epoch}",
        engine.classified_count()
    );

    let world = DfzWorld::new(scenario.dfz);
    let detector = SpoofDetector::new(
        RouteExpect::new(&world, window_secs),
        SpoofTelemetry::default(),
    );
    let swap = publisher.swap();
    let live = swap.load();
    let mut scorer = SpoofScorer::default();
    for sf in scenario.stream(&world, minutes) {
        let observed = IngressPoint::new(sf.flow.router, sf.flow.input_if);
        let map = match live.value.lookup(sf.flow.src) {
            None => MapView::Unmapped,
            Some(a) if a.ingress.matches(observed) => MapView::Match,
            Some(_) => MapView::Mismatch,
        };
        scorer.judge(&detector, &sf, observed, map, epoch);
    }
    Ok(scorer.finish(epoch))
}

/// Confusion accounting shared by the server and checkpoint modes (the
/// offline mode keeps its own inside `ipd-spoof`, where the publication
/// loop lives).
#[derive(Default)]
struct SpoofScorer {
    flows: u64,
    verdicts: [u64; 3],
    matrix: [[u64; 3]; 3],
    digest: VerdictDigest,
}

impl SpoofScorer {
    fn judge(
        &mut self,
        detector: &SpoofDetector,
        sf: &ipd_traffic::ScenarioFlow,
        observed: IngressPoint,
        map: MapView,
        epoch: u64,
    ) {
        let verdict = detector.decide(sf.flow.src, observed, sf.flow.ts, map);
        self.digest.observe(&VerdictRecord {
            ts: sf.flow.ts,
            src: sf.flow.src,
            observed,
            verdict,
            label: Some(sf.label),
            epoch,
        });
        self.flows += 1;
        self.verdicts[verdict.index()] += 1;
        self.matrix[sf.label.code() as usize][verdict.index()] += 1;
    }

    fn finish(self, epochs: u64) -> SpoofReport {
        SpoofReport {
            flows: self.flows,
            ticks: 0,
            epochs,
            verdicts: self.verdicts,
            matrix: self.matrix,
            digest: self.digest.finish(),
        }
    }
}

/// `hist record`: run a trace or the DFZ-scale substrate through the
/// engine, appending every published epoch to a longitudinal store, then
/// compact so the directory is immediately cheap to query.
fn hist_record(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.require("dir")?;
    let cfg = HistConfig {
        keyframe_every: args.get_or("keyframe-every", HistConfig::default().keyframe_every)?,
        ..HistConfig::default()
    };
    let store = HistStore::open_with(dir, cfg, HistTelemetry::default())?;
    let first = store.last_epoch() + 1;
    let mut hook = HistPublisher::new(store);
    let shards: usize = args.get_or("shards", 1)?;

    fn drive<E: TickEngine>(
        mut engine: E,
        flows: impl IntoIterator<Item = FlowRecord>,
        hook: &mut HistPublisher,
    ) {
        run_offline_with(&mut engine, flows, SNAPSHOT_EVERY_TICKS, None, hook, |_| {});
    }

    if args.get("scale").is_some() {
        let (cfg, minutes) = dfz_config(args)?;
        let world = DfzWorld::new(cfg);
        let rate = cfg.flows_per_minute as f64;
        let params = IpdParams {
            q: args.get_or("q", 0.95)?,
            cidr_max_v4: args.get_or("cidr-max", 28)?,
            ncidr_factor_v4: args.get_or("factor", (64.0 / 32.0e6 * rate).max(1e-4))?,
            ncidr_factor_v6: (rate * 1.5e-11).max(1e-9),
            ..IpdParams::default()
        };
        eprintln!(
            "hist record: streaming {minutes} minutes of the {}-prefix substrate into {dir}",
            cfg.plan.v4_prefixes
        );
        let flows = world.flows(minutes).map(|f| f.flow);
        if shards != 1 {
            drive(ShardedEngine::new(params, shards)?, flows, &mut hook);
        } else {
            drive(IpdEngine::new(params)?, flows, &mut hook);
        }
    } else {
        let flows = load_trace(args.require("trace")?)?;
        let (params, rate) = trace_params(args, &flows)?;
        eprintln!(
            "hist record: replaying {} flows (~{rate:.0} flows/min) into {dir}",
            flows.len()
        );
        if shards != 1 {
            drive(ShardedEngine::new(params, shards)?, flows, &mut hook);
        } else {
            drive(IpdEngine::new(params)?, flows, &mut hook);
        }
    }
    if let Some(e) = hook.error() {
        return Err(format!("recording failed: {e}").into());
    }
    let store = hook.store();
    store.compact_now()?;
    store.flush()?;
    println!("recorded epochs {first}..={}", store.last_epoch());
    println!(
        "segments:  {} ({} keyframes)",
        store.segment_count(),
        store.reader().keyframe_count()
    );
    println!("on disk:   {} KiB", store.bytes_on_disk() / 1024);
    Ok(())
}

/// Open a history directory for the read-side subcommands: no background
/// compaction thread, nothing on disk is modified by reads.
fn open_hist_readonly(dir: &str) -> Result<HistStore, Box<dyn std::error::Error>> {
    let cfg = HistConfig {
        background_compaction: false,
        ..HistConfig::default()
    };
    Ok(HistStore::open_with(dir, cfg, HistTelemetry::default())?)
}

fn hist_info(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let store = open_hist_readonly(args.require("dir")?)?;
    let reader = store.reader();
    let range = reader.epochs();
    if range.is_empty() {
        println!("empty history");
        return Ok(());
    }
    let (first, last) = (*range.start(), *range.end());
    let first_img = reader.image_at(first)?.expect("first epoch held");
    let last_img = reader.image_at(last)?.expect("last epoch held");
    println!("epochs:    {first}..={last}");
    println!("time span: {} .. {}", first_img.ts, last_img.ts);
    println!("entries:   {} (at epoch {last})", last_img.rows().len());
    println!(
        "segments:  {} ({} keyframes)",
        store.segment_count(),
        reader.keyframe_count()
    );
    println!("on disk:   {} KiB", store.bytes_on_disk() / 1024);
    Ok(())
}

/// `hist query-at`: reconstruct one epoch (by number or by simulation
/// time) and resolve addresses against it.
fn hist_query_at(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let store = open_hist_readonly(args.require("dir")?)?;
    let reader = store.reader();
    let epoch = if let Some(e) = args.get("epoch") {
        e.parse::<u64>()?
    } else if let Some(t) = args.get("at-ts") {
        let ts: u64 = t.parse()?;
        reader
            .epoch_at_time(ts)
            .ok_or_else(|| format!("no epoch at or before ts {ts}"))?
    } else {
        return Err(Box::new(ArgError(
            "hist query-at needs --epoch N or --at-ts T".into(),
        )));
    };
    let rebuilt = reader
        .store_at(epoch)?
        .ok_or_else(|| format!("epoch {epoch} not held (history: {:?})", reader.epochs()))?;
    println!(
        "epoch {epoch}: data ts {}, {} entries",
        rebuilt.ts(),
        rebuilt.len()
    );
    if let Some(spec) = args.get("addr") {
        for addr in parse_addrs(spec)? {
            match rebuilt.lookup(addr) {
                Some(a) => println!(
                    "  {addr:<18} {:<20} {}   confidence {:.3}",
                    a.prefix, a.ingress, a.confidence
                ),
                None => println!("  {addr:<18} (not classified)"),
            }
        }
    }
    Ok(())
}

/// `hist diff`: what changed between two recorded epochs — appeared (`+`),
/// disappeared (`-`), or moved ingress (`~`).
fn hist_diff(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let store = open_hist_readonly(args.require("dir")?)?;
    let reader = store.reader();
    let from: u64 = args.require("from")?.parse()?;
    let to: u64 = args.require("to")?.parse()?;
    let limit: usize = args.get_or("limit", 50)?;
    let changes = reader
        .diff(from, to)?
        .ok_or_else(|| format!("epoch range not held (history: {:?})", reader.epochs()))?;
    // Bulk output is routinely piped into `head`; stop quietly when the
    // reader hangs up instead of panicking on the broken pipe.
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut emit = |line: String| writeln!(out, "{line}").is_ok();
    if !emit(format!(
        "{} change(s) between epoch {from} and epoch {to}:",
        changes.len()
    )) {
        return Ok(());
    }
    for c in changes.iter().take(limit) {
        let line = match (&c.before, &c.after) {
            (None, Some(a)) => format!("  + {:<20} -> {a}", c.prefix),
            (Some(b), None) => format!("  - {:<20} was {b}", c.prefix),
            (Some(b), Some(a)) => format!("  ~ {:<20} {b} -> {a}", c.prefix),
            (None, None) => unreachable!("the diff seam never emits a no-op change"),
        };
        if !emit(line) {
            return Ok(());
        }
    }
    if changes.len() > limit {
        emit(format!(
            "  … {} more (raise --limit)",
            changes.len() - limit
        ));
    }
    Ok(())
}

fn hist_compact(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let dir = args.require("dir")?;
    let cfg = HistConfig {
        background_compaction: false,
        ..HistConfig::default()
    };
    let store = HistStore::open_with(dir, cfg, HistTelemetry::default())?;
    let folded = store.compact_now()?;
    store.flush()?;
    println!("folded {folded} delta segment(s) into keyframes");
    println!(
        "segments:  {} ({} keyframes), {} KiB on disk",
        store.segment_count(),
        store.reader().keyframe_count(),
        store.bytes_on_disk() / 1024
    );
    Ok(())
}

fn lookup(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let flows = load_trace(args.require("trace")?)?;
    let addrs: Vec<Addr> = args
        .require("addr")?
        .split(',')
        .map(|s| s.trim().parse::<std::net::IpAddr>().map(Addr::from))
        .collect::<Result<_, _>>()?;
    let (_, snapshot) = engine_over(args, &flows, &Telemetry::disabled())?;
    let table = snapshot
        .ok_or("trace produced no snapshots (empty?)")?
        .lpm_table();
    for addr in addrs {
        match table.lookup(addr) {
            Some((range, ingress)) => println!("{addr:<18} {range:<20} {ingress}"),
            None => println!("{addr:<18} (not classified)"),
        }
    }
    Ok(())
}

fn info(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let flows = load_trace(args.require("trace")?)?;
    if flows.is_empty() {
        println!("empty trace");
        return Ok(());
    }
    let (first, last) = (
        flows.first().expect("non-empty"),
        flows.last().expect("non-empty"),
    );
    let routers: std::collections::HashSet<u32> = flows.iter().map(|f| f.router).collect();
    let srcs: std::collections::HashSet<u128> =
        flows.iter().map(|f| f.src.masked(24).bits()).collect();
    println!("records:        {}", flows.len());
    println!(
        "time span:      {} .. {} ({} s)",
        first.ts,
        last.ts,
        last.ts - first.ts
    );
    println!("border routers: {}", routers.len());
    println!("distinct /24s:  {}", srcs.len());
    println!(
        "total volume:   {:.1} M packets, {:.1} GB (sampled)",
        flows.iter().map(|f| f.packets as f64).sum::<f64>() / 1e6,
        flows.iter().map(|f| f.bytes as f64).sum::<f64>() / 1e9
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("ipd-tool-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simulate_then_run_and_lookup() {
        let trace = tmp("smoke.ipdt");
        let bgp = tmp("smoke-rib.txt");
        run_cli(argv(&[
            "simulate",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--seed",
            "7",
            "--out",
            &trace,
            "--bgp-dump",
            &bgp,
        ]))
        .expect("simulate");
        assert!(std::fs::metadata(&trace).expect("trace file").len() > 1000);
        let dump = std::fs::read_to_string(&bgp).expect("bgp dump");
        assert!(dump.starts_with("TABLE_DUMP2|"));

        let table3 = tmp("smoke-table3.txt");
        run_cli(argv(&["run", "--trace", &trace, "--table3", &table3])).expect("run");
        let t3 = std::fs::read_to_string(&table3).expect("table3 output");
        assert!(!t3.is_empty());

        run_cli(argv(&[
            "lookup",
            "--trace",
            &trace,
            "--addr",
            "22.0.0.1,23.0.0.1",
        ]))
        .expect("lookup");
        run_cli(argv(&["info", "--trace", &trace])).expect("info");
    }

    #[test]
    fn sharded_run_matches_unsharded_output() {
        let trace = tmp("sharded.ipdt");
        run_cli(argv(&[
            "simulate",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--seed",
            "11",
            "--out",
            &trace,
        ]))
        .expect("simulate");

        let t3_one = tmp("sharded-k1.txt");
        let t3_four = tmp("sharded-k4.txt");
        run_cli(argv(&["run", "--trace", &trace, "--table3", &t3_one])).expect("run K=1");
        run_cli(argv(&[
            "run", "--trace", &trace, "--shards", "4", "--table3", &t3_four,
        ]))
        .expect("run K=4");
        let one = std::fs::read_to_string(&t3_one).expect("K=1 output");
        let four = std::fs::read_to_string(&t3_four).expect("K=4 output");
        assert!(!one.is_empty());
        assert_eq!(
            one, four,
            "--shards must not change the classification output"
        );

        let bad = run_cli(argv(&["run", "--trace", &trace, "--shards", "3"]));
        assert!(bad.is_err(), "non-power-of-two shard counts are rejected");
    }

    #[test]
    fn crashed_checkpointed_run_restores_to_identical_output() {
        let trace = tmp("ckpt.ipdt");
        run_cli(argv(&[
            "simulate",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--seed",
            "13",
            "--out",
            &trace,
        ]))
        .expect("simulate");

        // Reference: the uninterrupted run.
        let t3_full = tmp("ckpt-full.txt");
        run_cli(argv(&["run", "--trace", &trace, "--table3", &t3_full])).expect("full run");

        // Crashed run: durable, but only the first 60% of the stream is
        // delivered before the "process dies".
        let dir = tmp("ckpt-state");
        let _ = std::fs::remove_dir_all(&dir);
        let n = {
            let reader = TraceReader::new(BufReader::new(File::open(&trace).unwrap())).unwrap();
            reader.count()
        };
        run_cli(argv(&[
            "run",
            "--trace",
            &trace,
            "--limit",
            &(n * 3 / 5).to_string(),
            "--checkpoint-dir",
            &dir,
            "--checkpoint-every",
            "2",
        ]))
        .expect("durable run");

        // The state directory is inspectable.
        run_cli(argv(&["checkpoint", "--dir", &dir])).expect("checkpoint inspect");

        // Restore + finish the stream: output must match the reference
        // byte for byte, plain and at a different shard width.
        let t3_resumed = tmp("ckpt-resumed.txt");
        run_cli(argv(&[
            "restore",
            "--dir",
            &dir,
            "--trace",
            &trace,
            "--table3",
            &t3_resumed,
        ]))
        .expect("restore");
        let full = std::fs::read_to_string(&t3_full).expect("full output");
        let resumed = std::fs::read_to_string(&t3_resumed).expect("resumed output");
        assert!(!full.is_empty());
        assert_eq!(
            full, resumed,
            "restore must reproduce the uninterrupted run"
        );

        let t3_sharded = tmp("ckpt-resumed-k4.txt");
        run_cli(argv(&[
            "restore",
            "--dir",
            &dir,
            "--trace",
            &trace,
            "--shards",
            "4",
            "--table3",
            &t3_sharded,
        ]))
        .expect("restore sharded");
        let sharded = std::fs::read_to_string(&t3_sharded).expect("sharded output");
        assert_eq!(full, sharded, "restore at a different shard width diverged");

        // Restore without a trace still closes out the restored state.
        run_cli(argv(&["restore", "--dir", &dir])).expect("restore without trace");

        // An empty directory has nothing to restore.
        let empty = tmp("ckpt-empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run_cli(argv(&["restore", "--dir", &empty])).is_err());
    }

    #[test]
    fn run_with_metrics_flags_serves_and_dumps() {
        let trace = tmp("metrics.ipdt");
        run_cli(argv(&[
            "simulate",
            "--minutes",
            "4",
            "--flows-per-minute",
            "2000",
            "--seed",
            "21",
            "--out",
            &trace,
        ]))
        .expect("simulate");

        // The real flag path end to end: a run with both metrics options
        // must succeed (server binds an ephemeral port, dump prints).
        run_cli(argv(&[
            "run",
            "--trace",
            &trace,
            "--metrics-addr",
            "127.0.0.1:0",
            "--metrics-dump",
        ]))
        .expect("run with metrics");

        // Component-level snapshot test of what --metrics-addr serves: run
        // the same engine path against a live registry, then GET /metrics
        // and hold the response to the exposition-format contract.
        let flows = load_trace(&trace).expect("trace");
        let args = Args::parse(argv(&["run", "--trace", &trace])).unwrap();
        let telemetry = Telemetry::new();
        let (engine, _) = engine_over(&args, &flows, &telemetry).expect("engine");

        let server = MetricsServer::serve("127.0.0.1:0", telemetry.clone()).expect("bind");
        let response = {
            use std::io::{Read, Write};
            let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
            let request = format!(
                "GET /metrics HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
                server.local_addr()
            );
            stream.write_all(request.as_bytes()).expect("request");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("response");
            response
        };
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        ipd_telemetry::validate_prometheus_text(body).expect("valid exposition format");
        assert!(
            body.contains(&format!(
                "ipd_pipeline_flows_total {}",
                engine.stats().flows_ingested
            )),
            "flow counter must match the engine:\n{body}"
        );
        for metric in [
            "ipd_engine_ticks_total",
            "ipd_engine_classified_ranges",
            "ipd_engine_tick_nanoseconds_count",
        ] {
            assert!(body.contains(metric), "{metric} missing from:\n{body}");
        }

        // The dump table mentions the same metrics.
        let table = telemetry.snapshot().render_table();
        assert!(table.contains("ipd_pipeline_flows_total"), "{table}");
    }

    /// Start `serve` with the given extra arguments on a background thread
    /// and return the (query, metrics) addresses from its port file.
    fn spawn_serve(
        port_file: &str,
        serve_args: &[&str],
    ) -> (std::thread::JoinHandle<Result<(), String>>, String, String) {
        let _ = std::fs::remove_file(port_file);
        let owned = argv(serve_args);
        let handle = std::thread::spawn(move || run_cli(owned).map_err(|e| e.to_string()));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let (addr, metrics) = loop {
            assert!(
                std::time::Instant::now() < deadline,
                "serve never wrote its port file"
            );
            if let Ok(text) = std::fs::read_to_string(port_file) {
                let mut lines = text.lines();
                if let (Some(a), Some(m)) = (lines.next(), lines.next()) {
                    break (a.to_string(), m.to_string());
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        (handle, addr, metrics)
    }

    #[test]
    fn serve_publishes_epochs_and_answers_queries() {
        let trace = tmp("serve.ipdt");
        run_cli(argv(&[
            "simulate",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--seed",
            "7",
            "--out",
            &trace,
        ]))
        .expect("simulate");

        let port_file = tmp("serve-ports");
        let (handle, addr, metrics_addr) = spawn_serve(
            &port_file,
            &[
                "serve",
                "--trace",
                &trace,
                "--port-file",
                &port_file,
                "--linger-secs",
                "5",
                "--metrics-addr",
                "127.0.0.1:0",
            ],
        );

        // The stream is 6 minutes: the terminal epoch is at least 6 (5
        // in-stream crossings + the close publication). Poll up to it.
        let mut client = ipd_serve::ServeClient::connect(&addr).expect("connect");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let info = loop {
            let info = client.info().expect("info");
            if info.epoch >= 6 {
                break info;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "epoch stuck at {}",
                info.epoch
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        assert!(info.entries > 0, "stream must classify something");

        // Batched lookup over the wire: all answers share one epoch, and
        // the simulator's client space resolves to real ingresses.
        let addrs: Vec<Addr> = (0..64u32)
            .map(|i| Addr::v4(0x1600_0000 + i * 0x10_0000))
            .collect();
        let (epoch, answers) = client.batch(&addrs).expect("batch");
        assert!(epoch >= 6);
        assert_eq!(answers.len(), addrs.len());
        assert!(
            answers.iter().any(|a| a.is_mapped()),
            "no probe hit a classified range"
        );

        // The query subcommand against the same server.
        run_cli(argv(&["query", "--server", &addr, "--info"])).expect("query --info");
        run_cli(argv(&[
            "query",
            "--server",
            &addr,
            "--addr",
            "22.0.0.1,23.0.0.1",
        ]))
        .expect("query");

        // The epoch gauge is scrapable and has advanced with publication.
        let body = {
            use std::io::{Read, Write};
            let mut s = std::net::TcpStream::connect(&metrics_addr).expect("metrics connect");
            s.write_all(
                format!(
                    "GET /metrics HTTP/1.1\r\nHost: {metrics_addr}\r\nConnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .expect("metrics request");
            let mut response = String::new();
            s.read_to_string(&mut response).expect("metrics response");
            response.split("\r\n\r\n").nth(1).expect("body").to_string()
        };
        let gauge = body
            .lines()
            .find_map(|l| l.strip_prefix("ipd_serve_epoch "))
            .expect("epoch gauge exported")
            .trim()
            .parse::<f64>()
            .expect("numeric gauge");
        assert!(gauge >= 6.0, "epoch gauge must advance, got {gauge}");
        assert!(body.contains("ipd_serve_lookups_total"));
        assert!(
            body.contains("ipd_serve_epoch_age_seconds"),
            "freshness gauge missing from:\n{body}"
        );

        // The flight recorder is dumpable over the wire, both through the
        // client API and the query subcommand.
        let events = client.dump().expect("dump");
        assert!(!events.is_empty(), "publication must leave flight events");
        assert!(events
            .iter()
            .any(|e| e.kind == ipd_telemetry::EventKind::EpochPublished as u8));
        run_cli(argv(&["query", "--server", &addr, "--dump"])).expect("query --dump");

        // /statusz carries the serve section plus watermarks and the
        // flight tail; `top --once` renders one frame of it.
        let doc = fetch_statusz(&metrics_addr).expect("statusz");
        let serve = doc.get("serve").expect("serve section");
        assert!(serve.get("epoch").unwrap().as_f64().unwrap() >= 6.0);
        assert!(doc
            .get("watermarks")
            .unwrap()
            .get("ipd_serve_publish_watermark")
            .is_some());
        assert!(doc.get("flight").unwrap().get("recorded").unwrap().as_f64() > Some(0.0));
        run_cli(argv(&["top", "--metrics-addr", &metrics_addr, "--once"])).expect("top --once");

        handle.join().unwrap().expect("serve exits cleanly");
    }

    #[test]
    fn serve_from_checkpoint_needs_no_replay() {
        let trace = tmp("serve-ckpt.ipdt");
        run_cli(argv(&[
            "simulate",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--seed",
            "17",
            "--out",
            &trace,
        ]))
        .expect("simulate");
        let dir = tmp("serve-ckpt-state");
        let _ = std::fs::remove_dir_all(&dir);
        run_cli(argv(&[
            "run",
            "--trace",
            &trace,
            "--checkpoint-dir",
            &dir,
            "--checkpoint-every",
            "2",
        ]))
        .expect("durable run");

        let port_file = tmp("serve-ckpt-ports");
        let (handle, addr, _metrics) = spawn_serve(
            &port_file,
            &[
                "serve",
                "--from-checkpoint",
                &dir,
                "--port-file",
                &port_file,
                "--linger-secs",
                "5",
            ],
        );
        let mut client = ipd_serve::ServeClient::connect(&addr).expect("connect");
        let info = client.info().expect("info");
        assert_eq!(info.epoch, 1, "checkpoint mode publishes exactly once");
        assert!(
            info.entries > 0,
            "checkpointed state must hold classifications"
        );
        let (_, answer) = client.lookup(Addr::v4(0x1600_0001)).expect("lookup");
        let _ = answer.is_mapped(); // any verdict is fine; the wire worked
        handle.join().unwrap().expect("serve exits cleanly");

        // An empty directory is a startup error, not a silent empty store.
        let empty = tmp("serve-ckpt-empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run_cli(argv(&["serve", "--from-checkpoint", &empty])).is_err());
    }

    #[test]
    fn hist_record_then_time_travel_queries() {
        let trace = tmp("hist.ipdt");
        run_cli(argv(&[
            "simulate",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--seed",
            "29",
            "--out",
            &trace,
        ]))
        .expect("simulate");

        let dir = tmp("hist-store");
        let _ = std::fs::remove_dir_all(&dir);
        run_cli(argv(&[
            "hist",
            "record",
            "--dir",
            &dir,
            "--trace",
            &trace,
            "--keyframe-every",
            "4",
        ]))
        .expect("hist record");

        // The 6-minute stream publishes 6 epochs; every read-side
        // subcommand works against the recorded directory.
        let store = ipd_hist::HistStore::open(&dir).expect("reopen");
        assert!(store.last_epoch() >= 6, "6 minutes -> at least 6 epochs");
        assert!(store.reader().keyframe_count() >= 1);
        // A simulation timestamp mid-history, for the --at-ts form (trace
        // stamps are absolute epoch seconds).
        let mid_ts = store
            .reader()
            .image_at(3)
            .unwrap()
            .expect("epoch 3 held")
            .ts
            .to_string();
        drop(store);
        run_cli(argv(&["hist", "info", "--dir", &dir])).expect("hist info");
        run_cli(argv(&[
            "hist",
            "query-at",
            "--dir",
            &dir,
            "--epoch",
            "3",
            "--addr",
            "22.0.0.1,23.0.0.1",
        ]))
        .expect("hist query-at --epoch");
        run_cli(argv(&[
            "hist", "query-at", "--dir", &dir, "--at-ts", &mid_ts, "--addr", "22.0.0.1",
        ]))
        .expect("hist query-at --at-ts");
        run_cli(argv(&[
            "hist", "diff", "--dir", &dir, "--from", "1", "--to", "6",
        ]))
        .expect("hist diff");
        run_cli(argv(&["hist", "compact", "--dir", &dir])).expect("hist compact");
        run_cli(argv(&["hist", "query-at", "--dir", &dir, "--epoch", "6"]))
            .expect("query-at after compact");

        // Usage errors stay errors.
        assert!(run_cli(argv(&["hist"])).is_err(), "missing action");
        assert!(run_cli(argv(&["hist", "frobnicate", "--dir", &dir])).is_err());
        assert!(
            run_cli(argv(&["hist", "query-at", "--dir", &dir])).is_err(),
            "needs --epoch or --at-ts"
        );
        assert!(
            run_cli(argv(&["hist", "query-at", "--dir", &dir, "--epoch", "99"])).is_err(),
            "epoch outside the held range"
        );
    }

    #[test]
    fn serve_with_hist_dir_answers_time_travel_over_the_wire() {
        let trace = tmp("serve-hist.ipdt");
        run_cli(argv(&[
            "simulate",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--seed",
            "31",
            "--out",
            &trace,
        ]))
        .expect("simulate");

        let dir = tmp("serve-hist-store");
        let _ = std::fs::remove_dir_all(&dir);
        let port_file = tmp("serve-hist-ports");
        let (handle, addr, _metrics) = spawn_serve(
            &port_file,
            &[
                "serve",
                "--trace",
                &trace,
                "--hist-dir",
                &dir,
                "--port-file",
                &port_file,
                "--linger-secs",
                "5",
            ],
        );

        // --wait-epoch parks on the wire until publication catches up — no
        // polling loop needed before the historical queries.
        run_cli(argv(&["query", "--server", &addr, "--wait-epoch", "6"]))
            .expect("query --wait-epoch");
        run_cli(argv(&[
            "query",
            "--server",
            &addr,
            "--at-epoch",
            "2",
            "--addr",
            "22.0.0.1,23.0.0.1",
        ]))
        .expect("query --at-epoch");
        run_cli(argv(&["query", "--server", &addr, "--diff", "1,6"])).expect("query --diff");
        assert!(
            run_cli(argv(&[
                "query",
                "--server",
                &addr,
                "--at-epoch",
                "99",
                "--addr",
                "22.0.0.1"
            ]))
            .is_err(),
            "unheld epoch is an error"
        );
        handle.join().unwrap().expect("serve exits cleanly");

        // The recorded directory outlives the server: the live run's epochs
        // are all reconstructable offline.
        let store = ipd_hist::HistStore::open(&dir).expect("reopen");
        assert!(store.last_epoch() >= 6);
        let reader = store.reader();
        for e in 1..=store.last_epoch() {
            assert!(reader.image_at(e).unwrap().is_some(), "epoch {e} lost");
        }
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run_cli(argv(&["frobnicate"])).is_err());
        assert!(run_cli(argv(&["run"])).is_err(), "missing --trace");
        assert!(run_cli(argv(&["run", "--trace", "/does/not/exist.ipdt"])).is_err());
    }

    #[test]
    fn run_scale_dfz_streams_and_is_deterministic() {
        let t3a = tmp("scale-a.txt");
        let t3b = tmp("scale-b.txt");
        for out in [&t3a, &t3b] {
            run_cli(argv(&[
                "run",
                "--scale",
                "10k",
                "--minutes",
                "8",
                "--flows-per-minute",
                "6000",
                "--seed",
                "9",
                "--table3",
                out,
            ]))
            .expect("run --scale");
        }
        let a = std::fs::read(&t3a).expect("table3 a");
        assert_eq!(
            a,
            std::fs::read(&t3b).expect("table3 b"),
            "same seed, same output"
        );
    }

    #[test]
    fn run_scale_dfz_knobs_and_errors() {
        // Unknown tier is a usage error.
        assert!(run_cli(argv(&["run", "--scale", "mega"])).is_err());
        // Knobs parse and apply (tiny overrides keep this fast); a run with
        // heavy churn still completes.
        run_cli(argv(&[
            "run",
            "--scale",
            "10k",
            "--prefixes",
            "5000",
            "--v6-prefixes",
            "500",
            "--routers",
            "40",
            "--links",
            "120",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--flap-fraction",
            "0.5",
            "--flap-secs",
            "120",
            "--updown-fraction",
            "0.3",
            "--up-secs",
            "300",
            "--down-secs",
            "60",
        ]))
        .expect("run --scale with knobs");
    }

    #[test]
    fn spoof_judges_offline_checkpoint_and_live_maps() {
        let dir = tmp("spoof-ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        run_cli(argv(&[
            "run",
            "--scale",
            "10k",
            "--minutes",
            "6",
            "--flows-per-minute",
            "3000",
            "--seed",
            "11",
            "--checkpoint-dir",
            &dir,
        ]))
        .expect("run --scale builds the checkpointed map");

        // Offline deployment loop, sharded, exits cleanly.
        run_cli(argv(&[
            "spoof",
            "--scale",
            "10k",
            "--minutes",
            "3",
            "--flows-per-minute",
            "3000",
            "--seed",
            "11",
            "--shards",
            "2",
        ]))
        .expect("spoof offline");

        // Checkpoint mode: the frozen map still meets the detection floors
        // (legit traffic matches it; forged sources fail the route oracle).
        let scenario = SpoofScenario::mixed(DfzConfig {
            flows_per_minute: 3000,
            ..DfzConfig::smoke_10k(11)
        });
        let r = spoof_against_checkpoint(&dir, &scenario, 4, 300).expect("checkpoint judge");
        assert!(r.flows > 10_000, "{} flows", r.flows);
        assert!(r.epochs > 0);
        assert!(r.precision() >= 0.95, "precision {}", r.precision());
        assert!(r.recall() >= 0.90, "recall {}", r.recall());
        assert!(
            r.shift_non_spoofed() >= 0.90,
            "shift leakage {}",
            r.shift_non_spoofed()
        );

        // Live mode: the same checkpoint served over the wire, judged
        // through the client pool.
        let port_file = tmp("spoof-serve-ports");
        let (handle, addr, _metrics) = spawn_serve(
            &port_file,
            &[
                "serve",
                "--from-checkpoint",
                &dir,
                "--port-file",
                &port_file,
                "--linger-secs",
                "20",
            ],
        );
        run_cli(argv(&[
            "spoof",
            "--scale",
            "10k",
            "--minutes",
            "2",
            "--flows-per-minute",
            "3000",
            "--seed",
            "11",
            "--server",
            &addr,
            "--pool",
            "3",
        ]))
        .expect("spoof live");
        handle.join().unwrap().expect("serve exits cleanly");
    }
}
