//! A small, dependency-free argument parser: `--key value` pairs and flags
//! after a subcommand.

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: subcommand + options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Parse errors with a message suitable for direct printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, ArgError> {
        let mut iter = args.into_iter().peekable();
        let command = match iter.next() {
            Some(c) if !c.starts_with('-') => c,
            Some(c) => return Err(ArgError(format!("expected a subcommand, got {c:?}"))),
            None => return Err(ArgError("missing subcommand".into())),
        };
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(ArgError(format!("unexpected positional argument {arg:?}")));
            };
            // A flag if the next token is absent or another option.
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    if options.insert(key.to_string(), value).is_some() {
                        return Err(ArgError(format!("--{key} given twice")));
                    }
                }
                _ => flags.push(key.to_string()),
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required --{key}")))
    }

    /// Typed option with default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, ArgError> {
        Args::parse(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn subcommand_options_flags() {
        let a = parse(&["run", "--trace", "t.ipdt", "--q", "0.9", "--verbose"]).unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.get("trace"), Some("t.ipdt"));
        assert_eq!(a.get_or::<f64>("q", 0.95).unwrap(), 0.9);
        assert_eq!(a.get_or::<u64>("minutes", 25).unwrap(), 25);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--oops"]).is_err());
        assert!(parse(&["run", "stray"]).is_err());
        assert!(parse(&["run", "--a", "1", "--a", "2"]).is_err());
        let a = parse(&["run", "--q", "zap"]).unwrap();
        assert!(a.get_or::<f64>("q", 1.0).is_err());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["simulate", "--seed", "7", "--quiet"]).unwrap();
        assert_eq!(a.get_or::<u64>("seed", 0).unwrap(), 7);
        assert!(a.flag("quiet"));
    }
}
