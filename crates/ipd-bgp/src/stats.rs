//! RIB statistics used by the paper's figures.
//!
//! * Fig 3 (dotted lines): distribution of the number of next-hop routers per
//!   prefix — "only 20% of the prefixes have only one next-hop router, while
//!   60% have more than five possible routes".
//! * Fig 9 (gray bars): distribution of BGP prefix lengths — "announcements
//!   of /24 prefixes in BGP constitute over 50% of the total".

use std::collections::BTreeMap;

use ipd_lpm::{Af, Prefix};

use crate::rib::Rib;

/// Histogram of next-hop router counts: `counts[k]` = number of prefixes with
/// exactly `k` distinct next-hop routers. Optionally restricted to prefixes
/// originated by the given ASes.
pub fn next_hop_count_histogram(
    rib: &Rib,
    origin_filter: Option<&[u32]>,
) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for (_, entry) in rib.iter() {
        if let Some(filter) = origin_filter {
            let origin = entry.best().and_then(|r| r.origin_as());
            if !origin.is_some_and(|o| filter.contains(&o)) {
                continue;
            }
        }
        *hist.entry(entry.next_hop_router_count()).or_insert(0) += 1;
    }
    hist
}

/// Empirical CDF over a count histogram: returns `(k, P(X <= k))` pairs.
pub fn histogram_cdf(hist: &BTreeMap<usize, usize>) -> Vec<(usize, f64)> {
    let total: usize = hist.values().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0usize;
    hist.iter()
        .map(|(&k, &n)| {
            acc += n;
            (k, acc as f64 / total as f64)
        })
        .collect()
}

/// Distribution of prefix lengths for one family: `dist[len]` = share of
/// prefixes with that mask (sums to 1.0 unless the RIB is empty).
pub fn mask_distribution(rib: &Rib, af: Af) -> BTreeMap<u8, f64> {
    let mut counts: BTreeMap<u8, usize> = BTreeMap::new();
    let mut total = 0usize;
    for (prefix, _) in rib.iter() {
        if prefix.af() == af {
            *counts.entry(prefix.len()).or_insert(0) += 1;
            total += 1;
        }
    }
    counts
        .into_iter()
        .map(|(len, n)| (len, n as f64 / total.max(1) as f64))
        .collect()
}

/// Share of prefixes (of family `af`) whose best route originates from each
/// AS — used to pick the "TOP5/TOP20 by traffic" AS sets in the evaluation.
pub fn origin_share(rib: &Rib, af: Af) -> BTreeMap<u32, f64> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    let mut total = 0usize;
    for (prefix, entry) in rib.iter() {
        if prefix.af() != af {
            continue;
        }
        if let Some(origin) = entry.best().and_then(|r| r.origin_as()) {
            *counts.entry(origin).or_insert(0) += 1;
            total += 1;
        }
    }
    counts
        .into_iter()
        .map(|(asn, n)| (asn, n as f64 / total.max(1) as f64))
        .collect()
}

/// Weighted address-space coverage per mask length (each prefix weighted by
/// its address count) — the "mapped address space" series of Fig 11/12 needs
/// the same computation on IPD output, so it lives here for reuse on any
/// prefix iterator.
pub fn address_space_by_mask<'a, I>(prefixes: I) -> BTreeMap<u8, f64>
where
    I: IntoIterator<Item = &'a Prefix>,
{
    let mut out: BTreeMap<u8, f64> = BTreeMap::new();
    for p in prefixes {
        *out.entry(p.len()).or_insert(0.0) += p.num_addrs();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use ipd_topology::IngressPoint;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn route(router: u32, origin: u32) -> Route {
        Route {
            next_hop: IngressPoint::new(router, 1),
            link: 0,
            as_path: vec![origin],
            local_pref: 100,
        }
    }

    fn sample_rib() -> Rib {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/24"), route(1, 64500));
        rib.announce(p("10.0.1.0/24"), route(1, 64500));
        rib.announce(p("10.0.1.0/24"), route(2, 64500));
        rib.announce(p("10.0.2.0/23"), route(1, 64501));
        rib.announce(p("10.0.2.0/23"), route(2, 64501));
        rib.announce(p("10.0.2.0/23"), route(3, 64501));
        rib
    }

    #[test]
    fn next_hop_histogram() {
        let rib = sample_rib();
        let h = next_hop_count_histogram(&rib, None);
        assert_eq!(h.get(&1), Some(&1));
        assert_eq!(h.get(&2), Some(&1));
        assert_eq!(h.get(&3), Some(&1));
        let filtered = next_hop_count_histogram(&rib, Some(&[64500]));
        assert_eq!(filtered.values().sum::<usize>(), 2);
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let rib = sample_rib();
        let cdf = histogram_cdf(&next_hop_count_histogram(&rib, None));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!(histogram_cdf(&BTreeMap::new()).is_empty());
    }

    #[test]
    fn mask_distribution_sums_to_one() {
        let rib = sample_rib();
        let d = mask_distribution(&rib, Af::V4);
        assert!((d.values().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((d[&24] - 2.0 / 3.0).abs() < 1e-9);
        assert!((d[&23] - 1.0 / 3.0).abs() < 1e-9);
        assert!(mask_distribution(&rib, Af::V6).is_empty());
    }

    #[test]
    fn origin_share_by_prefix_count() {
        let rib = sample_rib();
        let s = origin_share(&rib, Af::V4);
        assert!((s[&64500] - 2.0 / 3.0).abs() < 1e-9);
        assert!((s[&64501] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn address_space_weighting() {
        let prefixes = [p("10.0.0.0/24"), p("10.1.0.0/24"), p("10.2.0.0/23")];
        let w = address_space_by_mask(prefixes.iter());
        assert_eq!(w[&24], 512.0);
        assert_eq!(w[&23], 512.0);
    }
}
