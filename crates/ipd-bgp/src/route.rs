//! Routes and per-prefix RIB entries.

use ipd_topology::{IngressPoint, LinkId};
use serde::{Deserialize, Serialize};

/// One BGP route for a prefix, as learned over one external link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// The border router and interface the route was learned on — i.e. where
    /// traffic *would egress* if this route is best, and a *candidate*
    /// ingress point for return traffic.
    pub next_hop: IngressPoint,
    /// The external link carrying the session.
    pub link: LinkId,
    /// AS path; the last element is the origin AS.
    pub as_path: Vec<u32>,
    /// Local preference (higher wins).
    pub local_pref: u32,
}

impl Route {
    /// The origin AS (last AS-path element), or `None` for an empty path.
    pub fn origin_as(&self) -> Option<u32> {
        self.as_path.last().copied()
    }

    /// The neighbor AS (first AS-path element), or `None` for an empty path.
    pub fn neighbor_as(&self) -> Option<u32> {
        self.as_path.first().copied()
    }
}

/// All routes for one prefix, kept sorted best-first.
///
/// Best-path order (a standard subset of the BGP decision process):
/// 1. highest `local_pref`
/// 2. shortest AS path
/// 3. lowest (router, ifindex) — the "lowest router id" tiebreak stands in
///    for lowest peer address.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RibEntry {
    routes: Vec<Route>,
}

impl RibEntry {
    /// Entry with a single route.
    pub fn single(route: Route) -> Self {
        RibEntry {
            routes: vec![route],
        }
    }

    /// The best route, if any.
    pub fn best(&self) -> Option<&Route> {
        self.routes.first()
    }

    /// All routes, best first.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Number of routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes remain.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Number of *distinct next-hop routers* — the paper's Fig 3 metric for
    /// "possible ingress points" of a prefix.
    pub fn next_hop_router_count(&self) -> usize {
        let mut routers: Vec<_> = self.routes.iter().map(|r| r.next_hop.router).collect();
        routers.sort_unstable();
        routers.dedup();
        routers.len()
    }

    /// Insert or replace (same `next_hop` replaces), keeping best-first order.
    pub fn upsert(&mut self, route: Route) {
        self.routes.retain(|r| r.next_hop != route.next_hop);
        self.routes.push(route);
        self.routes.sort_by(|a, b| {
            b.local_pref
                .cmp(&a.local_pref)
                .then(a.as_path.len().cmp(&b.as_path.len()))
                .then(a.next_hop.cmp(&b.next_hop))
        });
    }

    /// Remove the route via `next_hop`; returns whether one was removed.
    pub fn withdraw(&mut self, next_hop: IngressPoint) -> bool {
        let before = self.routes.len();
        self.routes.retain(|r| r.next_hop != next_hop);
        self.routes.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(router: u32, ifx: u16, path: &[u32], pref: u32) -> Route {
        Route {
            next_hop: IngressPoint::new(router, ifx),
            link: 0,
            as_path: path.to_vec(),
            local_pref: pref,
        }
    }

    #[test]
    fn origin_and_neighbor() {
        let r = route(1, 1, &[100, 200, 300], 100);
        assert_eq!(r.neighbor_as(), Some(100));
        assert_eq!(r.origin_as(), Some(300));
        assert_eq!(route(1, 1, &[], 100).origin_as(), None);
    }

    #[test]
    fn best_path_prefers_local_pref() {
        let mut e = RibEntry::default();
        e.upsert(route(1, 1, &[100], 100));
        e.upsert(route(2, 1, &[100, 200], 200));
        assert_eq!(e.best().unwrap().next_hop.router, 2);
    }

    #[test]
    fn best_path_prefers_shorter_as_path_at_equal_pref() {
        let mut e = RibEntry::default();
        e.upsert(route(1, 1, &[100, 200, 300], 100));
        e.upsert(route(2, 1, &[100, 300], 100));
        assert_eq!(e.best().unwrap().next_hop.router, 2);
    }

    #[test]
    fn best_path_tiebreak_lowest_router() {
        let mut e = RibEntry::default();
        e.upsert(route(9, 1, &[100], 100));
        e.upsert(route(3, 1, &[100], 100));
        e.upsert(route(3, 2, &[100], 100));
        assert_eq!(e.best().unwrap().next_hop, IngressPoint::new(3, 1));
    }

    #[test]
    fn upsert_replaces_same_next_hop() {
        let mut e = RibEntry::default();
        e.upsert(route(1, 1, &[100, 200], 100));
        e.upsert(route(1, 1, &[100], 100));
        assert_eq!(e.len(), 1);
        assert_eq!(e.best().unwrap().as_path, vec![100]);
    }

    #[test]
    fn withdraw_removes() {
        let mut e = RibEntry::default();
        e.upsert(route(1, 1, &[100], 100));
        e.upsert(route(2, 1, &[100], 100));
        assert!(e.withdraw(IngressPoint::new(1, 1)));
        assert!(!e.withdraw(IngressPoint::new(1, 1)));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn next_hop_router_count_dedups_interfaces() {
        let mut e = RibEntry::default();
        e.upsert(route(1, 1, &[100], 100));
        e.upsert(route(1, 2, &[100, 200], 100));
        e.upsert(route(2, 1, &[100, 200, 300], 100));
        assert_eq!(e.len(), 3);
        assert_eq!(e.next_hop_router_count(), 2);
    }
}
