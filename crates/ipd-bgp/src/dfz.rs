//! DFZ-scale routing substrate: a functional prefix plan with route churn.
//!
//! The paper validates IPD against a default-free-zone table — ~1M IPv4 and
//! ~200k IPv6 prefixes (§5.7). Materializing a world that size the way
//! `ipd-traffic::World` does (per-prefix structs, region maps, an explicit
//! RIB) costs gigabytes. This module takes the opposite approach: the entire
//! routing table is a *pure function* of a seed, and the only materialized
//! state is a handful of small tables whose sizes are bounded by the
//! parameter counts (length classes, AS boundaries, per-AS link slices,
//! churner index lists) — never by the prefix count times anything.
//!
//! Three layers:
//!
//! * [`PrefixPlan`] — maps a dense *rank* (0-based popularity rank; rank 0 is
//!   the most popular prefix) to a concrete CIDR prefix and origin AS, O(1)
//!   per query. Prefixes are carved from per-length *classes* laid out as
//!   disjoint stride regions, so distinctness holds by construction; a
//!   Feistel permutation decorrelates popularity from prefix length and
//!   address. AS sizes are Zipf, so a few ASes originate most of the table.
//! * [`ChurnModel`] — per-prefix appearance/disappearance (square-wave
//!   visibility with hash-derived phase and durations) and next-hop flap
//!   (renewal process with hash-derived period and bounded jitter), following
//!   the topology-dynamics modeling of Mehner et al. (PAPERS.md). Both are
//!   closed-form: `visible(rank, t)` and `flap_count(rank, t)` are O(1), so
//!   flow generation never replays history.
//! * [`ChurnStream`] — the event view of the same processes: a time-ordered
//!   iterator of [`ChurnEvent`]s over a window, allocation-bounded by the
//!   churner fraction, and guaranteed consistent with the closed-form state
//!   queries (same hash inputs).
//!
//! Everything here is deterministic per seed and cheap enough to query a
//! billion times; `ipd-traffic::dfz` composes these pieces with a
//! [`ScaleTopology`] into a flow stream.

use ipd_lpm::{Addr, Af, Prefix};
use ipd_topology::scale::{mix, mix3, unit_f64};
use ipd_topology::{LinkId, ScaleTopology};

// Hash stream namespaces. Each independent random decision gets its own
// constant so adding decisions never perturbs existing ones.
const S_PERM_V4: u64 = 0x5045_524D_0034;
const S_PERM_V6: u64 = 0x5045_524D_0036;
const S_FLAP_SEL: u64 = 0x464C_4150_5345;
const S_FLAP_PERIOD: u64 = 0x464C_4150_5045;
const S_FLAP_JITTER: u64 = 0x464C_4150_4A49;
const S_UPDOWN_SEL: u64 = 0x5550_444E_5345;
const S_UPDOWN_SHAPE: u64 = 0x5550_444E_5348;
const S_AS_LINKS: u64 = 0x4153_4C49_4E4B;
const S_HOME_LINK: u64 = 0x484F_4D45_4C4E;

/// Origin ASNs are `AS_BASE + as_rank` (as_rank 0 = biggest AS).
pub const AS_BASE: u32 = 1000;

fn famtag(af: Af) -> u64 {
    match af {
        Af::V4 => 0,
        Af::V6 => 1 << 40,
    }
}

/// Hash for a per-(family, rank) decision.
#[inline]
fn hrank(seed: u64, stream: u64, af: Af, rank: u64) -> u64 {
    mix3(seed, stream, famtag(af) | rank)
}

// ---------------------------------------------------------------------------
// Feistel permutation
// ---------------------------------------------------------------------------

/// A seeded bijection on `[0, n)`: a 4-round unbalanced Feistel network over
/// the next power of two, cycle-walked back into the domain. Used to map
/// popularity ranks to plan slots so popularity is uncorrelated with prefix
/// length and address.
#[derive(Debug, Clone, Copy)]
struct Perm {
    n: u64,
    bits: u32,
    key: u64,
}

impl Perm {
    fn new(n: u64, key: u64) -> Self {
        assert!(n >= 1);
        let bits = 64 - (n - 1).max(1).leading_zeros();
        Perm {
            n,
            bits: bits.max(2),
            key,
        }
    }

    fn round(&self, x: u64) -> u64 {
        let lb = self.bits / 2;
        let rb = self.bits - lb;
        let (mut a, mut b) = (x >> rb, x & ((1u64 << rb) - 1));
        let (mut wa, mut wb) = (lb, rb);
        for r in 0..4u64 {
            let f = mix3(self.key, r, b) & ((1u64 << wa) - 1);
            let t = a ^ f;
            a = b;
            b = t;
            std::mem::swap(&mut wa, &mut wb);
        }
        debug_assert!(wb == rb);
        (a << rb) | b
    }

    /// Apply the bijection.
    fn apply(&self, x: u64) -> u64 {
        debug_assert!(x < self.n);
        let mut y = self.round(x);
        // Cycle-walking: the Feistel is a bijection on [0, 2^bits); walking
        // out-of-domain points through it again yields a bijection on [0, n).
        while y >= self.n {
            y = self.round(y);
        }
        y
    }
}

// ---------------------------------------------------------------------------
// Prefix plan
// ---------------------------------------------------------------------------

/// One per-length stride region: `count` prefixes of length `len` starting at
/// `base`, slot `s` in the class mapping to `base + (s - start) * stride`.
#[derive(Debug, Clone, Copy)]
struct LenClass {
    len: u8,
    /// First slot (within the family's slot space) carved from this class.
    start: u64,
    count: u64,
    base: u128,
}

/// Parameters for a [`PrefixPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfzPlanParams {
    /// IPv4 prefix count.
    pub v4_prefixes: u64,
    /// IPv6 prefix count.
    pub v6_prefixes: u64,
    /// Number of origin ASes.
    pub ases: u32,
    /// Seed for the rank→slot permutations.
    pub seed: u64,
}

impl DfzPlanParams {
    /// The paper's DFZ shape: ~1M IPv4 + ~200k IPv6 prefixes (§5.7).
    pub fn dfz(seed: u64) -> Self {
        DfzPlanParams {
            v4_prefixes: 1_048_576,
            v6_prefixes: 204_800,
            ases: 2048,
            seed,
        }
    }

    /// A proportionally smaller table for test tiers.
    pub fn tier(seed: u64, v4_prefixes: u64) -> Self {
        DfzPlanParams {
            v4_prefixes,
            v6_prefixes: v4_prefixes / 5,
            ases: ((v4_prefixes / 512).clamp(16, 2048)) as u32,
            seed,
        }
    }
}

/// IPv4 length-class weights in 1/10000ths, /24-heavy per the paper's Fig 9
/// shape but with the fine tail boosted so one million prefixes fit
/// disjointly under 2^32 addresses. Coarsest first; the integer-division
/// remainder goes to /24.
const V4_CLASSES: &[(u8, u64)] = &[
    (12, 4),
    (14, 16),
    (16, 80),
    (17, 120),
    (18, 200),
    (19, 300),
    (20, 500),
    (21, 550),
    (22, 1000),
    (23, 1100),
    (24, 6130), // receives the remainder
];

/// IPv6 length-class weights in 1/10000ths. Laid out from `2400::`.
const V6_CLASSES: &[(u8, u64)] = &[
    (32, 2500),
    (36, 1000),
    (40, 1500),
    (44, 1500),
    (48, 3500), // receives the remainder
];

/// IPv4 regions start at 1.0.0.0 (0/8 is unusable anyway).
const V4_BASE: u128 = 0x0100_0000;
/// IPv6 regions start at 2400::.
const V6_BASE: u128 = 0x2400 << 112;
/// IPv6 layout must stay under 3000:: (sanity bound, far from user space).
const V6_LIMIT: u128 = 0x3000 << 112;

fn carve(classes: &[(u8, u64)], n: u64, af: Af, base0: u128, limit: u128) -> Vec<LenClass> {
    let total_w: u64 = classes.iter().map(|&(_, w)| w).sum();
    debug_assert_eq!(total_w, 10_000);
    let mut counts: Vec<u64> = classes.iter().map(|&(_, w)| n * w / 10_000).collect();
    let assigned: u64 = counts.iter().sum();
    // Remainder to the last (finest) class.
    *counts.last_mut().expect("non-empty class table") += n - assigned;
    let mut out = Vec::with_capacity(classes.len());
    let (mut start, mut base) = (0u64, base0);
    for (&(len, _), &count) in classes.iter().zip(&counts) {
        if count == 0 {
            continue;
        }
        let stride = 1u128 << (af.width() - len);
        out.push(LenClass {
            len,
            start,
            count,
            base,
        });
        start += count;
        base += stride * count as u128;
        assert!(
            base <= limit,
            "prefix plan overflows address space: {n} {af:?} prefixes need \
             {base:#x} > {limit:#x}; reduce the prefix count"
        );
    }
    out
}

/// The DFZ prefix table as a pure function of rank.
///
/// Resident memory is `O(classes + ases)` — a dozen length classes and one
/// cumulative boundary per AS — regardless of prefix count.
#[derive(Debug, Clone)]
pub struct PrefixPlan {
    params: DfzPlanParams,
    classes_v4: Vec<LenClass>,
    classes_v6: Vec<LenClass>,
    /// Cumulative Zipf(1.1) AS sizes over the IPv4 rank space:
    /// `as_cum[a]` = first rank NOT owned by AS rank `a`.
    as_cum: Vec<u64>,
    perm_v4: Perm,
    perm_v6: Perm,
}

/// Zipf exponent for AS table-share (how many prefixes an AS originates).
const AS_SIZE_ALPHA: f64 = 1.1;

impl PrefixPlan {
    /// Build the plan. `O(ases)` work and memory.
    pub fn new(params: DfzPlanParams) -> Self {
        assert!(params.v4_prefixes >= 1, "need at least one IPv4 prefix");
        assert!(params.ases >= 1, "need at least one AS");
        let classes_v4 = carve(V4_CLASSES, params.v4_prefixes, Af::V4, V4_BASE, 1 << 32);
        let classes_v6 = if params.v6_prefixes > 0 {
            carve(V6_CLASSES, params.v6_prefixes, Af::V6, V6_BASE, V6_LIMIT)
        } else {
            Vec::new()
        };
        // Zipf AS sizes: AS rank a owns ranks [as_cum[a-1], as_cum[a]).
        let a = params.ases as usize;
        let mut h = 0.0f64;
        let mut weights = Vec::with_capacity(a);
        for i in 1..=a {
            let w = (i as f64).powf(-AS_SIZE_ALPHA);
            h += w;
            weights.push(h);
        }
        let n = params.v4_prefixes;
        let mut as_cum: Vec<u64> = weights
            .iter()
            .map(|&c| ((c / h) * n as f64).round() as u64)
            .collect();
        // Monotone, total, and every AS non-empty where space allows.
        let mut prev = 0u64;
        for (i, c) in as_cum.iter_mut().enumerate() {
            let floor = (prev + 1).min(n - (a - 1 - i) as u64);
            *c = (*c).clamp(floor, n);
            prev = *c;
        }
        *as_cum.last_mut().expect("ases >= 1") = n;
        PrefixPlan {
            classes_v4,
            classes_v6,
            as_cum,
            perm_v4: Perm::new(params.v4_prefixes, mix(params.seed, S_PERM_V4)),
            perm_v6: Perm::new(params.v6_prefixes.max(1), mix(params.seed, S_PERM_V6)),
            params,
        }
    }

    /// The parameters the plan was built from.
    pub fn params(&self) -> &DfzPlanParams {
        &self.params
    }

    /// Prefix count for a family.
    pub fn len(&self, af: Af) -> u64 {
        match af {
            Af::V4 => self.params.v4_prefixes,
            Af::V6 => self.params.v6_prefixes,
        }
    }

    /// True if the family has no prefixes.
    pub fn is_empty(&self, af: Af) -> bool {
        self.len(af) == 0
    }

    fn classes(&self, af: Af) -> &[LenClass] {
        match af {
            Af::V4 => &self.classes_v4,
            Af::V6 => &self.classes_v6,
        }
    }

    /// The prefix at a plan *slot* (pre-permutation address-order position).
    fn prefix_at_slot(&self, af: Af, slot: u64) -> Prefix {
        let classes = self.classes(af);
        // ≤ a dozen classes: linear scan beats binary search.
        let c = classes
            .iter()
            .rev()
            .find(|c| c.start <= slot)
            .expect("slot within plan");
        debug_assert!(slot - c.start < c.count);
        let stride = 1u128 << (af.width() - c.len);
        Prefix::of(
            Addr::new(af, c.base + stride * (slot - c.start) as u128),
            c.len,
        )
    }

    /// The prefix at popularity rank `rank` (0 = most popular). O(1).
    pub fn prefix(&self, af: Af, rank: u64) -> Prefix {
        debug_assert!(rank < self.len(af), "rank {rank} out of range");
        let slot = match af {
            Af::V4 => self.perm_v4.apply(rank),
            Af::V6 => self.perm_v6.apply(rank),
        };
        self.prefix_at_slot(af, slot)
    }

    /// AS rank (0 = biggest) originating the prefix at `rank`. IPv6 ranks are
    /// projected onto the IPv4 Zipf boundaries so both families share one AS
    /// population. O(log ases).
    pub fn as_rank_of(&self, af: Af, rank: u64) -> u32 {
        let r4 = match af {
            Af::V4 => rank,
            Af::V6 => {
                debug_assert!(self.params.v6_prefixes > 0);
                rank * self.params.v4_prefixes / self.params.v6_prefixes
            }
        };
        self.as_cum.partition_point(|&c| c <= r4) as u32
    }

    /// Origin ASN of the prefix at `rank`.
    pub fn origin_asn(&self, af: Af, rank: u64) -> u32 {
        AS_BASE + self.as_rank_of(af, rank)
    }

    /// The rank range `[lo, hi)` owned by an AS rank in the IPv4 space.
    pub fn as_rank_range(&self, as_rank: u32) -> (u64, u64) {
        let lo = if as_rank == 0 {
            0
        } else {
            self.as_cum[as_rank as usize - 1]
        };
        (lo, self.as_cum[as_rank as usize])
    }
}

// ---------------------------------------------------------------------------
// Churn model
// ---------------------------------------------------------------------------

/// Route-churn parameters. Rates follow the appearance/disappearance +
/// next-hop flap decomposition of Mehner et al. (PAPERS.md): a fraction of
/// prefixes carries each process; per-prefix periods are hash-scaled around
/// the configured means so the population decorrelates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Epoch all phases are anchored to (unix seconds). Queries before the
    /// epoch saturate to it.
    pub epoch: u64,
    /// Fraction of prefixes with a next-hop flap process.
    pub flap_fraction: f64,
    /// Mean seconds between flaps for a flapping prefix.
    pub flap_mean_secs: u64,
    /// Fraction of prefixes that appear/disappear.
    pub updown_fraction: f64,
    /// Mean visible duration.
    pub up_mean_secs: u64,
    /// Mean withdrawn duration.
    pub down_mean_secs: u64,
    /// Seed for all churn decisions.
    pub seed: u64,
}

impl ChurnConfig {
    /// Default churn shape: 10 % of prefixes flap roughly hourly; 5 % come
    /// and go with two-hour up / fifteen-minute down cycles.
    pub fn default_rates(epoch: u64, seed: u64) -> Self {
        ChurnConfig {
            epoch,
            flap_fraction: 0.10,
            flap_mean_secs: 3600,
            updown_fraction: 0.05,
            up_mean_secs: 7200,
            down_mean_secs: 900,
            seed,
        }
    }

    /// No churn at all: a static table.
    pub fn none(epoch: u64, seed: u64) -> Self {
        ChurnConfig {
            epoch,
            flap_fraction: 0.0,
            flap_mean_secs: 3600,
            updown_fraction: 0.0,
            up_mean_secs: 7200,
            down_mean_secs: 900,
            seed,
        }
    }
}

/// Closed-form per-prefix churn state. All queries O(1); no history replay.
#[derive(Debug, Clone, Copy)]
pub struct ChurnModel {
    cfg: ChurnConfig,
}

/// A flapping prefix's renewal process: event `k` fires at
/// `epoch + phase + k·period + jitter(k)` with `jitter < period/4`, so events
/// are strictly increasing with gaps ≥ `3·period/4`.
#[derive(Debug, Clone, Copy)]
struct FlapShape {
    period: f64,
    phase: f64,
}

/// An up/down prefix's square wave: within each cycle of `period` seconds the
/// prefix is visible for the first `up` seconds, withdrawn for the rest. The
/// wave is offset by `phase`.
#[derive(Debug, Clone, Copy)]
struct UpDownShape {
    up: f64,
    period: f64,
    phase: f64,
}

impl ChurnModel {
    /// Wrap a config.
    pub fn new(cfg: ChurnConfig) -> Self {
        assert!(cfg.flap_mean_secs >= 4, "flap mean too small");
        assert!(cfg.up_mean_secs >= 4 && cfg.down_mean_secs >= 4);
        ChurnModel { cfg }
    }

    /// The config.
    pub fn config(&self) -> &ChurnConfig {
        &self.cfg
    }

    /// Does this prefix carry a next-hop flap process?
    pub fn is_flapper(&self, af: Af, rank: u64) -> bool {
        unit_f64(hrank(self.cfg.seed, S_FLAP_SEL, af, rank)) < self.cfg.flap_fraction
    }

    /// Does this prefix appear/disappear?
    pub fn is_updown(&self, af: Af, rank: u64) -> bool {
        unit_f64(hrank(self.cfg.seed, S_UPDOWN_SEL, af, rank)) < self.cfg.updown_fraction
    }

    fn flap_shape(&self, af: Af, rank: u64) -> FlapShape {
        let h = hrank(self.cfg.seed, S_FLAP_PERIOD, af, rank);
        // Period in [0.5, 1.5) × mean; phase uniform in [0, period).
        let period = self.cfg.flap_mean_secs as f64 * (0.5 + unit_f64(h));
        let phase = unit_f64(mix(h, 1)) * period;
        FlapShape { period, phase }
    }

    fn flap_jitter(&self, af: Af, rank: u64, k: u64, period: f64) -> f64 {
        unit_f64(mix(hrank(self.cfg.seed, S_FLAP_JITTER, af, rank), k)) * period * 0.25
    }

    /// Number of next-hop flaps of this prefix in `[epoch, t)`. O(1), exact,
    /// monotone in `t`. Zero for non-flappers.
    pub fn flap_count(&self, af: Af, rank: u64, t: u64) -> u64 {
        if !self.is_flapper(af, rank) || t <= self.cfg.epoch {
            return 0;
        }
        let s = self.flap_shape(af, rank);
        let delta = (t - self.cfg.epoch) as f64 - s.phase;
        if delta < 0.0 {
            return 0;
        }
        // Events 0..q fire strictly before epoch+phase+q·period ≤ t; event q
        // itself fires iff its jitter lands inside the remaining fraction.
        let q = (delta / s.period).floor() as u64;
        let frac = delta - q as f64 * s.period;
        q + u64::from(self.flap_jitter(af, rank, q, s.period) < frac)
    }

    /// The exact flap event times of this prefix inside `[t0, t1)`.
    /// Yields nothing for non-flappers.
    pub fn flap_times_in(
        &self,
        af: Af,
        rank: u64,
        t0: u64,
        t1: u64,
    ) -> impl Iterator<Item = u64> + '_ {
        let shape = self.is_flapper(af, rank).then(|| self.flap_shape(af, rank));
        let cfg = self.cfg;
        let model = *self;
        shape
            .into_iter()
            .flat_map(move |s| {
                let lo = (t0.max(cfg.epoch) - cfg.epoch) as f64 - s.phase;
                let k0 = ((lo / s.period).floor() as i64 - 1).max(0) as u64;
                let hi = (t1.max(cfg.epoch) - cfg.epoch) as f64 - s.phase;
                let k1 = (hi / s.period).ceil().max(0.0) as u64 + 1;
                (k0..k1).map(move |k| {
                    let ts = cfg.epoch as f64
                        + s.phase
                        + k as f64 * s.period
                        + model.flap_jitter(af, rank, k, s.period);
                    ts as u64
                })
            })
            .filter(move |&ts| ts >= t0 && ts < t1)
    }

    fn updown_shape(&self, af: Af, rank: u64) -> UpDownShape {
        let h = hrank(self.cfg.seed, S_UPDOWN_SHAPE, af, rank);
        let up = self.cfg.up_mean_secs as f64 * (0.5 + unit_f64(h));
        let down = self.cfg.down_mean_secs as f64 * (0.5 + unit_f64(mix(h, 1)));
        let period = up + down;
        let phase = unit_f64(mix(h, 2)) * period;
        UpDownShape { up, period, phase }
    }

    /// Is the prefix announced at time `t`? Always true for non-up/down
    /// prefixes. O(1).
    pub fn visible(&self, af: Af, rank: u64, t: u64) -> bool {
        if !self.is_updown(af, rank) {
            return true;
        }
        let s = self.updown_shape(af, rank);
        let x = (t.max(self.cfg.epoch) - self.cfg.epoch) as f64;
        (x - s.phase).rem_euclid(s.period) < s.up
    }

    /// Appearance (`true`) / disappearance (`false`) transitions of this
    /// prefix inside `[t0, t1)`, time-ordered. Empty for non-up/down prefixes.
    pub fn updown_transitions_in(
        &self,
        af: Af,
        rank: u64,
        t0: u64,
        t1: u64,
    ) -> impl Iterator<Item = (u64, bool)> + '_ {
        let shape = self
            .is_updown(af, rank)
            .then(|| self.updown_shape(af, rank));
        let cfg = self.cfg;
        shape
            .into_iter()
            .flat_map(move |s| {
                let lo = (t0.max(cfg.epoch) - cfg.epoch) as f64 - s.phase;
                let k0 = ((lo / s.period).floor() as i64 - 1).max(0) as u64;
                let hi = (t1.max(cfg.epoch) - cfg.epoch) as f64 - s.phase;
                let k1 = (hi / s.period).ceil().max(0.0) as u64 + 1;
                (k0..k1).flat_map(move |k| {
                    let cycle = cfg.epoch as f64 + s.phase + k as f64 * s.period;
                    [(cycle as u64, true), ((cycle + s.up) as u64, false)]
                })
            })
            .filter(move |&(ts, _)| ts >= t0 && ts < t1)
    }
}

// ---------------------------------------------------------------------------
// Churn event stream
// ---------------------------------------------------------------------------

/// What happened to a prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// The prefix became visible (announced).
    Appear,
    /// The prefix was withdrawn.
    Disappear,
    /// The prefix's best route moved to another of its AS's links. The
    /// payload is the flap ordinal (its current next-hop slot offset).
    NextHopFlap(u64),
}

/// One route-churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Event time (unix seconds).
    pub ts: u64,
    /// Address family of the prefix.
    pub af: Af,
    /// Popularity rank of the prefix.
    pub rank: u64,
    /// The concrete prefix.
    pub prefix: Prefix,
    /// What happened.
    pub kind: ChurnKind,
}

/// Time-ordered stream of churn events over `[t0, t1)`.
///
/// Construction scans the rank space once to collect churner indices (memory
/// bounded by the churn fractions); iteration then steps fixed windows,
/// computing each churner's O(1) events per window. Events are globally
/// ordered by `(ts, af, rank)`; per-prefix timestamps are strictly monotone
/// for flaps and alternate appear/disappear for up/down prefixes.
pub struct ChurnStream<'a> {
    plan: &'a PrefixPlan,
    model: &'a ChurnModel,
    /// Packed churners: `famtag | rank`.
    flappers: Vec<u64>,
    updowners: Vec<u64>,
    cursor: u64,
    end: u64,
    window: u64,
    buf: std::vec::IntoIter<ChurnEvent>,
}

fn unpack(p: u64) -> (Af, u64) {
    if p & (1 << 40) != 0 {
        (Af::V6, p & ((1 << 40) - 1))
    } else {
        (Af::V4, p)
    }
}

impl<'a> ChurnStream<'a> {
    /// Stream all churn events in `[t0, t1)`, batched in `window`-second
    /// sorting windows (60 s is a good default).
    pub fn new(plan: &'a PrefixPlan, model: &'a ChurnModel, t0: u64, t1: u64, window: u64) -> Self {
        assert!(window >= 1);
        let mut flappers = Vec::new();
        let mut updowners = Vec::new();
        for af in [Af::V4, Af::V6] {
            for rank in 0..plan.len(af) {
                if model.is_flapper(af, rank) {
                    flappers.push(famtag(af) | rank);
                }
                if model.is_updown(af, rank) {
                    updowners.push(famtag(af) | rank);
                }
            }
        }
        ChurnStream {
            plan,
            model,
            flappers,
            updowners,
            cursor: t0,
            end: t1,
            window,
            buf: Vec::new().into_iter(),
        }
    }

    /// Number of prefixes carrying each process: `(flappers, updowners)`.
    pub fn churner_counts(&self) -> (usize, usize) {
        (self.flappers.len(), self.updowners.len())
    }

    fn fill_window(&mut self) {
        let w0 = self.cursor;
        let w1 = (w0 + self.window).min(self.end);
        self.cursor = w1;
        let mut events = Vec::new();
        for &p in &self.flappers {
            let (af, rank) = unpack(p);
            let base = self.model.flap_count(af, rank, w0);
            for (i, ts) in self.model.flap_times_in(af, rank, w0, w1).enumerate() {
                events.push(ChurnEvent {
                    ts,
                    af,
                    rank,
                    prefix: self.plan.prefix(af, rank),
                    kind: ChurnKind::NextHopFlap(base + i as u64 + 1),
                });
            }
        }
        for &p in &self.updowners {
            let (af, rank) = unpack(p);
            for (ts, up) in self.model.updown_transitions_in(af, rank, w0, w1) {
                events.push(ChurnEvent {
                    ts,
                    af,
                    rank,
                    prefix: self.plan.prefix(af, rank),
                    kind: if up {
                        ChurnKind::Appear
                    } else {
                        ChurnKind::Disappear
                    },
                });
            }
        }
        events.sort_by_key(|e| (e.ts, famtag(e.af), e.rank));
        self.buf = events.into_iter();
    }
}

impl Iterator for ChurnStream<'_> {
    type Item = ChurnEvent;

    fn next(&mut self) -> Option<ChurnEvent> {
        loop {
            if let Some(e) = self.buf.next() {
                return Some(e);
            }
            if self.cursor >= self.end {
                return None;
            }
            self.fill_window();
        }
    }
}

// ---------------------------------------------------------------------------
// AS → links and the route view
// ---------------------------------------------------------------------------

/// Per-AS candidate ingress links, assigned by hash against a
/// [`ScaleTopology`]. Memory `O(Σ links per AS)` — a few entries per AS.
/// Big ASes (low rank) get many links (the paper's CDNs peer everywhere);
/// the tail gets one or two. Distinct within an AS; sharing across ASes is
/// allowed (an IXP port serves many peers).
#[derive(Debug, Clone)]
pub struct AsLinks {
    offsets: Vec<u32>,
    links: Vec<LinkId>,
}

impl AsLinks {
    /// Assign links for `ases` ASes over the topology's link table.
    pub fn new(topo: &ScaleTopology, ases: u32, seed: u64) -> Self {
        let l = topo.link_count() as u64;
        let mut offsets = Vec::with_capacity(ases as usize + 1);
        let mut links: Vec<LinkId> = Vec::new();
        offsets.push(0);
        for a in 0..ases as u64 {
            let want = match a {
                0..=7 => 12usize,
                8..=63 => 6,
                64..=511 => 3,
                _ => 1 + (mix3(seed, S_AS_LINKS, a) & 1) as usize,
            }
            .min(l as usize);
            let start = links.len();
            let mut attempt = 0u64;
            while links.len() - start < want {
                let cand = (mix3(seed, S_AS_LINKS ^ 0xFF, (a << 20) | attempt) % l) as LinkId;
                attempt += 1;
                if !links[start..].contains(&cand) {
                    links.push(cand);
                }
            }
            offsets.push(links.len() as u32);
        }
        AsLinks { offsets, links }
    }

    /// The candidate links of an AS rank.
    pub fn links_of(&self, as_rank: u32) -> &[LinkId] {
        let a = as_rank as usize;
        &self.links[self.offsets[a] as usize..self.offsets[a + 1] as usize]
    }

    /// Number of ASes.
    pub fn ases(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }
}

/// The current best route of a prefix: which link (and so which router and
/// interface) traffic from it enters on, given the churn state at `t`.
///
/// `home + flap_count` walks the AS's link slice round-robin, so a flap
/// always moves the prefix to the *next* candidate link.
pub fn current_link(
    plan: &PrefixPlan,
    model: &ChurnModel,
    as_links: &AsLinks,
    af: Af,
    rank: u64,
    t: u64,
) -> LinkId {
    let as_rank = plan.as_rank_of(af, rank);
    let candidates = as_links.links_of(as_rank);
    let n = candidates.len() as u64;
    let home = hrank(model.config().seed, S_HOME_LINK, af, rank) % n;
    let slot = (home + model.flap_count(af, rank, t)) % n;
    candidates[slot as usize]
}

/// One entry of the DFZ routing table view at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfzRoute {
    /// The prefix.
    pub prefix: Prefix,
    /// Popularity rank within its family.
    pub rank: u64,
    /// Origin ASN.
    pub origin_asn: u32,
    /// Current best link (valid even while withdrawn: where it would land).
    pub link: LinkId,
    /// Is the prefix announced at the query time?
    pub visible: bool,
}

/// Streaming iterator over the full table (both families) at time `t`.
/// O(1) memory per item.
pub fn routes_at<'a>(
    plan: &'a PrefixPlan,
    model: &'a ChurnModel,
    as_links: &'a AsLinks,
    t: u64,
) -> impl Iterator<Item = DfzRoute> + 'a {
    [Af::V4, Af::V6].into_iter().flat_map(move |af| {
        (0..plan.len(af)).map(move |rank| DfzRoute {
            prefix: plan.prefix(af, rank),
            rank,
            origin_asn: plan.origin_asn(af, rank),
            link: current_link(plan, model, as_links, af, rank, t),
            visible: model.visible(af, rank, t),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_topology::ScaleParams;

    #[test]
    fn perm_is_bijective() {
        for &n in &[1u64, 2, 10, 100, 1000, 4096, 10_007] {
            let p = Perm::new(n, 0xDEAD_BEEF ^ n);
            let mut seen = vec![false; n as usize];
            for x in 0..n {
                let y = p.apply(x);
                assert!(y < n, "n={n} x={x} -> {y}");
                assert!(!seen[y as usize], "collision at n={n} x={x}");
                seen[y as usize] = true;
            }
        }
    }

    fn plan_10k() -> PrefixPlan {
        PrefixPlan::new(DfzPlanParams::tier(7, 10_000))
    }

    #[test]
    fn plan_covers_and_is_disjoint() {
        let plan = plan_10k();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..plan.len(Af::V4) {
            let p = plan.prefix(Af::V4, rank);
            assert!(seen.insert(p), "duplicate prefix {p} at rank {rank}");
            assert!((12..=24).contains(&p.len()));
        }
        // Stride layout ⇒ no prefix contains another: all same-length within
        // a class, classes in disjoint regions. Spot-check across classes.
        let all: Vec<Prefix> = seen.iter().copied().collect();
        for w in all.windows(2).take(500) {
            assert!(!w[0].contains_prefix(w[1]) && !w[1].contains_prefix(w[0]));
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let a = plan_10k();
        let b = plan_10k();
        for rank in (0..10_000).step_by(97) {
            assert_eq!(a.prefix(Af::V4, rank), b.prefix(Af::V4, rank));
            assert_eq!(a.origin_asn(Af::V4, rank), b.origin_asn(Af::V4, rank));
        }
        let c = PrefixPlan::new(DfzPlanParams {
            seed: 8,
            ..*a.params()
        });
        let diff = (0..10_000u64)
            .filter(|&r| a.prefix(Af::V4, r) != c.prefix(Af::V4, r))
            .count();
        assert!(diff > 5_000, "different seed must reshuffle ({diff})");
    }

    #[test]
    fn as_sizes_are_zipf_and_total() {
        let plan = plan_10k();
        let n = plan.len(Af::V4);
        let ases = plan.params().ases;
        let (lo0, hi0) = plan.as_rank_range(0);
        assert_eq!(lo0, 0);
        let (_, hi_last) = plan.as_rank_range(ases - 1);
        assert_eq!(hi_last, n);
        // Biggest AS owns much more than an equal share.
        assert!(hi0 > 5 * (n / ases as u64));
        // Boundaries monotone; membership agrees with as_rank_of.
        for a in 1..ases {
            let (lo, hi) = plan.as_rank_range(a);
            assert!(lo <= hi, "range collapsed");
            assert!(plan.as_rank_range(a - 1).1 == lo);
        }
        assert_eq!(plan.as_rank_of(Af::V4, 0), 0);
        assert_eq!(plan.as_rank_of(Af::V4, n - 1), ases - 1);
    }

    #[test]
    fn v6_shares_the_as_population() {
        let plan = plan_10k();
        assert!(plan.len(Af::V6) == 2000);
        let p = plan.prefix(Af::V6, 0);
        assert_eq!(p.af(), Af::V6);
        assert!((32..=48).contains(&p.len()));
        // Rank 0 of both families belongs to the biggest AS.
        assert_eq!(plan.as_rank_of(Af::V6, 0), 0);
        assert!(plan.origin_asn(Af::V6, plan.len(Af::V6) - 1) >= AS_BASE);
    }

    #[test]
    fn dfz_plan_fits_address_space() {
        // The acceptance-scale plan must construct (asserts internally).
        let plan = PrefixPlan::new(DfzPlanParams::dfz(1));
        assert_eq!(plan.len(Af::V4), 1_048_576);
        assert_eq!(plan.len(Af::V6), 204_800);
        let p = plan.prefix(Af::V4, 1_048_575);
        assert!(p.addr().bits() < (1 << 32));
    }

    fn model() -> ChurnModel {
        ChurnModel::new(ChurnConfig::default_rates(1_700_000_000, 42))
    }

    #[test]
    fn flap_count_monotone_and_matches_times() {
        let m = model();
        let epoch = m.config().epoch;
        let rank = (0..10_000)
            .find(|&r| m.is_flapper(Af::V4, r))
            .expect("some flapper in 10k");
        let mut prev = 0;
        for t in (epoch..epoch + 4 * 3600).step_by(61) {
            let c = m.flap_count(Af::V4, rank, t);
            assert!(c >= prev, "flap_count must be monotone");
            prev = c;
        }
        // Event view consistent with the closed form.
        let t1 = epoch + 6 * 3600;
        let times: Vec<u64> = m.flap_times_in(Af::V4, rank, epoch, t1).collect();
        assert_eq!(times.len() as u64, m.flap_count(Af::V4, rank, t1));
        for w in times.windows(2) {
            assert!(w[0] < w[1], "flap times strictly increasing");
        }
    }

    #[test]
    fn updown_transitions_match_visibility() {
        let m = model();
        let epoch = m.config().epoch;
        let rank = (0..10_000)
            .find(|&r| m.is_updown(Af::V4, r))
            .expect("some up/down prefix in 10k");
        let t1 = epoch + 24 * 3600;
        let trans: Vec<(u64, bool)> = m.updown_transitions_in(Af::V4, rank, epoch, t1).collect();
        assert!(!trans.is_empty());
        for w in trans.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert_ne!(w[0].1, w[1].1, "appear/disappear must alternate");
        }
        // Just after an appearance the prefix is visible; just after a
        // disappearance it is not.
        for &(ts, up) in &trans {
            assert_eq!(m.visible(Af::V4, rank, ts + 1), up, "at {ts}");
        }
    }

    #[test]
    fn non_churners_are_static() {
        let m = model();
        let rank = (0..10_000)
            .find(|&r| !m.is_flapper(Af::V4, r) && !m.is_updown(Af::V4, r))
            .unwrap();
        let epoch = m.config().epoch;
        assert!(m.visible(Af::V4, rank, epoch + 999_999));
        assert_eq!(m.flap_count(Af::V4, rank, epoch + 999_999), 0);
        assert_eq!(m.flap_times_in(Af::V4, rank, 0, u64::MAX / 2).count(), 0);
    }

    #[test]
    fn churn_stream_ordered_and_consistent() {
        let plan = plan_10k();
        let m = model();
        let epoch = m.config().epoch;
        let (t0, t1) = (epoch, epoch + 2 * 3600);
        let events: Vec<ChurnEvent> = ChurnStream::new(&plan, &m, t0, t1, 60).collect();
        assert!(!events.is_empty());
        let mut last_ts = 0;
        let mut per_prefix: std::collections::HashMap<(u64, u64), u64> = Default::default();
        for e in &events {
            assert!(e.ts >= last_ts, "global order by ts");
            assert!(e.ts >= t0 && e.ts < t1);
            last_ts = e.ts;
            let k = (famtag(e.af), e.rank);
            if let Some(&p) = per_prefix.get(&k) {
                assert!(e.ts >= p, "per-prefix monotone");
            }
            per_prefix.insert(k, e.ts);
            assert_eq!(e.prefix, plan.prefix(e.af, e.rank));
        }
        // Flap ordinals agree with flap_count at window end.
        for e in events.iter().rev() {
            if let ChurnKind::NextHopFlap(ord) = e.kind {
                assert!(ord <= m.flap_count(e.af, e.rank, t1));
                break;
            }
        }
    }

    #[test]
    fn as_links_distinct_and_sized() {
        let topo = ScaleTopology::new(ScaleParams::scaled(5, 0.05));
        let al = AsLinks::new(&topo, 256, 9);
        assert_eq!(al.ases(), 256);
        assert_eq!(al.links_of(0).len(), 12.min(topo.link_count() as usize));
        assert_eq!(al.links_of(10).len(), 6);
        assert_eq!(al.links_of(200).len(), 3);
        for a in 0..256 {
            let ls = al.links_of(a);
            let set: std::collections::HashSet<_> = ls.iter().collect();
            assert_eq!(set.len(), ls.len(), "AS {a} links must be distinct");
            for &l in ls {
                assert!(l < topo.link_count());
            }
        }
    }

    #[test]
    fn current_link_round_robins_on_flap() {
        let topo = ScaleTopology::new(ScaleParams::scaled(5, 0.05));
        let plan = plan_10k();
        let m = model();
        let al = AsLinks::new(&topo, plan.params().ases, 9);
        let epoch = m.config().epoch;
        let rank = (0..10_000)
            .find(|&r| {
                m.is_flapper(Af::V4, r) && al.links_of(plan.as_rank_of(Af::V4, r)).len() >= 2
            })
            .unwrap();
        let l0 = current_link(&plan, &m, &al, Af::V4, rank, epoch);
        let flap_ts = m
            .flap_times_in(Af::V4, rank, epoch, epoch + 48 * 3600)
            .next()
            .unwrap();
        let l1 = current_link(&plan, &m, &al, Af::V4, rank, flap_ts + 1);
        assert_ne!(l0, l1, "a flap must move the prefix to another link");
        let cands = al.links_of(plan.as_rank_of(Af::V4, rank));
        assert!(cands.contains(&l0) && cands.contains(&l1));
    }

    #[test]
    fn routes_at_streams_both_families() {
        let topo = ScaleTopology::new(ScaleParams::scaled(5, 0.05));
        let plan = PrefixPlan::new(DfzPlanParams::tier(7, 1000));
        let m = model();
        let al = AsLinks::new(&topo, plan.params().ases, 9);
        let routes: Vec<DfzRoute> = routes_at(&plan, &m, &al, m.config().epoch + 100).collect();
        assert_eq!(routes.len(), 1000 + 200);
        assert!(routes.iter().any(|r| r.prefix.af() == Af::V6));
        assert!(routes.iter().filter(|r| !r.visible).count() < routes.len() / 10);
    }
}
