//! The routing information base.

use ipd_lpm::{Addr, LpmTrie, Prefix};
use ipd_topology::IngressPoint;

use crate::route::{RibEntry, Route};

/// A BGP RIB: prefixes with one or more routes each, over an LPM trie.
#[derive(Debug, Default)]
pub struct Rib {
    trie: LpmTrie<RibEntry>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes with at least one route.
    pub fn prefix_count(&self) -> usize {
        self.trie.len()
    }

    /// Announce (insert or update) a route for `prefix`.
    pub fn announce(&mut self, prefix: Prefix, route: Route) {
        // LpmTrie has no entry API; emulate with remove + insert to keep the
        // trie code minimal. Announcement rate is not a bottleneck here.
        let mut entry = self.trie.remove(prefix).unwrap_or_default();
        entry.upsert(route);
        self.trie.insert(prefix, entry);
    }

    /// Withdraw the route for `prefix` via `next_hop`. Removes the prefix
    /// entirely when its last route goes. Returns whether a route was removed.
    pub fn withdraw(&mut self, prefix: Prefix, next_hop: IngressPoint) -> bool {
        match self.trie.remove(prefix) {
            None => false,
            Some(mut entry) => {
                let removed = entry.withdraw(next_hop);
                if !entry.is_empty() {
                    self.trie.insert(prefix, entry);
                }
                removed
            }
        }
    }

    /// The RIB entry exactly at `prefix`.
    pub fn entry(&self, prefix: Prefix) -> Option<&RibEntry> {
        self.trie.exact(prefix)
    }

    /// Longest-prefix match for an address: the covering prefix and its entry.
    pub fn match_addr(&self, addr: Addr) -> Option<(Prefix, &RibEntry)> {
        self.trie.lookup(addr)
    }

    /// Longest-prefix match for a prefix key (§5.5 needs to relate IPD ranges
    /// to their covering BGP prefix).
    pub fn match_prefix(&self, prefix: Prefix) -> Option<(Prefix, &RibEntry)> {
        self.trie.lookup_prefix(prefix)
    }

    /// Best route for a destination address — this is the *egress* router BGP
    /// would pick, the quantity compared against IPD ingress in §5.5.
    pub fn best(&self, addr: Addr) -> Option<(Prefix, &Route)> {
        self.match_addr(addr)
            .and_then(|(p, e)| e.best().map(|r| (p, r)))
    }

    /// Origin AS of the best route covering `addr`.
    pub fn origin_of(&self, addr: Addr) -> Option<u32> {
        self.best(addr).and_then(|(_, r)| r.origin_as())
    }

    /// Iterate over `(prefix, entry)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &RibEntry)> + '_ {
        self.trie.iter()
    }

    /// All prefixes originated by `asn` (by best route).
    pub fn prefixes_of_origin(&self, asn: u32) -> Vec<Prefix> {
        self.iter()
            .filter(|(_, e)| e.best().and_then(Route::origin_as) == Some(asn))
            .map(|(p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Addr {
        s.parse::<std::net::IpAddr>().unwrap().into()
    }

    fn route(router: u32, path: &[u32]) -> Route {
        Route {
            next_hop: IngressPoint::new(router, 1),
            link: 0,
            as_path: path.to_vec(),
            local_pref: 100,
        }
    }

    #[test]
    fn announce_and_lookup() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), route(1, &[100]));
        rib.announce(p("10.1.0.0/16"), route(2, &[200, 300]));
        assert_eq!(rib.prefix_count(), 2);
        let (pre, r) = rib.best(a("10.1.2.3")).unwrap();
        assert_eq!(pre, p("10.1.0.0/16"));
        assert_eq!(r.next_hop.router, 2);
        assert_eq!(rib.best(a("10.9.0.1")).unwrap().1.next_hop.router, 1);
        assert_eq!(rib.origin_of(a("10.1.2.3")), Some(300));
        assert!(rib.best(a("11.0.0.1")).is_none());
    }

    #[test]
    fn multiple_routes_same_prefix() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), route(5, &[100, 300]));
        rib.announce(p("10.0.0.0/8"), route(2, &[100]));
        assert_eq!(rib.prefix_count(), 1);
        let e = rib.entry(p("10.0.0.0/8")).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e.best().unwrap().next_hop.router, 2);
    }

    #[test]
    fn withdraw_last_route_removes_prefix() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), route(1, &[100]));
        assert!(rib.withdraw(p("10.0.0.0/8"), IngressPoint::new(1, 1)));
        assert_eq!(rib.prefix_count(), 0);
        assert!(!rib.withdraw(p("10.0.0.0/8"), IngressPoint::new(1, 1)));
    }

    #[test]
    fn withdraw_keeps_other_routes() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), route(1, &[100]));
        rib.announce(p("10.0.0.0/8"), route(2, &[100, 200]));
        assert!(rib.withdraw(p("10.0.0.0/8"), IngressPoint::new(1, 1)));
        assert_eq!(
            rib.entry(p("10.0.0.0/8"))
                .unwrap()
                .best()
                .unwrap()
                .next_hop
                .router,
            2
        );
    }

    #[test]
    fn match_prefix_finds_covering_bgp_prefix() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), route(1, &[100]));
        // An IPD range more specific than the BGP prefix (the 91% case).
        let (covering, _) = rib.match_prefix(p("10.2.3.0/28")).unwrap();
        assert_eq!(covering, p("10.0.0.0/8"));
        // A less specific IPD range matches nothing.
        assert!(rib.match_prefix(p("0.0.0.0/4")).is_none());
    }

    #[test]
    fn prefixes_of_origin() {
        let mut rib = Rib::new();
        rib.announce(p("10.0.0.0/8"), route(1, &[100, 64500]));
        rib.announce(p("20.0.0.0/8"), route(1, &[200, 64500]));
        rib.announce(p("30.0.0.0/8"), route(1, &[300]));
        let mut got = rib.prefixes_of_origin(64500);
        got.sort();
        assert_eq!(got, vec![p("10.0.0.0/8"), p("20.0.0.0/8")]);
    }
}
