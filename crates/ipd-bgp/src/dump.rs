//! Text table-dump codec.
//!
//! The paper's evaluation consumes "periodic BGP table dumps" (§4). We use a
//! pipe-separated line format closely resembling `bgpdump -m` output of MRT
//! TABLE_DUMP_V2 files:
//!
//! ```text
//! TABLE_DUMP2|<unix_ts>|B|<router>|<ifindex>|<prefix>|<as_path space-sep>|<local_pref>
//! ```
//!
//! One line per (prefix, route). Parsing rebuilds a [`Rib`] with identical
//! best-path results (selection is deterministic given the route attributes).

use std::fmt::Write as _;

use ipd_lpm::Prefix;
use ipd_topology::IngressPoint;

use crate::rib::Rib;
use crate::route::Route;

/// Errors from [`parse_dump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for DumpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dump parse error at line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for DumpParseError {}

/// Serialize the RIB as a table dump taken at `ts` (unix seconds).
pub fn write_dump(rib: &Rib, ts: u64) -> String {
    let mut out = String::new();
    for (prefix, entry) in rib.iter() {
        for route in entry.routes() {
            let path = route
                .as_path
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            writeln!(
                out,
                "TABLE_DUMP2|{ts}|B|{router}|{ifx}|{prefix}|{path}|{pref}",
                router = route.next_hop.router,
                ifx = route.next_hop.ifindex,
                pref = route.local_pref,
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// Parse a table dump back into a RIB. Blank lines and `#` comments are
/// skipped. Returns the RIB and the dump timestamp of the first record.
pub fn parse_dump(text: &str) -> Result<(Rib, Option<u64>), DumpParseError> {
    let mut rib = Rib::new();
    let mut first_ts = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != 8 {
            return Err(DumpParseError {
                line: lineno,
                reason: format!("expected 8 fields, got {}", fields.len()),
            });
        }
        if fields[0] != "TABLE_DUMP2" || fields[2] != "B" {
            return Err(DumpParseError {
                line: lineno,
                reason: "bad record type".into(),
            });
        }
        let err = |what: &str| DumpParseError {
            line: lineno,
            reason: what.to_string(),
        };
        let ts: u64 = fields[1].parse().map_err(|_| err("bad timestamp"))?;
        first_ts.get_or_insert(ts);
        let router: u32 = fields[3].parse().map_err(|_| err("bad router id"))?;
        let ifindex: u16 = fields[4].parse().map_err(|_| err("bad ifindex"))?;
        let prefix: Prefix = fields[5]
            .parse()
            .map_err(|e| err(&format!("bad prefix: {e}")))?;
        let as_path = if fields[6].is_empty() {
            Vec::new()
        } else {
            fields[6]
                .split(' ')
                .map(|s| s.parse::<u32>())
                .collect::<Result<Vec<_>, _>>()
                .map_err(|_| err("bad AS path"))?
        };
        let local_pref: u32 = fields[7].parse().map_err(|_| err("bad local pref"))?;
        rib.announce(
            prefix,
            Route {
                next_hop: IngressPoint::new(router, ifindex),
                link: 0,
                as_path,
                local_pref,
            },
        );
    }
    Ok((rib, first_ts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_lpm::Addr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn sample_rib() -> Rib {
        let mut rib = Rib::new();
        rib.announce(
            p("10.0.0.0/8"),
            Route {
                next_hop: IngressPoint::new(3, 2),
                link: 0,
                as_path: vec![100, 64500],
                local_pref: 100,
            },
        );
        rib.announce(
            p("10.0.0.0/8"),
            Route {
                next_hop: IngressPoint::new(1, 1),
                link: 0,
                as_path: vec![200, 300, 64500],
                local_pref: 100,
            },
        );
        rib.announce(
            p("2001:db8::/32"),
            Route {
                next_hop: IngressPoint::new(7, 4),
                link: 0,
                as_path: vec![],
                local_pref: 50,
            },
        );
        rib
    }

    #[test]
    fn roundtrip() {
        let rib = sample_rib();
        let text = write_dump(&rib, 1_600_000_000);
        let (back, ts) = parse_dump(&text).unwrap();
        assert_eq!(ts, Some(1_600_000_000));
        assert_eq!(back.prefix_count(), rib.prefix_count());
        // Best-path decisions survive.
        let addr: Addr = Addr::v4(0x0A01_0101);
        assert_eq!(
            back.best(addr).unwrap().1.next_hop,
            rib.best(addr).unwrap().1.next_hop
        );
        // Empty AS path survives.
        assert!(back
            .entry(p("2001:db8::/32"))
            .unwrap()
            .best()
            .unwrap()
            .as_path
            .is_empty());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let (rib, ts) = parse_dump("# a comment\n\n").unwrap();
        assert_eq!(rib.prefix_count(), 0);
        assert_eq!(ts, None);
    }

    #[test]
    fn field_count_error_carries_line() {
        let err = parse_dump("TABLE_DUMP2|1|B|1|1|10.0.0.0/8|100").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("8 fields"));
    }

    #[test]
    fn bad_values_rejected() {
        let base = "TABLE_DUMP2|1|B|1|1|10.0.0.0/8|100|100";
        assert!(parse_dump(base).is_ok());
        for bad in [
            "TABLE_DUMP9|1|B|1|1|10.0.0.0/8|100|100",
            "TABLE_DUMP2|x|B|1|1|10.0.0.0/8|100|100",
            "TABLE_DUMP2|1|B|x|1|10.0.0.0/8|100|100",
            "TABLE_DUMP2|1|B|1|x|10.0.0.0/8|100|100",
            "TABLE_DUMP2|1|B|1|1|10.0.0.0-8|100|100",
            "TABLE_DUMP2|1|B|1|1|10.0.0.0/8|1 x 3|100",
            "TABLE_DUMP2|1|B|1|1|10.0.0.0/8|100|x",
        ] {
            assert!(parse_dump(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn multiline_dump_shape() {
        let text = write_dump(&sample_rib(), 42);
        // 2 routes for 10/8 + 1 route for the v6 prefix.
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.starts_with("TABLE_DUMP2|42|B|")));
    }
}
