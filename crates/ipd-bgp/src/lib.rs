//! BGP substrate for the IPD reproduction.
//!
//! The paper uses BGP data in three places, all of which this crate serves:
//!
//! * **Fig 3** — the number of *possible* ingress points per prefix is the
//!   number of distinct next-hop routers in the BGP table ([`stats`]).
//! * **§5.5 (path asymmetry)** — "We compare IPD ingress routers with egress
//!   routers from historical BGP table dumps": the RIB's best route gives the
//!   egress router for a destination prefix ([`Rib::best`]).
//! * **§5.6 (peering violations)** — "We monitor the ingress of prefixes of
//!   16 tier-1 ISPs (from daily BGP dumps)": origin-AS attribution of the
//!   address space ([`Rib::origin_of`]).
//!
//! And, crucially, the paper's central negative result — *BGP cannot be used
//! for ingress point detection* — requires an actual RIB to demonstrate
//! against, which `ipd-eval` does.
//!
//! The RIB models multiple routes per prefix with standard best-path
//! selection (local-pref, then AS-path length, then lowest router id) and a
//! text table-dump codec resembling `bgpdump -m` output.

pub mod dfz;
mod dump;
mod rib;
mod route;
pub mod stats;

pub use dfz::{
    current_link, routes_at, AsLinks, ChurnConfig, ChurnEvent, ChurnKind, ChurnModel, ChurnStream,
    DfzPlanParams, DfzRoute, PrefixPlan,
};
pub use dump::{parse_dump, write_dump, DumpParseError};
pub use rib::Rib;
pub use route::{RibEntry, Route};
