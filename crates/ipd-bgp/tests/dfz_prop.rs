//! Property tests for the DFZ prefix plan and churn model (DESIGN.md §12).
//!
//! The contract under test: the plan is a pure function of its seed (rebuilt
//! worlds are bit-identical), churn event times are monotone per prefix,
//! and the prefix-length / per-AS distributions track their calibration
//! targets at every tier. The 1M tier runs under `--ignored` (see the CI
//! matrix in `.github/workflows/ci.yml`).

use std::collections::HashMap;

use ipd_bgp::dfz::{ChurnConfig, ChurnModel, ChurnStream, DfzPlanParams, PrefixPlan};
use ipd_lpm::Af;
use proptest::prelude::*;

const EPOCH: u64 = 1_700_000_000;

fn plan_pair(seed: u64, v4: u64) -> (PrefixPlan, PrefixPlan) {
    (
        PrefixPlan::new(DfzPlanParams::tier(seed, v4)),
        PrefixPlan::new(DfzPlanParams::tier(seed, v4)),
    )
}

proptest! {
    /// Same seed ⇒ bit-identical prefixes, origins, and churn streams.
    #[test]
    fn dfz_plan_rebuild_bit_identical(seed in any::<u64>()) {
        let (a, b) = plan_pair(seed, 10_000);
        for af in [Af::V4, Af::V6] {
            for rank in (0..a.len(af)).step_by(97) {
                prop_assert_eq!(a.prefix(af, rank), b.prefix(af, rank));
                prop_assert_eq!(a.origin_asn(af, rank), b.origin_asn(af, rank));
            }
        }
        let model = ChurnModel::new(ChurnConfig::default_rates(EPOCH, seed));
        let ea: Vec<_> = ChurnStream::new(&a, &model, EPOCH, EPOCH + 1800, 60).collect();
        let eb: Vec<_> = ChurnStream::new(&b, &model, EPOCH, EPOCH + 1800, 60).collect();
        prop_assert_eq!(ea, eb);
    }

    /// Churn timestamps are globally sorted and monotone per prefix, and
    /// every event's visibility flips agree with the O(1) oracle.
    #[test]
    fn dfz_churn_timestamps_monotone_per_prefix(seed in any::<u64>()) {
        let plan = PrefixPlan::new(DfzPlanParams::tier(seed, 10_000));
        let model = ChurnModel::new(ChurnConfig::default_rates(EPOCH, seed));
        let mut last_global = 0u64;
        let mut last_by_prefix: HashMap<(Af, u64), u64> = HashMap::new();
        let mut n = 0u64;
        for ev in ChurnStream::new(&plan, &model, EPOCH, EPOCH + 7200, 60) {
            prop_assert!(ev.ts >= EPOCH && ev.ts < EPOCH + 7200);
            prop_assert!(ev.ts >= last_global, "stream must be time-sorted");
            last_global = ev.ts;
            if let Some(&prev) = last_by_prefix.get(&(ev.af, ev.rank)) {
                prop_assert!(ev.ts >= prev, "per-prefix time went backwards");
            }
            last_by_prefix.insert((ev.af, ev.rank), ev.ts);
            prop_assert_eq!(plan.prefix(ev.af, ev.rank), ev.prefix);
            n += 1;
        }
        // Default rates churn ~15% of 12k prefixes over two hours — the
        // stream must not be trivially empty.
        prop_assert!(n > 100, "only {} churn events", n);
    }

    /// Every rank maps into a valid AS, AS rank ranges tile the rank space
    /// exactly, and the Zipf sizing makes them non-increasing head-to-tail.
    #[test]
    fn dfz_as_partition_tiles_rank_space(seed in any::<u64>(), v4 in 5_000u64..50_000) {
        let plan = PrefixPlan::new(DfzPlanParams::tier(seed, v4));
        let p = *plan.params();
        let mut covered = 0u64;
        let mut first_size = 0u64;
        let mut last_size = u64::MAX;
        for as_rank in 0..p.ases {
            let (lo, hi) = plan.as_rank_range(as_rank);
            prop_assert_eq!(lo, covered, "ranges must tile without gaps");
            prop_assert!(hi >= lo);
            covered = hi;
            let size = hi - lo;
            if as_rank == 0 {
                first_size = size;
            }
            last_size = size;
        }
        prop_assert_eq!(covered, p.v4_prefixes, "ranges must cover all v4 ranks");
        prop_assert!(first_size >= last_size, "Zipf head must outweigh tail");
        // Spot-check the inverse mapping agrees with the partition.
        for rank in (0..p.v4_prefixes).step_by(211) {
            let ar = plan.as_rank_of(Af::V4, rank);
            let (lo, hi) = plan.as_rank_range(ar);
            prop_assert!(rank >= lo && rank < hi);
        }
    }
}

/// Prefix-length histogram over all ranks of one tier.
fn length_histogram(plan: &PrefixPlan, af: Af) -> HashMap<u8, u64> {
    let mut h = HashMap::new();
    for rank in 0..plan.len(af) {
        *h.entry(plan.prefix(af, rank).len()).or_insert(0) += 1;
    }
    h
}

fn assert_length_calibration(plan: &PrefixPlan) {
    let n4 = plan.len(Af::V4) as f64;
    let h4 = length_histogram(plan, Af::V4);
    // The /24 class carries its 61.3 % weight plus the carve remainder.
    let slash24 = h4[&24] as f64 / n4;
    assert!(
        (0.60..=0.65).contains(&slash24),
        "/24 share {slash24} out of calibrated range"
    );
    let slash22 = h4[&22] as f64 / n4;
    assert!((0.08..=0.12).contains(&slash22), "/22 share {slash22}");
    // Coarse classes exist but stay rare.
    assert!(h4[&12] >= 1 && (h4[&12] as f64 / n4) < 0.002);
    assert_eq!(h4.values().sum::<u64>(), plan.len(Af::V4));

    let n6 = plan.len(Af::V6) as f64;
    let h6 = length_histogram(plan, Af::V6);
    let slash48 = h6[&48] as f64 / n6;
    assert!((0.33..=0.40).contains(&slash48), "/48 share {slash48}");
    assert_eq!(h6.values().sum::<u64>(), plan.len(Af::V6));
}

#[test]
fn dfz_length_distribution_calibrated_10k() {
    assert_length_calibration(&PrefixPlan::new(DfzPlanParams::tier(3, 10_000)));
}

#[test]
fn dfz_length_distribution_calibrated_100k() {
    assert_length_calibration(&PrefixPlan::new(DfzPlanParams::tier(3, 100_000)));
}

/// The full 1M + 200k tier. Slow (walks every rank twice); run with
/// `cargo test -p ipd-bgp --test dfz_prop -- --ignored`.
#[test]
#[ignore = "1M tier: run explicitly via --ignored (see CI matrix)"]
fn dfz_length_distribution_calibrated_1m() {
    let plan = PrefixPlan::new(DfzPlanParams::dfz(3));
    assert_eq!(plan.len(Af::V4), 1_048_576);
    assert_eq!(plan.len(Af::V6), 204_800);
    assert_length_calibration(&plan);
    // Distinctness at scale: the Feistel permutation keeps ranks collision
    // free — sample a wide stride and require unique addresses.
    let mut seen = std::collections::HashSet::new();
    for rank in (0..plan.len(Af::V4)).step_by(257) {
        assert!(
            seen.insert(plan.prefix(Af::V4, rank)),
            "duplicate v4 prefix"
        );
    }
}
