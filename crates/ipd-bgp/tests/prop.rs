//! Property-based tests: the RIB against a naive model, and dump round-trips.

use std::collections::HashMap;

use ipd_bgp::{parse_dump, write_dump, Rib, Route};
use ipd_lpm::{Addr, Prefix};
use ipd_topology::IngressPoint;
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    // Cluster prefixes into 10.0.0.0/8 so overlaps actually happen.
    (any::<u32>(), 8u8..=28)
        .prop_map(|(bits, len)| Prefix::of(Addr::v4(0x0A00_0000 | (bits & 0x00FF_FFFF)), len))
}

fn arb_route() -> impl Strategy<Value = Route> {
    (
        1u32..8,
        1u16..4,
        proptest::collection::vec(1u32..100, 1..4),
        50u32..200,
    )
        .prop_map(|(router, ifx, as_path, local_pref)| Route {
            next_hop: IngressPoint::new(router, ifx),
            link: 0,
            as_path,
            local_pref,
        })
}

#[derive(Debug, Clone)]
enum Op {
    Announce(Prefix, Route),
    Withdraw(Prefix, u32, u16),
    Lookup(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (arb_prefix(), arb_route()).prop_map(|(p, r)| Op::Announce(p, r)),
        1 => (arb_prefix(), 1u32..8, 1u16..4).prop_map(|(p, r, i)| Op::Withdraw(p, r, i)),
        2 => any::<u32>().prop_map(|bits| Op::Lookup(0x0A00_0000 | (bits & 0x00FF_FFFF))),
    ]
}

/// Naive model: map prefix → routes; lookups by linear scan + the same
/// best-path ordering.
#[derive(Default)]
struct Model {
    routes: HashMap<Prefix, Vec<Route>>,
}

impl Model {
    fn announce(&mut self, p: Prefix, r: Route) {
        let v = self.routes.entry(p).or_default();
        v.retain(|x| x.next_hop != r.next_hop);
        v.push(r);
    }

    fn withdraw(&mut self, p: Prefix, nh: IngressPoint) {
        if let Some(v) = self.routes.get_mut(&p) {
            v.retain(|x| x.next_hop != nh);
            if v.is_empty() {
                self.routes.remove(&p);
            }
        }
    }

    fn best(&self, a: Addr) -> Option<(Prefix, IngressPoint)> {
        let (p, v) = self
            .routes
            .iter()
            .filter(|(p, _)| p.contains(a))
            .max_by_key(|(p, _)| p.len())?;
        let best = v.iter().min_by(|x, y| {
            y.local_pref
                .cmp(&x.local_pref)
                .then(x.as_path.len().cmp(&y.as_path.len()))
                .then(x.next_hop.cmp(&y.next_hop))
        })?;
        Some((*p, best.next_hop))
    }
}

proptest! {
    /// RIB agrees with the naive model on every lookup.
    #[test]
    fn rib_matches_model(ops in proptest::collection::vec(arb_op(), 1..150)) {
        let mut rib = Rib::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Announce(p, r) => {
                    rib.announce(p, r.clone());
                    model.announce(p, r);
                }
                Op::Withdraw(p, router, ifx) => {
                    let nh = IngressPoint::new(router, ifx);
                    rib.withdraw(p, nh);
                    model.withdraw(p, nh);
                }
                Op::Lookup(bits) => {
                    let a = Addr::v4(bits);
                    let got = rib.best(a).map(|(p, r)| (p, r.next_hop));
                    prop_assert_eq!(got, model.best(a));
                }
            }
            prop_assert_eq!(rib.prefix_count(), model.routes.len());
        }
    }

    /// A RIB survives the dump → parse round-trip with identical best paths.
    #[test]
    fn dump_roundtrip_preserves_best_paths(
        entries in proptest::collection::vec((arb_prefix(), arb_route()), 1..80),
        probes in proptest::collection::vec(any::<u32>(), 20),
    ) {
        let mut rib = Rib::new();
        for (p, r) in &entries {
            rib.announce(*p, r.clone());
        }
        let text = write_dump(&rib, 777);
        let (back, ts) = parse_dump(&text).unwrap();
        prop_assert_eq!(ts, Some(777));
        prop_assert_eq!(back.prefix_count(), rib.prefix_count());
        for bits in probes {
            let a = Addr::v4(0x0A00_0000 | (bits & 0x00FF_FFFF));
            prop_assert_eq!(
                back.best(a).map(|(p, r)| (p, r.next_hop, r.local_pref)),
                rib.best(a).map(|(p, r)| (p, r.next_hop, r.local_pref))
            );
        }
    }

    /// The parser never panics on mutated dumps (errors are fine).
    #[test]
    fn parser_survives_mutation(
        entries in proptest::collection::vec((arb_prefix(), arb_route()), 1..20),
        cut in any::<usize>(),
        flip in any::<u8>(),
    ) {
        let mut rib = Rib::new();
        for (p, r) in &entries {
            rib.announce(*p, r.clone());
        }
        let mut text = write_dump(&rib, 1).into_bytes();
        if !text.is_empty() {
            let i = cut % text.len();
            text[i] = flip;
        }
        let _ = parse_dump(&String::from_utf8_lossy(&text));
    }
}
