//! A panicking reader must never wedge the pipeline.
//!
//! The collector side of a deployment is the untrusted half: it parses
//! arbitrary bytes off the wire, and a bug there takes down the reader
//! thread, dropping its `Sender` mid-stream. The engine thread only learns
//! about this through channel disconnection — these tests pin down that it
//! shuts down cleanly from that signal alone: `finish()` returns (no
//! deadlock), every flow sent before the panic is ingested, and the final
//! ticks still fire. The last test additionally parks the engine thread
//! mid-`send` on the bounded output channel before finishing — the exact
//! state where a join-before-drain `finish()` deadlocks.
//!
//! Everything runs under a watchdog so a regression fails the suite with a
//! message instead of hanging CI at the job timeout.

use std::sync::mpsc;
use std::time::Duration;

use ipd::pipeline::{IpdPipeline, PipelineConfig, PipelineOutput, ShardedPipeline};
use ipd::IpdParams;
use ipd_lpm::Addr;
use ipd_netflow::FlowRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BATCHES_BEFORE_PANIC: usize = 20;
const FLOWS_PER_BATCH: usize = 250;

fn config() -> PipelineConfig {
    PipelineConfig {
        params: IpdParams {
            ncidr_factor_v4: 1e-2,
            ..IpdParams::default()
        },
        channel_capacity: 4,
        snapshot_every_ticks: 5,
        ..Default::default()
    }
}

fn batch(rng: &mut StdRng, minute: u64) -> Vec<FlowRecord> {
    (0..FLOWS_PER_BATCH)
        .map(|_| {
            let ts = minute * 60 + rng.random_range(0u64..60);
            FlowRecord::synthetic(ts, Addr::v4(rng.random::<u32>()), 1, 1)
        })
        .collect()
}

/// Run `f` on its own thread and fail the test if it takes longer than
/// `secs` — the deadlock detector. `recv_timeout` fires while the worker
/// is still blocked, which is exactly the wedged-pipeline case.
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("pipeline deadlocked: finish() did not return after the reader panicked")
}

fn count_ticks(outputs: &[PipelineOutput]) -> usize {
    outputs
        .iter()
        .filter(|o| matches!(o, PipelineOutput::Tick(_)))
        .count()
}

/// The common scenario: a drainer consumes outputs (the normal deployment
/// shape), a reader sends `BATCHES_BEFORE_PANIC` batches and dies. Returns
/// (flows ingested, ticks seen) once the pipeline is fully drained.
fn panicking_reader_scenario(sharded: bool) -> (u64, usize) {
    with_watchdog(60, move || {
        enum Either {
            Plain(IpdPipeline),
            Sharded(ShardedPipeline),
        }
        let mut cfg = config();
        if sharded {
            cfg.shards = 8;
        }
        let (p, input, output) = if sharded {
            let p = ShardedPipeline::spawn(cfg).unwrap();
            let (i, o) = (p.input(), p.output().clone());
            (Either::Sharded(p), i, o)
        } else {
            let p = IpdPipeline::spawn(cfg).unwrap();
            let (i, o) = (p.input(), p.output().clone());
            (Either::Plain(p), i, o)
        };

        // Downstream consumer: keeps the bounded output channel moving,
        // collects until the engine thread hangs up.
        let drainer = std::thread::spawn(move || output.iter().collect::<Vec<_>>());

        let reader = std::thread::Builder::new()
            .name("panicking-reader".into())
            .spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xDEAD);
                for minute in 0..BATCHES_BEFORE_PANIC as u64 {
                    input.send(batch(&mut rng, minute)).unwrap();
                }
                panic!("simulated reader crash (datagram parse bug)");
                // `input` dropped here by unwinding — the only shutdown
                // signal the engine thread gets.
            })
            .unwrap();
        assert!(reader.join().is_err(), "reader was supposed to panic");

        // The engine side must drain everything sent before the crash and
        // come back. (The pipeline's own Sender clone is dropped inside
        // finish(); until then the input channel is still open.)
        let (flows, leftover) = match p {
            Either::Plain(p) => {
                let (engine, leftover) = p.finish();
                (engine.stats().flows_ingested, leftover)
            }
            Either::Sharded(p) => {
                let (engine, leftover) = p.finish();
                (engine.stats().flows_ingested, leftover)
            }
        };
        // finish() and the drainer race for the same stream; together they
        // hold every output.
        let drained = drainer.join().expect("drainer never panics");
        (flows, count_ticks(&drained) + count_ticks(&leftover))
    })
}

#[test]
fn plain_pipeline_survives_reader_panic() {
    let (flows, ticks) = panicking_reader_scenario(false);
    assert_eq!(
        flows,
        (BATCHES_BEFORE_PANIC * FLOWS_PER_BATCH) as u64,
        "flows sent before the crash must all be ingested"
    );
    // 20 minutes of data-time crossed 19 bucket boundaries plus the final
    // flush tick.
    assert!(
        ticks >= BATCHES_BEFORE_PANIC - 1,
        "final ticks missing: {ticks}"
    );
}

#[test]
fn sharded_pipeline_survives_reader_panic() {
    let (flows, ticks) = panicking_reader_scenario(true);
    assert_eq!(flows, (BATCHES_BEFORE_PANIC * FLOWS_PER_BATCH) as u64);
    assert!(
        ticks >= BATCHES_BEFORE_PANIC - 1,
        "final ticks missing: {ticks}"
    );
}

#[test]
fn finish_unwedges_engine_blocked_on_full_output_channel() {
    // Worst case: nobody drains outputs. One batch spanning 30 minutes of
    // data-time makes the engine emit ~29 ticks into a capacity-4 output
    // channel, so by the time finish() is called the engine thread is
    // parked mid-`send`. finish() must drain before joining or this
    // deadlocks (it did: the drain used to happen after the join).
    const MINUTES: u64 = 30;
    let (flows, ticks) = with_watchdog(60, || {
        let p = IpdPipeline::spawn(config()).unwrap();
        let input = p.input();
        let reader = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xBEEF);
            let mut big: Vec<FlowRecord> = (0..MINUTES).flat_map(|m| batch(&mut rng, m)).collect();
            big.sort_by_key(|f| f.ts);
            // Capacity is 4, this is one send: can never block.
            input.send(big).unwrap();
            panic!("simulated reader crash");
        });
        assert!(reader.join().is_err());
        // Give the engine time to actually fill the output channel and
        // park on `send` — makes the pre-fix deadlock deterministic
        // instead of racy.
        std::thread::sleep(Duration::from_millis(300));
        let (engine, leftover) = p.finish();
        (engine.stats().flows_ingested, count_ticks(&leftover))
    });
    assert_eq!(flows, MINUTES * FLOWS_PER_BATCH as u64);
    // All ~29 boundary ticks plus the final flush must surface in the
    // leftover outputs finish() hands back.
    assert!(
        ticks >= MINUTES as usize - 1,
        "final ticks missing: {ticks}"
    );
}
