//! Property-based tests for the IPD engine's structural invariants.

use ipd::{IpdEngine, IpdParams};
use ipd_lpm::{Addr, Af};
use ipd_topology::IngressPoint;
use proptest::prelude::*;

/// One synthetic sample: (seconds offset, source bits, ingress index).
type Sample = (u16, u32, u8);

fn arb_samples() -> impl Strategy<Value = Vec<Sample>> {
    proptest::collection::vec((0u16..600, any::<u32>(), 0u8..6), 1..400)
}

fn small_params() -> IpdParams {
    IpdParams {
        ncidr_factor_v4: 0.001,
        ncidr_factor_v6: 1e-9,
        ..IpdParams::default()
    }
}

/// Run the engine over the samples, ticking at bucket boundaries, and return
/// it after a final tick.
fn run(params: &IpdParams, samples: &[Sample]) -> IpdEngine {
    let mut sorted = samples.to_vec();
    sorted.sort_by_key(|s| s.0);
    let mut engine = IpdEngine::new(params.clone()).unwrap();
    let mut bucket = 0u64;
    for &(off, bits, ing) in &sorted {
        let ts = off as u64;
        let b = ts / params.t_secs;
        while bucket < b {
            bucket += 1;
            engine.tick(bucket * params.t_secs);
        }
        engine.ingest_parts(
            ts,
            Addr::v4(bits),
            IngressPoint::new(ing as u32 + 1, 1),
            1.0,
        );
    }
    engine.tick((bucket + 1) * params.t_secs);
    engine
}

proptest! {
    /// Snapshot ranges are disjoint (they are trie leaves), sorted, within
    /// cidr_max, and counters/confidences are sane.
    #[test]
    fn snapshot_invariants(samples in arb_samples()) {
        let params = small_params();
        let engine = run(&params, &samples);
        let snap = engine.snapshot(9999);
        let v4: Vec<_> = snap.records.iter().filter(|r| r.range.af() == Af::V4).collect();
        for w in v4.windows(2) {
            // Sorted and non-overlapping.
            prop_assert!(w[0].range < w[1].range);
            prop_assert!(!w[0].range.contains_prefix(w[1].range));
            prop_assert!(!w[1].range.contains_prefix(w[0].range));
        }
        for r in &snap.records {
            prop_assert!(r.range.len() <= params.cidr_max(r.range.af()));
            prop_assert!(r.sample_count >= 0.0);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&r.confidence));
            prop_assert!(r.n_cidr > 0.0);
            if r.classified {
                prop_assert!(r.ingress.is_some());
                prop_assert!(r.since.is_some());
            }
        }
    }

    /// Classified ranges that survive a quiet tick satisfy the validity
    /// invariant: dominant share ≥ q (Algorithm 1 line 16).
    #[test]
    fn validity_invariant_after_tick(samples in arb_samples()) {
        let params = small_params();
        let mut engine = run(&params, &samples);
        engine.tick(700);
        let snap = engine.snapshot(700);
        for r in snap.classified() {
            prop_assert!(
                r.confidence >= params.q - 1e-9,
                "classified {} with confidence {}",
                r.range,
                r.confidence
            );
        }
    }

    /// The engine is deterministic: the same input stream yields identical
    /// snapshots.
    #[test]
    fn deterministic(samples in arb_samples()) {
        let params = small_params();
        let a = run(&params, &samples).snapshot(9999);
        let b = run(&params, &samples).snapshot(9999);
        prop_assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(b.records.iter()) {
            prop_assert_eq!(x, y);
        }
    }

    /// The exported LPM table contains exactly the classified ranges, and
    /// looking up any address inside a classified range returns it.
    #[test]
    fn lpm_export_roundtrip(samples in arb_samples()) {
        let params = small_params();
        let engine = run(&params, &samples);
        let snap = engine.snapshot(9999);
        let lpm = snap.lpm_table();
        prop_assert_eq!(lpm.len(), snap.classified().count());
        for r in snap.classified() {
            let (got_range, got_ing) = lpm.lookup(r.range.addr()).unwrap();
            // Leaves are disjoint so the LPM hit is exactly this range.
            prop_assert_eq!(got_range, r.range);
            prop_assert_eq!(Some(got_ing), r.ingress.as_ref());
        }
    }

    /// Flow accounting: stats count every ingested sample, and the monitored
    /// per-IP state never exceeds the number of distinct masked sources.
    #[test]
    fn accounting(samples in arb_samples()) {
        let params = small_params();
        let engine = run(&params, &samples);
        prop_assert_eq!(engine.stats().flows_ingested, samples.len() as u64);
        let distinct: std::collections::HashSet<u128> = samples
            .iter()
            .map(|&(_, bits, _)| Addr::v4(bits).masked(params.cidr_max_v4).bits())
            .collect();
        prop_assert!(engine.monitored_ip_count() <= distinct.len());
    }
}
