//! Differential-equivalence harness for the sharded engine.
//!
//! Every seeded flow stream is pushed through each execution strategy the
//! crate offers —
//!
//! 1. `run_offline` over the single-threaded [`IpdEngine`] (the reference),
//! 2. the threaded [`IpdPipeline`] (single engine thread, channel-fed),
//! 3. `run_offline` over the [`ShardedEngine`] at K ∈ {1, 2, 8}
//!    (per-flow ingest path),
//! 4. the [`ShardedPipeline`] at K ∈ {1, 2, 8} (parallel batch ingest path)
//!
//! — and every run must produce the identical classified prefix→ingress
//! set, identical cumulative [`EngineStats`], identical canonicalized tick
//! reports, and bit-for-bit identical snapshot digests. This is the
//! determinism contract of the `shard` module, checked end to end.

use ipd::output::Snapshot;
use ipd::pipeline::{
    run_offline, run_offline_instrumented, IpdPipeline, NoopHook, PipelineConfig, PipelineOutput,
    ShardedPipeline, TickEngine,
};
use ipd::{EngineStats, IpdEngine, IpdParams, LogicalIngress, ShardedEngine, TickReport};
use ipd_lpm::{Addr, Prefix};
use ipd_netflow::FlowRecord;
use ipd_telemetry::Telemetry;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const SNAPSHOT_EVERY: u32 = 2;

fn test_params() -> IpdParams {
    IpdParams {
        ncidr_factor_v4: 0.002,
        ncidr_factor_v6: 1e-9,
        cidr_max_v4: 20,
        ..IpdParams::default()
    }
}

/// A tick report reduced to a canonical, ordering-independent form. The
/// unsharded sweep reports ranges in DFS order while the sharded engine
/// reports them prefix-sorted; as multisets they must agree exactly.
#[derive(Debug, Clone, PartialEq)]
struct CanonReport {
    now: u64,
    newly_classified: Vec<(Prefix, LogicalIngress)>,
    dropped: Vec<Prefix>,
    invalidated: Vec<Prefix>,
    lb_suspects: Vec<Prefix>,
    counters: (usize, usize, usize, usize, usize),
}

fn canon(mut r: TickReport) -> CanonReport {
    r.newly_classified.sort_unstable_by_key(|a| a.0);
    r.dropped.sort_unstable();
    r.invalidated.sort_unstable();
    r.lb_suspects.sort_unstable();
    CanonReport {
        now: r.now,
        newly_classified: r.newly_classified,
        dropped: r.dropped,
        invalidated: r.invalidated,
        lb_suspects: r.lb_suspects,
        counters: (r.splits, r.joins, r.collapses, r.bundles, r.expired_ips),
    }
}

/// Everything one run produces, in comparable form.
#[derive(Debug, Clone, PartialEq)]
struct RunResult {
    stats: EngineStats,
    ticks: Vec<CanonReport>,
    snapshot_digests: Vec<u64>,
    classified: Vec<(Prefix, LogicalIngress)>,
}

fn summarize(
    stats: EngineStats,
    outputs: Vec<PipelineOutput>,
    last_snapshot: Snapshot,
) -> RunResult {
    let mut ticks = Vec::new();
    let mut snapshot_digests = Vec::new();
    for o in outputs {
        match o {
            PipelineOutput::Tick(t) => ticks.push(canon(t)),
            PipelineOutput::Snapshot(s) => snapshot_digests.push(s.digest()),
        }
    }
    let mut classified: Vec<(Prefix, LogicalIngress)> = last_snapshot
        .classified()
        .filter_map(|r| r.ingress.clone().map(|i| (r.range, i)))
        .collect();
    classified.sort_unstable_by_key(|a| a.0);
    RunResult {
        stats,
        ticks,
        snapshot_digests,
        classified,
    }
}

fn run_with_offline<E: TickEngine>(engine: &mut E, flows: &[FlowRecord]) -> Vec<PipelineOutput> {
    let mut outputs = Vec::new();
    run_offline(engine, flows.iter().cloned(), SNAPSHOT_EVERY, |o| {
        outputs.push(o)
    });
    outputs
}

fn reference_run(flows: &[FlowRecord]) -> RunResult {
    let mut engine = IpdEngine::new(test_params()).unwrap();
    let outputs = run_with_offline(&mut engine, flows);
    let snap = engine.snapshot(u64::MAX);
    summarize(engine.stats().clone(), outputs, snap)
}

fn sharded_offline_run(flows: &[FlowRecord], shards: usize) -> RunResult {
    let mut engine = ShardedEngine::new(test_params(), shards).unwrap();
    let outputs = run_with_offline(&mut engine, flows);
    let snap = engine.snapshot(u64::MAX);
    summarize(engine.stats().clone(), outputs, snap)
}

fn threaded_run(flows: &[FlowRecord], batch: usize) -> RunResult {
    let pipeline = IpdPipeline::spawn(PipelineConfig {
        params: test_params(),
        channel_capacity: 8,
        snapshot_every_ticks: SNAPSHOT_EVERY,
        shards: 1,
        ..Default::default()
    })
    .unwrap();
    let tx = pipeline.input();
    let rx = pipeline.output().clone();
    let drain = std::thread::spawn(move || rx.iter().collect::<Vec<_>>());
    for chunk in flows.chunks(batch.max(1)) {
        tx.send(chunk.to_vec()).unwrap();
    }
    drop(tx);
    let (engine, leftover) = pipeline.finish();
    let mut outputs = drain.join().unwrap();
    outputs.extend(leftover);
    let snap = engine.snapshot(u64::MAX);
    summarize(engine.stats().clone(), outputs, snap)
}

fn sharded_pipeline_run(flows: &[FlowRecord], shards: usize, batch: usize) -> RunResult {
    let pipeline = ShardedPipeline::spawn(PipelineConfig {
        params: test_params(),
        channel_capacity: 8,
        snapshot_every_ticks: SNAPSHOT_EVERY,
        shards,
        ..Default::default()
    })
    .unwrap();
    let tx = pipeline.input();
    let rx = pipeline.output().clone();
    let drain = std::thread::spawn(move || rx.iter().collect::<Vec<_>>());
    for chunk in flows.chunks(batch.max(1)) {
        tx.send(chunk.to_vec()).unwrap();
    }
    drop(tx);
    let (engine, leftover) = pipeline.finish();
    let mut outputs = drain.join().unwrap();
    outputs.extend(leftover);
    let snap = engine.snapshot(u64::MAX);
    summarize(engine.stats().clone(), outputs, snap)
}

/// Assert full equivalence of all execution strategies on one stream.
fn assert_all_equivalent(flows: &[FlowRecord], batch: usize) -> RunResult {
    let reference = reference_run(flows);
    let threaded = threaded_run(flows, batch);
    assert_eq!(threaded, reference, "threaded IpdPipeline diverged");
    for k in [1usize, 2, 8] {
        let offline = sharded_offline_run(flows, k);
        assert_eq!(
            offline, reference,
            "ShardedEngine (offline driver) K={k} diverged"
        );
        let piped = sharded_pipeline_run(flows, k, batch);
        assert_eq!(piped, reference, "ShardedPipeline K={k} diverged");
    }
    reference
}

/// One synthetic sample: (seconds offset, source bits, ingress index, v6?).
type Sample = (u16, u32, u8, bool);

fn flows_from_samples(samples: &[Sample]) -> Vec<FlowRecord> {
    samples
        .iter()
        .map(|&(off, bits, ing, v6)| {
            let src = if v6 {
                Addr::v6((0x2001_0db8u128 << 96) | (u128::from(bits) << 24))
            } else {
                Addr::v4(bits)
            };
            // Spread over routers and interfaces so bundles are possible.
            FlowRecord::synthetic(
                u64::from(off),
                src,
                u32::from(ing / 2) + 1,
                u16::from(ing % 2) + 1,
            )
        })
        .collect()
}

proptest! {
    /// Seeded random streams — unsorted timestamps included, so late data
    /// and bucket-gap decay paths are exercised — produce identical results
    /// through every execution strategy.
    #[test]
    fn random_streams_are_equivalent(
        samples in proptest::collection::vec((0u16..480, any::<u32>(), 0u8..6, any::<bool>()), 1..300),
        batch in 1usize..128,
    ) {
        let flows = flows_from_samples(&samples);
        assert_all_equivalent(&flows, batch);
    }

    /// Streams concentrated on few /20s force splits down to cidr_max and
    /// router-level bundles; equivalence must survive the cascades.
    #[test]
    fn concentrated_streams_are_equivalent(
        samples in proptest::collection::vec(
            (0u16..300, 0u32..1 << 14, 0u8..4, any::<bool>()), 1..300),
        batch in 1usize..64,
    ) {
        // Map the narrow source space onto two distant /20-sized pools.
        let flows: Vec<FlowRecord> = samples
            .iter()
            .map(|&(off, bits, ing, high)| {
                let base = if high { 0xC000_0000u32 } else { 0x0A00_0000 };
                let mut f = flows_from_samples(&[(off, base | (bits & 0xFFF), ing, false)])
                    .pop()
                    .unwrap();
                f.input_if = u16::from(ing % 3) + 1; // same-router interfaces → bundles
                f.router = u32::from(ing / 3) + 1;
                f
            })
            .collect();
        assert_all_equivalent(&flows, batch);
    }
}

/// The telemetry-inertness proof: a live metrics registry must not change a
/// single engine bit. The same seeded stream runs through every execution
/// strategy with telemetry attached — plain offline, sharded offline at
/// K ∈ {1, 8}, the threaded pipeline, and the sharded pipeline — and each
/// instrumented run must equal the uninstrumented reference exactly (stats,
/// canonical tick reports, snapshot digests, classified set). On top of
/// that, two identical instrumented runs must yield identical
/// *deterministic* metric snapshots: the counters themselves are pure
/// functions of the input stream.
#[test]
fn telemetry_is_inert() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7e1e_2024);
    let mut flows = Vec::new();
    for minute in 0..12u64 {
        for _ in 0..400 {
            let low: u32 = rng.random_range(0u32..1 << 20);
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v4(0x0A00_0000 + low),
                1 + (low % 3),
                1 + (low % 2) as u16,
            ));
        }
    }
    flows.sort_by_key(|f| f.ts);
    let reference = reference_run(&flows);

    let instrumented_offline = |shards: Option<usize>| -> (RunResult, Telemetry) {
        let telemetry = Telemetry::new();
        let mut outputs = Vec::new();
        let (stats, snap) = match shards {
            None => {
                let mut engine = IpdEngine::new(test_params()).unwrap();
                run_offline_instrumented(
                    &mut engine,
                    flows.iter().cloned(),
                    SNAPSHOT_EVERY,
                    None,
                    &mut NoopHook,
                    &telemetry,
                    |o| outputs.push(o),
                );
                (engine.stats().clone(), engine.snapshot(u64::MAX))
            }
            Some(k) => {
                let mut engine = ShardedEngine::new(test_params(), k).unwrap();
                engine.attach_telemetry(&telemetry);
                run_offline_instrumented(
                    &mut engine,
                    flows.iter().cloned(),
                    SNAPSHOT_EVERY,
                    None,
                    &mut NoopHook,
                    &telemetry,
                    |o| outputs.push(o),
                );
                (engine.stats().clone(), engine.snapshot(u64::MAX))
            }
        };
        (summarize(stats, outputs, snap), telemetry)
    };

    // Plain and sharded offline, telemetry on: engine output unchanged.
    let (plain, plain_telemetry) = instrumented_offline(None);
    assert_eq!(plain, reference, "telemetry changed the plain engine");
    for k in [1usize, 8] {
        let (sharded, _) = instrumented_offline(Some(k));
        assert_eq!(sharded, reference, "telemetry changed ShardedEngine K={k}");
    }

    // Threaded pipelines with telemetry in the config: unchanged too.
    let spawn_instrumented = |shards: usize| -> (RunResult, Telemetry) {
        let telemetry = Telemetry::new();
        let config = PipelineConfig {
            params: test_params(),
            channel_capacity: 8,
            snapshot_every_ticks: SNAPSHOT_EVERY,
            shards,
            telemetry: telemetry.clone(),
        };
        type Finish = Box<dyn FnOnce() -> (EngineStats, Snapshot, Vec<PipelineOutput>)>;
        let (tx, rx, finish): (_, _, Finish) = if shards == 1 {
            let p = IpdPipeline::spawn(config).unwrap();
            (
                p.input(),
                p.output().clone(),
                Box::new(move || {
                    let (engine, leftover) = p.finish();
                    (engine.stats().clone(), engine.snapshot(u64::MAX), leftover)
                }),
            )
        } else {
            let p = ShardedPipeline::spawn(config).unwrap();
            (
                p.input(),
                p.output().clone(),
                Box::new(move || {
                    let (engine, leftover) = p.finish();
                    (engine.stats().clone(), engine.snapshot(u64::MAX), leftover)
                }),
            )
        };
        let drain = std::thread::spawn(move || rx.iter().collect::<Vec<_>>());
        for chunk in flows.chunks(256) {
            tx.send(chunk.to_vec()).unwrap();
        }
        drop(tx);
        let (stats, snap, leftover) = finish();
        let mut outputs = drain.join().unwrap();
        outputs.extend(leftover);
        (summarize(stats, outputs, snap), telemetry)
    };
    let (threaded, threaded_telemetry) = spawn_instrumented(1);
    assert_eq!(threaded, reference, "telemetry changed IpdPipeline");
    let (sharded_piped, _) = spawn_instrumented(8);
    assert_eq!(
        sharded_piped, reference,
        "telemetry changed ShardedPipeline"
    );

    // Deterministic metrics: two identical instrumented runs agree sample
    // for sample once timing-class metrics are filtered out.
    let (_, plain_telemetry2) = instrumented_offline(None);
    assert_eq!(
        plain_telemetry.snapshot().deterministic(),
        plain_telemetry2.snapshot().deterministic(),
        "deterministic metrics differ between identical runs"
    );
    // And the offline driver and the threaded pipeline agree on the core
    // flow/tick counters (batching detail aside).
    let offline_snap = plain_telemetry.snapshot();
    let threaded_snap = threaded_telemetry.snapshot();
    for name in [
        "ipd_pipeline_flows_total",
        "ipd_engine_ticks_total",
        "ipd_engine_splits_total",
        "ipd_engine_classifications_total",
    ] {
        assert_eq!(
            offline_snap.counter(name),
            threaded_snap.counter(name),
            "{name} differs between offline and threaded runs"
        );
    }
    assert_eq!(
        offline_snap.counter("ipd_pipeline_flows_total"),
        Some(reference.stats.flows_ingested),
        "flow counter must equal the engine's own count"
    );

    // The observability surfaces were live during those bit-identical runs:
    // watermarks advanced and the flight recorder captured events. Their
    // inertness is exactly what the output equality above proved.
    let marks = plain_telemetry.watermarks();
    for name in ["ipd_pipeline_ingest_watermark", "ipd_engine_tick_watermark"] {
        let (_, w) = marks
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} not registered"));
        assert!(w.updates > 0, "{name} never recorded");
        assert!(w.flow_ts > 0, "{name} never advanced");
    }
    assert!(
        plain_telemetry.flight().recorded() > 0,
        "instrumented run recorded no flight events"
    );
    // None of them may enter the deterministic subset (watermark-derived
    // samples and lag gauges are all timing-class): the golden pins must
    // stay insensitive to wall-clock freshness.
    assert!(
        offline_snap
            .deterministic()
            .samples
            .iter()
            .all(|s| !s.name.contains("watermark")
                && !s.name.contains("_age_seconds")
                && !s.name.contains("_lag_seconds")),
        "watermark-derived samples leaked into the deterministic subset"
    );
}

/// The DFZ-scale equivalence proof (ISSUE: differential scale test): a
/// route-churned stream from the 100k-prefix streaming substrate — next-hop
/// flaps and withdraw/re-announce cycles included — must produce bit-identical
/// snapshot digests, stats, and classified sets through the plain engine and
/// `ShardedEngine` at K ∈ {1, 8}.
#[test]
fn dfz_churned_stream_plain_vs_sharded_is_equivalent() {
    use ipd_traffic::{DfzConfig, DfzWorld};

    let cfg = DfzConfig {
        flows_per_minute: 60_000,
        ..DfzConfig::tier_100k(11)
    };
    let world = DfzWorld::new(cfg);
    let minutes = 5;
    // Churn must actually be active inside the evaluated window, or the
    // "equivalence under churn" claim is vacuous.
    let churned = world
        .churn_events(cfg.epoch, cfg.epoch + minutes * 60)
        .count();
    assert!(churned > 0, "no churn events in the test window");

    let flows: Vec<FlowRecord> = world.flows(minutes).map(|lf| lf.flow).collect();
    assert!(flows.len() as u64 > minutes * 50_000, "stream too thin");

    let rate = cfg.flows_per_minute as f64;
    let params = IpdParams {
        ncidr_factor_v4: 64.0 / 32.0e6 * rate,
        ncidr_factor_v6: (rate * 1.5e-11).max(1e-9),
        ..IpdParams::default()
    };
    let run = |shards: Option<usize>| -> RunResult {
        let mut outputs = Vec::new();
        let (stats, snap) = match shards {
            None => {
                let mut engine = IpdEngine::new(params.clone()).unwrap();
                run_offline(&mut engine, flows.iter().cloned(), SNAPSHOT_EVERY, |o| {
                    outputs.push(o)
                });
                (engine.stats().clone(), engine.snapshot(u64::MAX))
            }
            Some(k) => {
                let mut engine = ShardedEngine::new(params.clone(), k).unwrap();
                run_offline(&mut engine, flows.iter().cloned(), SNAPSHOT_EVERY, |o| {
                    outputs.push(o)
                });
                (engine.stats().clone(), engine.snapshot(u64::MAX))
            }
        };
        summarize(stats, outputs, snap)
    };

    let reference = run(None);
    assert!(
        !reference.snapshot_digests.is_empty(),
        "no snapshots published"
    );
    assert!(reference.stats.classifications > 0, "nothing classified");
    for k in [1usize, 8] {
        let sharded = run(Some(k));
        assert_eq!(
            sharded.snapshot_digests, reference.snapshot_digests,
            "ShardedEngine K={k} digest diverged on churned DFZ stream"
        );
        assert_eq!(sharded, reference, "ShardedEngine K={k} diverged");
    }
}

/// A heavier, fully deterministic stream: ~40k flows over 30 minutes from a
/// seeded generator, shaped so the run exercises splits to `cidr_max`,
/// joins, decay-driven drops, invalidations and dual-stack state. The
/// equivalence assertion is identical to the property tests above.
#[test]
fn seeded_heavy_stream_is_equivalent() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1bd_2024);
    let mut flows = Vec::new();
    for minute in 0..30u64 {
        // Two stable pools owned by distinct routers...
        for _ in 0..600 {
            let low: u32 = rng.random_range(0u32..1 << 22);
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v4(0x0A00_0000 + low),
                1,
                1,
            ));
            let high: u32 = rng.random_range(0u32..1 << 22);
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v4(0xC000_0000 + high),
                2,
                1,
            ));
        }
        // ...a contested pool that flips ownership halfway (invalidations),
        for _ in 0..200 {
            let bits: u32 = rng.random_range(0u32..1 << 16);
            let router = if minute < 15 { 3 } else { 4 };
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v4(0x5000_0000 + bits),
                router,
                2,
            ));
        }
        // ...a pool that goes silent (decay + drop + collapse),
        if minute < 8 {
            for _ in 0..200 {
                let bits: u32 = rng.random_range(0u32..1 << 16);
                flows.push(FlowRecord::synthetic(
                    minute * 60 + rng.random_range(0..60u64),
                    Addr::v4(0x8000_0000 + bits),
                    5,
                    1,
                ));
            }
        }
        // ...and some v6 spread across two interfaces of one router (bundle).
        for _ in 0..100 {
            let bits: u32 = rng.random_range(0u32..1 << 20);
            let ifidx = rng.random_range(1u16..3);
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v6((0x2001_0db8u128 << 96) | (u128::from(bits) << 30)),
                6,
                ifidx,
            ));
        }
    }
    flows.sort_by_key(|f| f.ts);

    let reference = assert_all_equivalent(&flows, 512);
    // The stream must actually have exercised the interesting machinery —
    // otherwise the equivalence proof is vacuous.
    assert!(reference.stats.flows_ingested > 40_000);
    assert!(reference.stats.splits > 0, "no splits exercised");
    assert!(reference.stats.classifications > 0, "nothing classified");
    assert!(
        reference.stats.drops > 0,
        "no drops/invalidations exercised"
    );
    assert!(!reference.classified.is_empty());
    assert!(reference
        .classified
        .iter()
        .any(|(p, _)| p.af() == ipd_lpm::Af::V6));
}
