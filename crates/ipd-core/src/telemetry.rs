//! Metric handles for the pipeline and engine, registered once per run and
//! shared by the drivers in [`crate::pipeline`].
//!
//! Telemetry is strictly observational: every handle here writes atomics on
//! the side and nothing reads them back into the engine, so a run with a
//! live registry produces bit-for-bit the same snapshots as a run with a
//! disabled one (the differential suite proves this). Metrics marked
//! deterministic below are pure functions of the input flow stream; timing
//! metrics (wall-clock durations, channel depth) vary run to run and are
//! excluded from `MetricsSnapshot::deterministic()`.

use ipd_telemetry::{
    Class, Counter, EventKind, FlightRecorder, Gauge, Histogram, Telemetry, Watermark, SIZE_BUCKETS,
};

use crate::engine::TickReport;

/// All pipeline/engine metric handles. `Default` yields all-disabled
/// handles (the no-telemetry configuration); [`CoreTelemetry::register`]
/// binds them to a live registry. Cloning shares the underlying cells.
#[derive(Debug, Clone, Default)]
pub struct CoreTelemetry {
    /// `ipd_pipeline_flows_total` — flows ingested (stage 1).
    pub flows: Counter,
    /// `ipd_pipeline_batches_total` — flow batches received by the engine
    /// thread.
    pub batches: Counter,
    /// `ipd_pipeline_batch_size` — flows per received batch.
    pub batch_size: Histogram,
    /// `ipd_pipeline_channel_depth` — batches queued toward the engine
    /// thread, sampled per batch (timing class: scheduling-dependent).
    pub channel_depth: Gauge,
    /// `ipd_engine_ticks_total` — stage-2 cycles run.
    pub ticks: Counter,
    /// `ipd_engine_tick_nanoseconds` — stage-2 sweep wall time.
    pub tick_duration: Histogram,
    /// `ipd_engine_splits_total` — range splits.
    pub splits: Counter,
    /// `ipd_engine_joins_total` — sibling joins.
    pub joins: Counter,
    /// `ipd_engine_classifications_total` — ranges (newly) classified.
    pub classifications: Counter,
    /// `ipd_engine_drops_total` — classified ranges dropped (decay +
    /// invalidation).
    pub drops: Counter,
    /// `ipd_engine_classifications_per_tick` — classifications per stage-2
    /// cycle.
    pub classifications_per_tick: Histogram,
    /// `ipd_engine_ranges` — live leaf ranges, set after each tick.
    pub ranges: Gauge,
    /// `ipd_engine_classified_ranges` — classified ranges, set after each
    /// tick.
    pub classified_ranges: Gauge,
    /// `ipd_engine_monitored_ips` — per-IP state entries held for
    /// unclassified ranges, set after each tick.
    pub monitored_ips: Gauge,
    /// `ipd_engine_state_bytes` — estimated engine heap footprint, set
    /// after each tick.
    pub state_bytes: Gauge,
    /// `ipd_pipeline_ingest_watermark` — stage-1 high-water mark of the
    /// flow clock (the freshest flow timestamp ingested so far).
    pub ingest_watermark: Watermark,
    /// `ipd_engine_tick_watermark` — flow time of the latest completed
    /// stage-2 cycle; the gap to the ingest watermark is the stage-2 lag.
    pub tick_watermark: Watermark,
    /// The registry's flight recorder; tick boundaries land here.
    pub flight: FlightRecorder,
}

impl CoreTelemetry {
    /// Register every pipeline/engine metric in `telemetry`. Idempotent:
    /// registering twice (e.g. driver plus engine-thread loop) shares the
    /// same cells.
    pub fn register(telemetry: &Telemetry) -> Self {
        CoreTelemetry {
            flows: telemetry.counter(
                "ipd_pipeline_flows_total",
                "Flow records ingested by stage 1",
            ),
            batches: telemetry.counter(
                "ipd_pipeline_batches_total",
                "Flow batches received by the engine thread",
            ),
            batch_size: telemetry.histogram(
                "ipd_pipeline_batch_size",
                "Flows per received batch",
                SIZE_BUCKETS,
                Class::Deterministic,
            ),
            channel_depth: telemetry.gauge(
                "ipd_pipeline_channel_depth",
                "Batches queued toward the engine thread, sampled per batch",
                Class::Timing,
            ),
            ticks: telemetry.counter("ipd_engine_ticks_total", "Stage-2 cycles run"),
            tick_duration: telemetry.timing(
                "ipd_engine_tick_nanoseconds",
                "Stage-2 sweep wall time in nanoseconds",
            ),
            splits: telemetry.counter("ipd_engine_splits_total", "Range splits"),
            joins: telemetry.counter(
                "ipd_engine_joins_total",
                "Joins of equally-classified sibling ranges",
            ),
            classifications: telemetry.counter(
                "ipd_engine_classifications_total",
                "Ranges that received a (new) classification",
            ),
            drops: telemetry.counter(
                "ipd_engine_drops_total",
                "Classified ranges dropped by decay or invalidation",
            ),
            classifications_per_tick: telemetry.histogram(
                "ipd_engine_classifications_per_tick",
                "Classifications per stage-2 cycle",
                SIZE_BUCKETS,
                Class::Deterministic,
            ),
            ranges: telemetry.gauge(
                "ipd_engine_ranges",
                "Live leaf ranges across both families, set after each tick",
                Class::Deterministic,
            ),
            classified_ranges: telemetry.gauge(
                "ipd_engine_classified_ranges",
                "Classified ranges, set after each tick",
                Class::Deterministic,
            ),
            monitored_ips: telemetry.gauge(
                "ipd_engine_monitored_ips",
                "Per-IP state entries held for unclassified ranges, set after each tick",
                Class::Deterministic,
            ),
            state_bytes: telemetry.gauge(
                "ipd_engine_state_bytes",
                "Estimated engine heap footprint in bytes, set after each tick",
                Class::Deterministic,
            ),
            ingest_watermark: telemetry.watermark(
                "ipd_pipeline_ingest_watermark",
                "Stage-1 high-water mark of the flow clock",
            ),
            tick_watermark: telemetry.watermark(
                "ipd_engine_tick_watermark",
                "Flow time of the latest completed stage-2 cycle",
            ),
            flight: telemetry.flight(),
        }
    }

    /// Record one completed stage-2 cycle ending at flow time `now`:
    /// counters from the report, the post-tick state gauges, the tick
    /// watermark, and a tick-boundary flight event.
    pub(crate) fn record_tick(
        &self,
        report: &TickReport,
        engine: &crate::engine::IpdEngine,
        now: u64,
    ) {
        self.ticks.inc();
        self.splits.add(report.splits as u64);
        self.joins.add(report.joins as u64);
        self.classifications
            .add(report.newly_classified.len() as u64);
        self.drops
            .add((report.dropped.len() + report.invalidated.len()) as u64);
        self.classifications_per_tick
            .observe(report.newly_classified.len() as u64);
        self.ranges.set(engine.range_count() as i64);
        self.classified_ranges.set(engine.classified_count() as i64);
        self.monitored_ips.set(engine.monitored_ip_count() as i64);
        self.state_bytes.set(engine.state_bytes_estimate() as i64);
        self.tick_watermark.record(now);
        self.flight.record(
            EventKind::ShardTick,
            now,
            report.newly_classified.len() as u64,
            engine.range_count() as u64,
            engine.classified_count() as u64,
        );
    }
}

/// Per-shard ingest counters: `ipd_shard_flows_total{shard="k"}`, one
/// cache-line-padded cell per shard so concurrent shard threads never
/// contend. Registered by [`crate::ShardedEngine::attach_telemetry`].
#[derive(Debug, Clone, Default)]
pub struct ShardCounters {
    counters: Vec<Counter>,
}

impl ShardCounters {
    /// Register counters for `shards` shards.
    pub fn register(telemetry: &Telemetry, shards: usize) -> Self {
        ShardCounters {
            counters: (0..shards)
                .map(|k| {
                    telemetry.counter_labeled(
                        "ipd_shard_flows_total",
                        "Flows routed to each shard slot (top shard-key address bits)",
                        &[("shard", &k.to_string())],
                    )
                })
                .collect(),
        }
    }

    /// Add `n` flows to shard `slot` (out-of-range slots are ignored; the
    /// slot space is fixed at registration).
    pub fn add(&self, slot: usize, n: u64) {
        if let Some(c) = self.counters.get(slot) {
            c.add(n);
        }
    }

    /// Number of registered slots (0 when disabled).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no slots are registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IpdEngine;
    use crate::params::IpdParams;
    use ipd_lpm::Addr;
    use ipd_topology::IngressPoint;

    #[test]
    fn record_tick_fills_counters_and_gauges() {
        let telemetry = Telemetry::new();
        let m = CoreTelemetry::register(&telemetry);
        let params = IpdParams {
            ncidr_factor_v4: 0.01,
            ..IpdParams::default()
        };
        let mut engine = IpdEngine::new(params).unwrap();
        for i in 0..2000u32 {
            engine.ingest_parts(30, Addr::v4(i * 4096), IngressPoint::new(1, 1), 1.0);
        }
        let report = engine.tick(60);
        m.record_tick(&report, &engine, 60);

        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("ipd_engine_ticks_total"), Some(1));
        assert_eq!(
            snap.counter("ipd_engine_classifications_total"),
            Some(report.newly_classified.len() as u64)
        );
        assert_eq!(
            snap.gauge("ipd_engine_ranges"),
            Some(engine.range_count() as i64)
        );
        assert!(snap.gauge("ipd_engine_state_bytes").unwrap() > 0);
        // The tick watermark carries the bucket-close flow time and the
        // tick boundary lands in the flight recorder.
        assert_eq!(snap.gauge("ipd_engine_tick_watermark_flow_ts"), Some(60));
        let events = telemetry.flight().dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::ShardTick as u8);
        assert_eq!(events[0].ts, 60);
        assert_eq!(events[0].b, engine.range_count() as u64);
    }

    #[test]
    fn disabled_core_telemetry_is_default() {
        let m = CoreTelemetry::default();
        m.flows.add(5);
        assert_eq!(m.flows.get(), 0);
        let s = ShardCounters::default();
        s.add(0, 3);
        assert!(s.is_empty());
    }

    #[test]
    fn registration_is_shared_between_instances() {
        let telemetry = Telemetry::new();
        let a = CoreTelemetry::register(&telemetry);
        let b = CoreTelemetry::register(&telemetry);
        a.flows.add(2);
        b.flows.add(3);
        assert_eq!(a.flows.get(), 5);
    }
}
