//! Plain-data export and rebuild of the complete engine state.
//!
//! This is the sans-I/O substrate for checkpointing: [`EngineStateDump`] is
//! an owned, serialization-friendly mirror of everything an [`IpdEngine`]
//! holds — params, the ingress intern table, cumulative stats, and both
//! family tries in preorder. The `ipd-state` crate turns a dump into bytes
//! and back; this module guarantees the round trip is lossless and
//! *canonical*: every map is emitted sorted by key, so the same engine state
//! always produces the same dump regardless of `HashMap` iteration order.
//!
//! The restore contract mirrors the sharding contract (`shard` module docs):
//! in [`crate::CountMode::Flows`] a restored engine is bit-for-bit
//! equivalent to the original — continuing an interrupted run after
//! [`IpdEngine::restore_state`] yields `Snapshot::digest()`s identical to an
//! uninterrupted run. (In `Bytes` mode, rebuilt hash maps may re-associate
//! f64 additions differently, exactly like re-sharding does.)

use ipd_lpm::Af;
use ipd_topology::IngressPoint;

use crate::engine::EngineStats;
use crate::ingress::LogicalIngress;
use crate::params::{IpdParams, ParamError};

/// Everything an [`IpdEngine`](crate::IpdEngine) holds, as plain owned data.
///
/// Produced by [`IpdEngine::dump_state`](crate::IpdEngine::dump_state);
/// consumed by [`IpdEngine::restore_state`](crate::IpdEngine::restore_state).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStateDump {
    /// Engine parameters (restore re-validates them).
    pub params: IpdParams,
    /// The intern table, in id order: index `i` is the point of id `i`.
    pub ingresses: Vec<IngressPoint>,
    /// Cumulative counters.
    pub stats: EngineStats,
    /// IPv4 trie in preorder (internal node, then left, then right subtree).
    pub v4: Vec<TrieNodeDump>,
    /// IPv6 trie in preorder.
    pub v6: Vec<TrieNodeDump>,
}

/// One trie node in a preorder dump.
#[derive(Debug, Clone, PartialEq)]
pub enum TrieNodeDump {
    /// An internal node; the next entries are its left then right subtrees.
    Internal,
    /// A monitoring leaf: per-masked-IP state, sorted by IP.
    Monitoring(Vec<IpEntryDump>),
    /// A classified leaf.
    Classified(ClassifiedDump),
}

/// Per-IP monitoring state of one masked source address.
#[derive(Debug, Clone, PartialEq)]
pub struct IpEntryDump {
    /// The masked source address (family width, right-aligned).
    pub ip: u128,
    /// Last sample timestamp.
    pub last_ts: u64,
    /// Per-ingress weights, sorted by ingress id.
    pub counts: Vec<(u32, f64)>,
}

/// State of a classified leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedDump {
    /// The assigned logical ingress.
    pub ingress: LogicalIngress,
    /// Member ids (already sorted by the engine).
    pub member_ids: Vec<u32>,
    /// Per-ingress weights, sorted by ingress id.
    pub counts: Vec<(u32, f64)>,
    /// Total weight.
    pub total: f64,
    /// Last sample timestamp.
    pub last_ts: u64,
    /// When the range was classified.
    pub since: u64,
}

/// Why a dump cannot be turned back into an engine.
#[derive(Debug)]
pub enum RestoreError {
    /// The dumped params fail [`IpdParams::validate`].
    Params(ParamError),
    /// The intern table contains the same point twice.
    DuplicateIngress(IngressPoint),
    /// A counter or member references an id outside the intern table.
    UnknownIngressId(u32),
    /// A preorder walk ran past the end of the node list.
    TruncatedTrie(Af),
    /// A preorder walk finished with nodes left over.
    TrailingNodes(Af, usize),
    /// The trie nests deeper than the address family allows.
    TooDeep(Af),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Params(e) => write!(f, "invalid params: {e}"),
            RestoreError::DuplicateIngress(p) => {
                write!(f, "duplicate ingress point R{}.{}", p.router, p.ifindex)
            }
            RestoreError::UnknownIngressId(id) => write!(f, "unknown ingress id {id}"),
            RestoreError::TruncatedTrie(af) => write!(f, "{af:?} trie preorder is truncated"),
            RestoreError::TrailingNodes(af, n) => {
                write!(f, "{af:?} trie preorder has {n} trailing nodes")
            }
            RestoreError::TooDeep(af) => write!(f, "{af:?} trie deeper than the address width"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<ParamError> for RestoreError {
    fn from(e: ParamError) -> Self {
        RestoreError::Params(e)
    }
}
