//! IPD output records — the shape of the paper's raw output (Table 3) —
//! and the LPM lookup-table export used for validation (§5.1).

use ipd_lpm::{LpmTrie, Prefix};
use ipd_topology::IngressPoint;

use crate::ingress::{IngressRegistry, LogicalIngress};
use crate::params::IpdParams;
use crate::range::RangeState;

/// One output row, mirroring Table 3 of the paper:
/// `timestamp, ip(version), s_ingress, s_ipcount, n_cidr, range, ingress(all shares)`.
#[derive(Debug, Clone, PartialEq)]
pub struct IpdRangeRecord {
    /// Snapshot timestamp.
    pub ts: u64,
    /// The IPD range.
    pub range: Prefix,
    /// Whether the range currently has an assigned ingress.
    pub classified: bool,
    /// The assigned ingress (classified), or the current best candidate
    /// (monitored, if any traffic was seen).
    pub ingress: Option<LogicalIngress>,
    /// `s_ingress`: share of the dominant/assigned ingress, 0..=1.
    pub confidence: f64,
    /// `s_ipcount`: total samples accumulated in the range.
    pub sample_count: f64,
    /// `n_cidr`: the minimum-sample threshold for this range size.
    pub n_cidr: f64,
    /// When the range was classified (classified ranges only).
    pub since: Option<u64>,
    /// All ingress points with their accumulated weights, descending —
    /// Table 3: "in parentheses, *all* ingress points and their traffic
    /// share are shown".
    pub shares: Vec<(IngressPoint, f64)>,
}

impl IpdRangeRecord {
    pub(crate) fn from_state(
        ts: u64,
        range: Prefix,
        state: &RangeState,
        params: &IpdParams,
        registry: &IngressRegistry,
    ) -> Self {
        let n_cidr = params.n_cidr(range.af(), range.len());
        match state {
            RangeState::Monitoring(m) => {
                let (total, per) = m.totals();
                let mut shares: Vec<(IngressPoint, f64)> = per
                    .iter()
                    .map(|(&id, &w)| (registry.resolve(id), w))
                    .collect();
                shares.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("finite weights")
                        .then(a.0.cmp(&b.0))
                });
                let (ingress, confidence) = match shares.first() {
                    Some(&(p, w)) if total > 0.0 => (Some(LogicalIngress::Link(p)), w / total),
                    _ => (None, 0.0),
                };
                IpdRangeRecord {
                    ts,
                    range,
                    classified: false,
                    ingress,
                    confidence,
                    sample_count: total,
                    n_cidr,
                    since: None,
                    shares,
                }
            }
            RangeState::Classified(c) => {
                let mut shares: Vec<(IngressPoint, f64)> = c
                    .counts
                    .iter()
                    .map(|(&id, &w)| (registry.resolve(id), w))
                    .collect();
                shares.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("finite weights")
                        .then(a.0.cmp(&b.0))
                });
                IpdRangeRecord {
                    ts,
                    range,
                    classified: true,
                    ingress: Some(c.ingress.clone()),
                    confidence: c.member_share(),
                    sample_count: c.total,
                    n_cidr,
                    since: Some(c.since),
                    shares,
                }
            }
        }
    }

    /// Render one Table-3-style line. `fmt_ingress` maps an ingress point to
    /// its display form; pass `Topology::format_ingress` for the paper's
    /// `C2-R2.4` labels, or [`default_ingress_format`] without a topology.
    pub fn table3_line<F: Fn(IngressPoint) -> String>(&self, fmt_ingress: &F) -> String {
        let af = self.range.af();
        let ingress = match &self.ingress {
            None => "-".to_string(),
            Some(LogicalIngress::Link(p)) => fmt_ingress(*p),
            Some(LogicalIngress::Bundle(b)) => {
                let parts: Vec<String> = b
                    .ifindexes
                    .iter()
                    .map(|&i| fmt_ingress(IngressPoint::new(b.router, i)))
                    .collect();
                format!("bundle[{}]", parts.join("+"))
            }
        };
        let details: Vec<String> = self
            .shares
            .iter()
            .map(|(p, w)| format!("{}={}", fmt_ingress(*p), *w as u64))
            .collect();
        format!(
            "{}\t{}\t{:.3}\t{}\t{}\t{}\t{}({})",
            self.ts,
            af,
            self.confidence,
            self.sample_count as u64,
            self.n_cidr.ceil() as u64,
            self.range,
            ingress,
            details.join(",")
        )
    }
}

/// Topology-free ingress formatting: `R30.1`.
pub fn default_ingress_format(p: IngressPoint) -> String {
    format!("R{}.{}", p.router, p.ifindex)
}

/// A full engine snapshot at one timestamp.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Snapshot timestamp.
    pub ts: u64,
    /// All live ranges, in address order.
    pub records: Vec<IpdRangeRecord>,
}

impl Snapshot {
    /// Only the classified ranges.
    pub fn classified(&self) -> impl Iterator<Item = &IpdRangeRecord> {
        self.records.iter().filter(|r| r.classified)
    }

    /// Build the Longest-Prefix-Match lookup table the paper validates with
    /// (§5.1: "we create a LPM lookup table from the IPD output that maps
    /// each IPD prefix to its corresponding ingress router and interface").
    pub fn lpm_table(&self) -> LpmTrie<LogicalIngress> {
        self.classified()
            .filter_map(|r| r.ingress.clone().map(|i| (r.range, i)))
            .collect()
    }

    /// Order-sensitive FNV-1a 64-bit digest over a canonical encoding of the
    /// whole snapshot. Two snapshots digest equal exactly when the timestamp
    /// and every record — including the *bit patterns* of the f64 fields —
    /// are equal, so the golden-determinism and sharded-equivalence tests
    /// can pin a run to a single number.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        let point = |p: &IngressPoint, eat: &mut dyn FnMut(&[u8])| {
            eat(&p.router.to_le_bytes());
            eat(&u32::from(p.ifindex).to_le_bytes());
        };
        eat(&self.ts.to_le_bytes());
        eat(&(self.records.len() as u64).to_le_bytes());
        for r in &self.records {
            eat(&r.ts.to_le_bytes());
            eat(&[r.range.af().width(), r.range.len(), u8::from(r.classified)]);
            eat(&r.range.addr().bits().to_le_bytes());
            match &r.ingress {
                None => eat(&[0]),
                Some(LogicalIngress::Link(p)) => {
                    eat(&[1]);
                    point(p, &mut eat);
                }
                Some(LogicalIngress::Bundle(b)) => {
                    eat(&[2]);
                    eat(&b.router.to_le_bytes());
                    eat(&(b.ifindexes.len() as u64).to_le_bytes());
                    for &i in &b.ifindexes {
                        eat(&u32::from(i).to_le_bytes());
                    }
                }
            }
            eat(&r.confidence.to_bits().to_le_bytes());
            eat(&r.sample_count.to_bits().to_le_bytes());
            eat(&r.n_cidr.to_bits().to_le_bytes());
            eat(&[u8::from(r.since.is_some())]);
            eat(&r.since.unwrap_or(0).to_le_bytes());
            eat(&(r.shares.len() as u64).to_le_bytes());
            for (p, w) in &r.shares {
                point(p, &mut eat);
                eat(&w.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// Render the whole snapshot as Table-3 lines (classified and monitored).
    pub fn to_table3<F: Fn(IngressPoint) -> String>(&self, fmt_ingress: &F) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.table3_line(fmt_ingress));
            out.push('\n');
        }
        out
    }
}

/// Differences between two snapshots — what an operator dashboard renders
/// (§5.8: IPD "can easily reveal" route changes "e.g., via dashboards").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDiff {
    /// Ranges classified in `after` but not in `before`.
    pub appeared: Vec<(Prefix, LogicalIngress)>,
    /// Ranges classified in `before` but gone (or declassified) in `after`.
    pub disappeared: Vec<(Prefix, LogicalIngress)>,
    /// Ranges classified in both but with a different ingress:
    /// `(range, before, after)`.
    pub moved: Vec<(Prefix, LogicalIngress, LogicalIngress)>,
    /// Ranges classified identically in both.
    pub unchanged: usize,
}

impl SnapshotDiff {
    /// Compare the classified populations of two snapshots by exact range.
    pub fn between(before: &Snapshot, after: &Snapshot) -> SnapshotDiff {
        let mut old: std::collections::HashMap<Prefix, &LogicalIngress> = before
            .classified()
            .filter_map(|r| r.ingress.as_ref().map(|i| (r.range, i)))
            .collect();
        let mut diff = SnapshotDiff::default();
        for r in after.classified() {
            let Some(new_ing) = r.ingress.as_ref() else {
                continue;
            };
            match old.remove(&r.range) {
                None => diff.appeared.push((r.range, new_ing.clone())),
                Some(old_ing) if old_ing == new_ing => diff.unchanged += 1,
                Some(old_ing) => {
                    diff.moved.push((r.range, old_ing.clone(), new_ing.clone()));
                }
            }
        }
        diff.disappeared = old.into_iter().map(|(p, i)| (p, i.clone())).collect();
        diff.appeared.sort_by_key(|(p, _)| *p);
        diff.disappeared.sort_by_key(|(p, _)| *p);
        diff.moved.sort_by_key(|(p, _, _)| *p);
        diff
    }

    /// Total number of changes.
    pub fn change_count(&self) -> usize {
        self.appeared.len() + self.disappeared.len() + self.moved.len()
    }

    /// True when the snapshots' classified populations are identical.
    pub fn is_empty(&self) -> bool {
        self.change_count() == 0
    }

    /// Flatten into one per-prefix change list, sorted by prefix — the row
    /// shape the longitudinal store and the `DiffRange` wire op speak.
    pub fn changes(&self) -> Vec<PrefixChange> {
        let mut out: Vec<PrefixChange> = Vec::with_capacity(self.change_count());
        out.extend(self.appeared.iter().map(|(p, i)| PrefixChange {
            prefix: *p,
            before: None,
            after: Some(i.clone()),
        }));
        out.extend(self.disappeared.iter().map(|(p, i)| PrefixChange {
            prefix: *p,
            before: Some(i.clone()),
            after: None,
        }));
        out.extend(self.moved.iter().map(|(p, b, a)| PrefixChange {
            prefix: *p,
            before: Some(b.clone()),
            after: Some(a.clone()),
        }));
        out.sort_by_key(|c| c.prefix);
        out
    }
}

/// The store-level difference between two published snapshots: exactly the
/// rows the serving layer must upsert or remove to turn `before`'s lookup
/// table into `after`'s.
///
/// This is deliberately *not* [`SnapshotDiff`]: that is an operator-facing
/// view keyed on ingress moves only. The serving contract pins every
/// published answer bit-identical to `snapshot.lpm_table()` *including the
/// confidence each answer carries*, so a row whose confidence changed while
/// its ingress stayed put must still be republished — the comparison here is
/// on the ingress and the confidence's bit pattern.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreDelta {
    /// Rows to insert or overwrite, sorted by prefix.
    pub upserts: Vec<(Prefix, LogicalIngress, f64)>,
    /// Prefixes to delete, sorted.
    pub removes: Vec<Prefix>,
}

impl StoreDelta {
    /// Rows to apply so a store serving `before`'s table serves `after`'s.
    pub fn between(before: &Snapshot, after: &Snapshot) -> StoreDelta {
        let mut old: std::collections::HashMap<Prefix, (&LogicalIngress, u64)> = before
            .classified()
            .filter_map(|r| {
                r.ingress
                    .as_ref()
                    .map(|i| (r.range, (i, r.confidence.to_bits())))
            })
            .collect();
        let mut delta = StoreDelta::default();
        for r in after.classified() {
            let Some(ing) = r.ingress.as_ref() else {
                continue;
            };
            match old.remove(&r.range) {
                Some((oi, oc)) if oi == ing && oc == r.confidence.to_bits() => {}
                _ => delta.upserts.push((r.range, ing.clone(), r.confidence)),
            }
        }
        delta.removes = old.into_keys().collect();
        delta.upserts.sort_by_key(|(p, _, _)| *p);
        delta.removes.sort();
        delta
    }

    /// The delta from an empty table — a full (re)publication of `after`.
    pub fn full(after: &Snapshot) -> StoreDelta {
        Self::between(&Snapshot::default(), after)
    }

    /// Number of rows touched.
    pub fn change_count(&self) -> usize {
        self.upserts.len() + self.removes.len()
    }

    /// True when the served tables are already identical.
    pub fn is_empty(&self) -> bool {
        self.change_count() == 0
    }
}

/// One range's classification change between two points in time: appeared
/// (`before` is `None`), disappeared (`after` is `None`), or moved to a
/// different ingress (both present). Both `None` never occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixChange {
    /// The range that changed.
    pub prefix: Prefix,
    /// Its ingress before the change (`None` = not classified).
    pub before: Option<LogicalIngress>,
    /// Its ingress after the change (`None` = no longer classified).
    pub after: Option<LogicalIngress>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IpdEngine;
    use crate::params::IpdParams;
    use ipd_lpm::Addr;

    fn engine_with_split_space() -> IpdEngine {
        let params = IpdParams {
            ncidr_factor_v4: 0.01,
            ..IpdParams::default()
        };
        let mut e = IpdEngine::new(params).unwrap();
        // n_cidr: /0 needs ~656 samples, /1 needs ~464 — 600 per half works.
        for i in 0..600u32 {
            e.ingest_parts(30, Addr::v4(i * 1024), IngressPoint::new(1, 1), 1.0);
            e.ingest_parts(
                30,
                Addr::v4(0x8000_0000 + i * 1024),
                IngressPoint::new(2, 4),
                1.0,
            );
        }
        e.tick(60); // split
        e.tick(61); // classify halves
        e
    }

    #[test]
    fn snapshot_lpm_table_matches_classifications() {
        let e = engine_with_split_space();
        let snap = e.snapshot(61);
        let lpm = snap.lpm_table();
        assert_eq!(lpm.len(), 2);
        let (p, ing) = lpm.lookup(Addr::v4(0x0100_0000)).unwrap();
        assert_eq!(p.to_string(), "0.0.0.0/1");
        assert!(ing.is_link(IngressPoint::new(1, 1)));
        let (_, ing) = lpm.lookup(Addr::v4(0x9000_0000)).unwrap();
        assert!(ing.is_link(IngressPoint::new(2, 4)));
    }

    #[test]
    fn table3_line_shape() {
        let e = engine_with_split_space();
        let snap = e.snapshot(61);
        let text = snap.to_table3(&default_ingress_format);
        let first = text.lines().next().unwrap();
        // ts, af, confidence, count, ncidr, range, ingress(details)
        let fields: Vec<&str> = first.split('\t').collect();
        assert_eq!(fields.len(), 7, "line: {first}");
        assert_eq!(fields[0], "61");
        assert_eq!(fields[1], "4");
        assert!(fields[2].parse::<f64>().unwrap() >= 0.95);
        assert!(fields[6].starts_with("R1.1(R1.1="), "field: {}", fields[6]);
    }

    #[test]
    fn monitored_record_reports_best_candidate() {
        let params = IpdParams::default(); // huge thresholds: nothing classifies
        let mut e = IpdEngine::new(params).unwrap();
        e.ingest_parts(30, Addr::v4(1), IngressPoint::new(1, 1), 3.0);
        e.ingest_parts(30, Addr::v4(2), IngressPoint::new(2, 1), 1.0);
        let snap = e.snapshot(30);
        assert_eq!(snap.records.len(), 1);
        let r = &snap.records[0];
        assert!(!r.classified);
        assert_eq!(r.sample_count, 4.0);
        assert!((r.confidence - 0.75).abs() < 1e-9);
        assert!(r.ingress.as_ref().unwrap().is_link(IngressPoint::new(1, 1)));
        assert!(r.since.is_none());
        // Empty engine → empty snapshot.
        let empty = IpdEngine::new(IpdParams::default()).unwrap().snapshot(0);
        assert!(empty.records.is_empty());
    }

    #[test]
    fn snapshot_diff_tracks_changes() {
        let e = engine_with_split_space();
        let before = e.snapshot(61);
        // Identical snapshots: no changes.
        let same = SnapshotDiff::between(&before, &before);
        assert!(same.is_empty());
        assert_eq!(same.unchanged, 2);

        // Shift the high half to a new ingress and let IPD react: the first
        // tick invalidates (dominant share diluted), fresh traffic then
        // re-learns the new ingress.
        let mut e = engine_with_split_space();
        for i in 0..3000u32 {
            e.ingest_parts(
                120,
                Addr::v4(0x8000_0000 + i * 1024),
                IngressPoint::new(9, 9),
                1.0,
            );
        }
        e.tick(180); // invalidation (resets per-IP state)
        for i in 0..3000u32 {
            e.ingest_parts(
                185,
                Addr::v4(0x8000_0000 + i * 1024),
                IngressPoint::new(9, 9),
                1.0,
            );
        }
        e.tick(240); // re-classification from fresh state
        let after = e.snapshot(240);
        let diff = SnapshotDiff::between(&before, &after);
        assert!(!diff.is_empty());
        let total_refs = diff.unchanged + diff.moved.len() + diff.disappeared.len();
        assert_eq!(total_refs, before.classified().count());
        // The low half is untouched.
        assert!(diff.unchanged >= 1);
        // The high half either moved to R9.9 or went through a
        // disappear/appear cycle at finer granularity.
        let high_moved = diff
            .moved
            .iter()
            .any(|(_, _, new)| new.is_link(IngressPoint::new(9, 9)))
            || diff
                .appeared
                .iter()
                .any(|(_, ing)| ing.is_link(IngressPoint::new(9, 9)));
        assert!(high_moved, "diff: {diff:?}");
    }

    #[test]
    fn shares_are_descending() {
        let e = engine_with_split_space();
        let snap = e.snapshot(61);
        for r in &snap.records {
            for w in r.shares.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
