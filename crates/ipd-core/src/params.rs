//! IPD parameters (paper Table 1) and validation.

use std::fmt;

use ipd_lpm::Af;
use serde::{Deserialize, Serialize};

/// What the per-range counters count (paper §3.1, design choice 2,
/// "Optional simplification: Preferring flow counts over byte counts").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountMode {
    /// Count flow samples (the deployment default: avoids 32-bit byte
    /// counter overflows on high-capacity links; flow and byte counts
    /// correlate at ~0.82 in the paper's traffic).
    Flows,
    /// Count bytes ("users of IPD with other requirements might opt not to
    /// use this simplification").
    Bytes,
}

/// All IPD knobs. Defaults are the production values of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpdParams {
    /// Maximum IPv4 prefix length (`cidr_max`). Default /28 — "the
    /// collaborating CDN maps its geolocation-distributed data centers to
    /// /28 subnets".
    pub cidr_max_v4: u8,
    /// Maximum IPv6 prefix length. Default /48.
    pub cidr_max_v6: u8,
    /// IPv4 minimal sample factor: `n_cidr = factor * sqrt(2^(32 - len))`.
    /// Default 64. Scale proportionally to your flow rate: the paper's 64 is
    /// calibrated to ~32 M flows/minute.
    pub ncidr_factor_v4: f64,
    /// IPv6 minimal sample factor. Default 24.
    ///
    /// Interpretation note: the paper states the `n_cidr` formula for IPv4
    /// only. A literal `2^(128 - len)` is astronomically large, so we use a
    /// reference width of 64 bits (routable IPv6 space is effectively
    /// /64-grained): `n_cidr = factor * sqrt(2^(min(64, 128-len) ... ))` —
    /// concretely `factor * sqrt(2^(64 - len))` clamped at `len <= 64`.
    pub ncidr_factor_v6: f64,
    /// Quality threshold `q`: minimum traffic share of the dominant ingress.
    /// Default 0.95 — "5% of the traffic for that prefix may ingress over
    /// different links".
    pub q: f64,
    /// Time bucket length `t` in seconds (stage-2 cadence). Default 60.
    pub t_secs: u64,
    /// Expiration time `e` in seconds: per-IP state (unclassified ranges)
    /// older than this is removed; classified ranges silent longer than this
    /// start decaying. Default 120.
    pub e_secs: u64,
    /// What the counters count. Default flows.
    pub count_mode: CountMode,
    /// Detect router-level interface bundles (paper §3.2 *bundles*).
    pub enable_bundles: bool,
    /// Minimum share (of a router's own total) for an interface to become a
    /// bundle member. Interfaces below this are treated as noise.
    pub bundle_member_min_share: f64,
    /// Classified ranges whose decayed total falls below this are dropped.
    pub drop_floor: f64,
    /// Report ranges that look like *router-level load balancing* (§5.8):
    /// a range stuck at `cidr_max` whose traffic splits roughly evenly over
    /// two or more routers. The paper intentionally does not *classify*
    /// these (tracking (src, dst) pairs costs quadratic state) but names
    /// detection as a worthwhile extension — so IPD here flags them in the
    /// tick report for the operator ("which can also be solved by asking
    /// interconnected networks to change their configuration").
    pub detect_router_lb: bool,
}

impl Default for IpdParams {
    fn default() -> Self {
        IpdParams {
            cidr_max_v4: 28,
            cidr_max_v6: 48,
            ncidr_factor_v4: 64.0,
            ncidr_factor_v6: 24.0,
            q: 0.95,
            t_secs: 60,
            e_secs: 120,
            count_mode: CountMode::Flows,
            enable_bundles: true,
            bundle_member_min_share: 0.05,
            drop_floor: 1.0,
            detect_router_lb: true,
        }
    }
}

/// Parameter validation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// `cidr_max` outside the family's usable range.
    CidrMaxOutOfRange { af: Af, value: u8, max: u8 },
    /// `q <= 0.5` admits ambiguous classifications (Appendix A: "if the
    /// parameter q is less than or equal to 0.5, some ingress points may be
    /// classified ambiguously").
    QOutOfRange(f64),
    /// Non-positive factor, time bucket, or expiry.
    NonPositive(&'static str),
    /// Shard count for the sharded engine is not a power of two in 1..=256.
    BadShardCount(usize),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::CidrMaxOutOfRange { af, value, max } => {
                write!(f, "cidr_max /{value} out of range for IPv{af} (1..={max})")
            }
            ParamError::QOutOfRange(q) => {
                write!(f, "q = {q} must be in (0.5, 1.0]: q <= 0.5 is ambiguous")
            }
            ParamError::NonPositive(what) => write!(f, "{what} must be positive"),
            ParamError::BadShardCount(n) => {
                write!(f, "shard count {n} must be a power of two in 1..=256")
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl IpdParams {
    /// Validate the parameter set (called by `IpdEngine::new`).
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.cidr_max_v4 == 0 || self.cidr_max_v4 > 32 {
            return Err(ParamError::CidrMaxOutOfRange {
                af: Af::V4,
                value: self.cidr_max_v4,
                max: 32,
            });
        }
        if self.cidr_max_v6 == 0 || self.cidr_max_v6 > 64 {
            return Err(ParamError::CidrMaxOutOfRange {
                af: Af::V6,
                value: self.cidr_max_v6,
                max: 64,
            });
        }
        if !(self.q > 0.5 && self.q <= 1.0) {
            return Err(ParamError::QOutOfRange(self.q));
        }
        if self.ncidr_factor_v4 <= 0.0 || self.ncidr_factor_v6 <= 0.0 {
            return Err(ParamError::NonPositive("n_cidr factor"));
        }
        if self.t_secs == 0 {
            return Err(ParamError::NonPositive("t"));
        }
        if self.e_secs == 0 {
            return Err(ParamError::NonPositive("e"));
        }
        if self.bundle_member_min_share < 0.0 || self.bundle_member_min_share > 1.0 {
            return Err(ParamError::NonPositive("bundle member share in [0,1]"));
        }
        Ok(())
    }

    /// The configured `cidr_max` for a family.
    pub fn cidr_max(&self, af: Af) -> u8 {
        match af {
            Af::V4 => self.cidr_max_v4,
            Af::V6 => self.cidr_max_v6,
        }
    }

    /// Minimum sample count `n_cidr` for a range of length `len`
    /// (Table 1: `n_cidr = n_cidr_factor * sqrt(2^(32 - s_cidr))`).
    pub fn n_cidr(&self, af: Af, len: u8) -> f64 {
        let (factor, ref_width) = match af {
            Af::V4 => (self.ncidr_factor_v4, 32u8),
            Af::V6 => (self.ncidr_factor_v6, 64u8),
        };
        let exp = ref_width.saturating_sub(len) as f64;
        factor * 2f64.powf(exp / 2.0)
    }

    /// The decay factor of Table 1: `1 - 0.9 / ((age/t) + 1)`, applied
    /// multiplicatively to the counters of classified ranges that have been
    /// silent for more than `e` seconds. `age` is seconds since last sample.
    pub fn decay_factor(&self, age_secs: u64) -> f64 {
        1.0 - 0.9 / ((age_secs as f64 / self.t_secs as f64) + 1.0)
    }

    /// Render the parameter set like Table 1 of the paper.
    pub fn table1(&self) -> String {
        format!(
            "parameter      | default      | meaning\n\
             ---------------+--------------+------------------------------------------\n\
             cidr_max       | /{}, /{}     | max. IPD prefix length (v4, v6)\n\
             n_cidr factor  | {}, {}       | minimal sample factor\n\
             q              | {}           | error margin\n\
             t              | {}           | time bucket length (s)\n\
             e              | {}           | expiration time (s)\n\
             decay          | 1-0.9/((age/t)+1) | factor to reduce outdated IPD ranges\n\
             count mode     | {:?}         | counter units",
            self.cidr_max_v4,
            self.cidr_max_v6,
            self.ncidr_factor_v4,
            self.ncidr_factor_v6,
            self.q,
            self.t_secs,
            self.e_secs,
            self.count_mode,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = IpdParams::default();
        assert_eq!(p.cidr_max_v4, 28);
        assert_eq!(p.cidr_max_v6, 48);
        assert_eq!(p.ncidr_factor_v4, 64.0);
        assert_eq!(p.ncidr_factor_v6, 24.0);
        assert_eq!(p.q, 0.95);
        assert_eq!(p.t_secs, 60);
        assert_eq!(p.e_secs, 120);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn ncidr_formula_v4() {
        let p = IpdParams::default();
        // /28: 64 * sqrt(2^4) = 256.
        assert!((p.n_cidr(Af::V4, 28) - 256.0).abs() < 1e-6);
        // /0: 64 * sqrt(2^32) = 64 * 65536.
        assert!((p.n_cidr(Af::V4, 0) - 64.0 * 65536.0).abs() < 1e-3);
        // Monotone: larger (less specific) ranges need more samples.
        assert!(p.n_cidr(Af::V4, 8) > p.n_cidr(Af::V4, 24));
    }

    #[test]
    fn ncidr_formula_v6_uses_64bit_reference() {
        let p = IpdParams::default();
        // /48: 24 * sqrt(2^16) = 24 * 256 = 6144.
        assert!((p.n_cidr(Af::V6, 48) - 6144.0).abs() < 1e-6);
        assert!((p.n_cidr(Af::V6, 64) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn decay_factor_matches_table1() {
        let p = IpdParams::default();
        // age = t: 1 - 0.9/2 = 0.55
        assert!((p.decay_factor(60) - 0.55).abs() < 1e-9);
        // age = 0: 0.1
        assert!((p.decay_factor(0) - 0.1).abs() < 1e-9);
        // age → ∞: → 1.0 (per-tick decay weakens, cumulative product still shrinks)
        assert!(p.decay_factor(1_000_000) > 0.99);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let ok = IpdParams::default();
        assert!(IpdParams {
            q: 0.5,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(IpdParams {
            q: 1.01,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(IpdParams {
            q: 0.501,
            ..ok.clone()
        }
        .validate()
        .is_ok());
        assert!(IpdParams {
            cidr_max_v4: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(IpdParams {
            cidr_max_v4: 33,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(IpdParams {
            cidr_max_v6: 65,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(IpdParams {
            ncidr_factor_v4: 0.0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(IpdParams {
            t_secs: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(IpdParams {
            e_secs: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(IpdParams {
            bundle_member_min_share: 1.5,
            ..ok
        }
        .validate()
        .is_err());
    }

    #[test]
    fn table1_rendering_mentions_all_parameters() {
        let s = IpdParams::default().table1();
        for needle in ["cidr_max", "/28", "/48", "0.95", "decay"] {
            assert!(s.contains(needle), "table1 missing {needle}: {s}");
        }
    }
}
