//! The IPD range trie: structure, ingest walk, and the stage-2 sweep.

use ipd_lpm::Prefix;

use crate::engine::TickReport;
use crate::ingress::{IngressId, IngressRegistry};
use crate::params::IpdParams;
use crate::persist::{ClassifiedDump, IpEntryDump, RestoreError, TrieNodeDump};
use crate::range::{decide, looks_load_balanced, ClassifiedState, Decision, RangeState};

/// Per-ingress weights as a sorted plain vector (canonical dump order).
fn sorted_counts(counts: &crate::range::CountMap) -> Vec<(u32, f64)> {
    let mut v: Vec<(u32, f64)> = counts.iter().map(|(id, &w)| (id.index(), w)).collect();
    v.sort_unstable_by_key(|&(id, _)| id);
    v
}

/// A node of the binary range trie. Leaves carry range state; internal nodes
/// exist only where a range has been split.
#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf(RangeState),
    Internal(Box<[Node; 2]>),
}

/// Context threaded through the stage-2 sweep.
pub(crate) struct TickCtx<'a> {
    pub now: u64,
    pub params: &'a IpdParams,
    pub registry: &'a IngressRegistry,
    pub report: &'a mut TickReport,
}

impl Node {
    /// A fresh (monitoring, empty) leaf.
    pub(crate) fn empty() -> Self {
        Node::Leaf(RangeState::empty())
    }

    /// Stage 1: walk to the leaf covering `bits` and record the sample.
    /// `bits` must already be masked to `cidr_max`. `self` must be the
    /// family root.
    pub(crate) fn ingest(&mut self, bits: u128, width: u8, ts: u64, id: IngressId, weight: f64) {
        self.ingest_from(0, bits, width, ts, id, weight);
    }

    /// [`Node::ingest`] for a node sitting `depth` levels below the family
    /// root — the sharded engine ingests directly into frontier subtrees,
    /// whose bit walk must start at the subtree's depth, not at the top.
    pub(crate) fn ingest_from(
        &mut self,
        mut depth: u8,
        bits: u128,
        width: u8,
        ts: u64,
        id: IngressId,
        weight: f64,
    ) {
        let mut node = self;
        loop {
            match node {
                Node::Internal(children) => {
                    let bit = ((bits >> (width - 1 - depth)) & 1) as usize;
                    depth += 1;
                    node = &mut children[bit];
                }
                Node::Leaf(state) => {
                    match state {
                        RangeState::Monitoring(m) => m.add(bits, ts, id, weight),
                        RangeState::Classified(c) => c.add(ts, id, weight),
                    }
                    return;
                }
            }
        }
    }

    /// Stage 2 sweep (Algorithm 1 lines 5–19) over the subtree at `prefix`.
    pub(crate) fn tick(&mut self, prefix: Prefix, ctx: &mut TickCtx<'_>) {
        match self {
            Node::Leaf(_) => self.tick_leaf(prefix, ctx),
            Node::Internal(_) => {
                let (lp, rp) = prefix
                    .children()
                    .expect("internal nodes never sit at full address depth");
                if let Node::Internal(children) = self {
                    children[0].tick(lp, ctx);
                    children[1].tick(rp, ctx);
                }
                self.try_merge(prefix, ctx);
            }
        }
    }

    fn tick_leaf(&mut self, prefix: Prefix, ctx: &mut TickCtx<'_>) {
        let Node::Leaf(state) = self else {
            unreachable!("tick_leaf on internal node")
        };
        let params = ctx.params;
        let cidr_max = params.cidr_max(prefix.af());
        match state {
            RangeState::Monitoring(m) => {
                // Line 7: remove expired per-IP state.
                ctx.report.expired_ips += m.expire(ctx.now, params.e_secs);
                let (total, per_ingress) = m.totals();
                let n_cidr = params.n_cidr(prefix.af(), prefix.len());
                // Line 8: enough samples?
                if total < n_cidr {
                    return;
                }
                let at_max = prefix.len() >= cidr_max;
                match decide(
                    &per_ingress,
                    total,
                    params.q,
                    at_max,
                    params.enable_bundles,
                    params.bundle_member_min_share,
                    ctx.registry,
                ) {
                    Decision::Classify(ingress, member_ids) => {
                        // Line 10: assign; drop per-IP state, keep counters.
                        let last_ts = state.last_ts().unwrap_or(ctx.now);
                        ctx.report.newly_classified.push((prefix, ingress.clone()));
                        if matches!(ingress, crate::ingress::LogicalIngress::Bundle(_)) {
                            ctx.report.bundles += 1;
                        }
                        *state = RangeState::Classified(ClassifiedState {
                            ingress,
                            member_ids,
                            counts: per_ingress,
                            total,
                            last_ts,
                            since: ctx.now,
                        });
                    }
                    Decision::Split => {
                        // Line 13: split into the two children, then continue
                        // the sweep into them immediately — a child created
                        // mid-cycle is just another range of this cycle's
                        // `all_ranges`, so deep structure resolves within one
                        // tick instead of one level per tick.
                        let RangeState::Monitoring(m) =
                            std::mem::replace(state, RangeState::empty())
                        else {
                            unreachable!("checked monitoring above")
                        };
                        let (l, r) = m.split(prefix.af().width(), prefix.len());
                        ctx.report.splits += 1;
                        *self = Node::Internal(Box::new([
                            Node::Leaf(RangeState::Monitoring(l)),
                            Node::Leaf(RangeState::Monitoring(r)),
                        ]));
                        self.tick(prefix, ctx);
                    }
                    Decision::Wait => {
                        // §5.8 extension: a range stuck at cidr_max with an
                        // even split across routers is likely router-level
                        // load balancing by the neighbor — flag it.
                        if at_max
                            && params.detect_router_lb
                            && looks_load_balanced(&per_ingress, total, params.q, ctx.registry)
                        {
                            ctx.report.lb_suspects.push(prefix);
                        }
                    }
                }
            }
            RangeState::Classified(c) => {
                // Line 7 for classified ranges: decay when silent beyond `e`.
                // The Table 1 factor is applied once per cycle with the age
                // of one bucket (the counters are one `t` older each cycle),
                // i.e. ×0.55 per cycle at the defaults — a geometric fade
                // that "ensures that ranges are quickly removed from
                // classification when no new traffic is received" (§3.2).
                // (Using the cumulative silent age instead would make the
                // per-cycle factor approach 1 and large counters would
                // effectively never drain.)
                if ctx.now > c.last_ts + params.e_secs {
                    let factor = params.decay_factor(params.t_secs);
                    c.decay(factor);
                    if c.total < params.drop_floor {
                        // Fully faded out: forget the classification.
                        ctx.report.dropped.push(prefix);
                        *state = RangeState::empty();
                        return;
                    }
                }
                // Lines 16–19: prevalent ingress still valid?
                if c.member_share() < params.q {
                    ctx.report.invalidated.push(prefix);
                    *state = RangeState::empty();
                }
            }
        }
    }

    /// Join/collapse pass on an internal node whose children were just
    /// ticked: merge equal classified siblings (paper: "Adjacent ranges may
    /// also be joined if they share the same ingress and meet sample count
    /// requirements") and collapse empty monitoring siblings so the trie
    /// does not grow without bound.
    fn try_merge(&mut self, prefix: Prefix, ctx: &mut TickCtx<'_>) {
        let Node::Internal(children) = self else {
            return;
        };
        match (&children[0], &children[1]) {
            (Node::Leaf(RangeState::Classified(a)), Node::Leaf(RangeState::Classified(b)))
                if a.ingress == b.ingress =>
            {
                let combined = a.total + b.total;
                if combined < ctx.params.n_cidr(prefix.af(), prefix.len()) {
                    return;
                }
                let mut merged = a.clone();
                for (&id, &w) in &b.counts {
                    *merged.counts.entry(id).or_insert(0.0) += w;
                }
                merged.total = combined;
                merged.last_ts = a.last_ts.max(b.last_ts);
                merged.since = a.since.min(b.since);
                ctx.report.joins += 1;
                ctx.report
                    .newly_classified
                    .push((prefix, merged.ingress.clone()));
                *self = Node::Leaf(RangeState::Classified(merged));
            }
            (Node::Leaf(RangeState::Monitoring(a)), Node::Leaf(RangeState::Monitoring(b)))
                if a.is_empty() && b.is_empty() =>
            {
                ctx.report.collapses += 1;
                *self = Node::empty();
            }
            _ => {}
        }
    }

    /// Collect disjoint mutable handles on the subtrees `depth` levels below
    /// this node — the sharded engine's parallel work units. A leaf sitting
    /// shallower than `depth` becomes one unit covering every shard slot
    /// underneath it, so the returned entries always partition the address
    /// space exactly, in address order.
    pub(crate) fn frontier_at_depth<'a>(
        &'a mut self,
        prefix: Prefix,
        depth: u8,
        out: &mut Vec<(Prefix, &'a mut Node)>,
    ) {
        if depth == 0 {
            out.push((prefix, self));
            return;
        }
        match self {
            Node::Leaf(_) => out.push((prefix, self)),
            Node::Internal(children) => {
                let (lp, rp) = prefix
                    .children()
                    .expect("internal nodes never sit at full address depth");
                let [l, r] = &mut **children;
                l.frontier_at_depth(lp, depth - 1, out);
                r.frontier_at_depth(rp, depth - 1, out);
            }
        }
    }

    /// Sequential top phase of a sharded tick: every frontier subtree
    /// returned by [`Node::frontier_at_depth`] has already been fully ticked,
    /// so only the join/collapse pass on internal nodes *above* the frontier
    /// remains. Runs bottom-up like [`Node::tick`] does.
    ///
    /// A frontier leaf that split during its own tick leaves internal nodes
    /// above the old frontier; re-running [`Node::try_merge`] on those is a
    /// provable no-op (the in-subtree pass either merged — the node is a
    /// leaf now — or declined on conditions that have not changed since).
    pub(crate) fn tick_top(&mut self, prefix: Prefix, depth: u8, ctx: &mut TickCtx<'_>) {
        if depth == 0 {
            return; // at the frontier: the subtree was ticked in phase A
        }
        if !matches!(self, Node::Internal(_)) {
            return; // a frontier leaf shallower than `depth`: already ticked
        }
        let (lp, rp) = prefix
            .children()
            .expect("internal nodes never sit at full address depth");
        if let Node::Internal(children) = self {
            let [l, r] = &mut **children;
            l.tick_top(lp, depth - 1, ctx);
            r.tick_top(rp, depth - 1, ctx);
        }
        self.try_merge(prefix, ctx);
    }

    /// Visit every leaf with its prefix, in address order.
    pub(crate) fn visit_leaves<'a, F>(&'a self, prefix: Prefix, f: &mut F)
    where
        F: FnMut(Prefix, &'a RangeState),
    {
        match self {
            Node::Leaf(state) => f(prefix, state),
            Node::Internal(children) => {
                let (lp, rp) = prefix.children().expect("internal node below full depth");
                children[0].visit_leaves(lp, f);
                children[1].visit_leaves(rp, f);
            }
        }
    }

    /// Append this subtree to `out` in preorder (node, left, right). Maps
    /// are emitted sorted by key so the dump is canonical — the same trie
    /// state always yields the same dump.
    pub(crate) fn dump_into(&self, out: &mut Vec<TrieNodeDump>) {
        match self {
            Node::Internal(children) => {
                out.push(TrieNodeDump::Internal);
                children[0].dump_into(out);
                children[1].dump_into(out);
            }
            Node::Leaf(RangeState::Monitoring(m)) => {
                let mut ips: Vec<IpEntryDump> = m
                    .ips
                    .iter()
                    .map(|(&ip, st)| IpEntryDump {
                        ip,
                        last_ts: st.last_ts,
                        counts: sorted_counts(&st.counts),
                    })
                    .collect();
                ips.sort_unstable_by_key(|e| e.ip);
                out.push(TrieNodeDump::Monitoring(ips));
            }
            Node::Leaf(RangeState::Classified(c)) => {
                out.push(TrieNodeDump::Classified(ClassifiedDump {
                    ingress: c.ingress.clone(),
                    member_ids: c.member_ids.iter().map(|id| id.index()).collect(),
                    counts: sorted_counts(&c.counts),
                    total: c.total,
                    last_ts: c.last_ts,
                    since: c.since,
                }));
            }
        }
    }

    /// Rebuild one subtree from a preorder dump, consuming entries from
    /// `nodes` starting at `*pos`. `n_ingresses` bounds the valid ingress
    /// ids; `af` is only used to name the family in errors, `depth_left`
    /// guards against dumps nesting deeper than the address width.
    pub(crate) fn from_dump(
        nodes: &[TrieNodeDump],
        pos: &mut usize,
        n_ingresses: u32,
        af: ipd_lpm::Af,
        depth_left: u8,
    ) -> Result<Node, RestoreError> {
        let Some(entry) = nodes.get(*pos) else {
            return Err(RestoreError::TruncatedTrie(af));
        };
        *pos += 1;
        let check_id = |id: u32| {
            if id < n_ingresses {
                Ok(IngressId(id))
            } else {
                Err(RestoreError::UnknownIngressId(id))
            }
        };
        match entry {
            TrieNodeDump::Internal => {
                if depth_left == 0 {
                    return Err(RestoreError::TooDeep(af));
                }
                let left = Node::from_dump(nodes, pos, n_ingresses, af, depth_left - 1)?;
                let right = Node::from_dump(nodes, pos, n_ingresses, af, depth_left - 1)?;
                Ok(Node::Internal(Box::new([left, right])))
            }
            TrieNodeDump::Monitoring(ips) => {
                let mut m = crate::range::MonitorState::default();
                for e in ips {
                    let mut counts = crate::range::CountMap::with_capacity(e.counts.len());
                    for &(id, w) in &e.counts {
                        counts.insert(check_id(id)?, w);
                    }
                    m.ips.insert(
                        e.ip,
                        crate::range::IpState {
                            last_ts: e.last_ts,
                            counts,
                        },
                    );
                }
                Ok(Node::Leaf(RangeState::Monitoring(m)))
            }
            TrieNodeDump::Classified(c) => {
                let mut counts = crate::range::CountMap::with_capacity(c.counts.len());
                for &(id, w) in &c.counts {
                    counts.insert(check_id(id)?, w);
                }
                let member_ids = c
                    .member_ids
                    .iter()
                    .map(|&id| check_id(id))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Node::Leaf(RangeState::Classified(ClassifiedState {
                    ingress: c.ingress.clone(),
                    member_ids,
                    counts,
                    total: c.total,
                    last_ts: c.last_ts,
                    since: c.since,
                })))
            }
        }
    }

    /// (leaves, classified leaves, monitored source IPs) in this subtree.
    pub(crate) fn counts(&self) -> (usize, usize, usize) {
        match self {
            Node::Leaf(RangeState::Monitoring(m)) => (1, 0, m.ips.len()),
            Node::Leaf(RangeState::Classified(_)) => (1, 1, 0),
            Node::Internal(children) => {
                let a = children[0].counts();
                let b = children[1].counts();
                (a.0 + b.0, a.1 + b.1, a.2 + b.2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TickReport;
    use crate::ingress::LogicalIngress;
    use ipd_lpm::{Addr, Af};
    use ipd_topology::IngressPoint;

    fn small_params() -> IpdParams {
        IpdParams {
            // n_cidr(/0) = 1*sqrt(2^32) = 65536? too big for unit tests; use
            // tiny factor so a handful of samples suffice at shallow depths.
            ncidr_factor_v4: 0.0001,
            ..IpdParams::default()
        }
    }

    fn tick_once(
        node: &mut Node,
        params: &IpdParams,
        registry: &IngressRegistry,
        now: u64,
    ) -> TickReport {
        let mut report = TickReport::new(now);
        let mut ctx = TickCtx {
            now,
            params,
            registry,
            report: &mut report,
        };
        node.tick(Prefix::root(Af::V4), &mut ctx);
        report
    }

    #[test]
    fn single_ingress_classifies_root() {
        let params = small_params();
        let mut reg = IngressRegistry::new();
        let id = reg.intern(IngressPoint::new(1, 1));
        let mut root = Node::empty();
        for i in 0..100u32 {
            root.ingest(Addr::v4(i * 1000).masked(28).bits(), 32, 10, id, 1.0);
        }
        let report = tick_once(&mut root, &params, &reg, 60);
        assert_eq!(report.newly_classified.len(), 1);
        let (p, ing) = &report.newly_classified[0];
        assert_eq!(p.to_string(), "0.0.0.0/0");
        assert!(ing.is_link(IngressPoint::new(1, 1)));
        assert_eq!(root.counts(), (1, 1, 0));
    }

    #[test]
    fn two_ingresses_split_then_classify_halves() {
        let params = small_params();
        let mut reg = IngressRegistry::new();
        let a = reg.intern(IngressPoint::new(1, 1));
        let b = reg.intern(IngressPoint::new(2, 1));
        let mut root = Node::empty();
        // Low half via a, high half via b.
        for i in 0..60u32 {
            root.ingest(Addr::v4(i * 64).masked(28).bits(), 32, 10, a, 1.0);
            root.ingest(
                Addr::v4(0x8000_0000 + i * 64).masked(28).bits(),
                32,
                10,
                b,
                1.0,
            );
        }
        // The ambiguous root splits and — because the sweep cascades into
        // fresh children — both halves classify within the same tick.
        let r1 = tick_once(&mut root, &params, &reg, 60);
        assert_eq!(r1.splits, 1, "ambiguous root splits");
        assert_eq!(r1.newly_classified.len(), 2);
        let names: Vec<String> = r1
            .newly_classified
            .iter()
            .map(|(p, _)| p.to_string())
            .collect();
        assert!(names.contains(&"0.0.0.0/1".to_string()));
        assert!(names.contains(&"128.0.0.0/1".to_string()));
    }

    #[test]
    fn classified_range_invalidated_when_share_drops() {
        let params = small_params();
        let mut reg = IngressRegistry::new();
        let a = reg.intern(IngressPoint::new(1, 1));
        let b = reg.intern(IngressPoint::new(2, 1));
        let mut root = Node::empty();
        for i in 0..100u32 {
            root.ingest(Addr::v4(i * 1000).masked(28).bits(), 32, 10, a, 1.0);
        }
        tick_once(&mut root, &params, &reg, 60);
        assert_eq!(root.counts().1, 1);
        // Now the ingress shifts: feed heavy traffic via b.
        for i in 0..300u32 {
            root.ingest(Addr::v4(i * 1000).masked(28).bits(), 32, 70, b, 1.0);
        }
        let report = tick_once(&mut root, &params, &reg, 120);
        assert_eq!(report.invalidated.len(), 1);
        assert_eq!(root.counts().1, 0, "back to monitoring");
    }

    #[test]
    fn silent_classified_range_decays_and_drops() {
        let params = small_params();
        let mut reg = IngressRegistry::new();
        let a = reg.intern(IngressPoint::new(1, 1));
        let mut root = Node::empty();
        for i in 0..50u32 {
            root.ingest(Addr::v4(i * 1000).masked(28).bits(), 32, 10, a, 1.0);
        }
        tick_once(&mut root, &params, &reg, 60);
        assert_eq!(root.counts().1, 1);
        // Silence. Decay factors: age grows each tick; counters shrink
        // multiplicatively until below drop_floor (1.0).
        let mut dropped = false;
        let mut now = 60;
        for _ in 0..200 {
            now += params.t_secs;
            let r = tick_once(&mut root, &params, &reg, now);
            if !r.dropped.is_empty() {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "silent range must eventually be dropped");
        assert_eq!(root.counts(), (1, 0, 0));
    }

    #[test]
    fn equal_classified_siblings_join() {
        let params = small_params();
        let mut reg = IngressRegistry::new();
        let a = reg.intern(IngressPoint::new(1, 1));
        let b = reg.intern(IngressPoint::new(2, 1));
        let mut root = Node::empty();
        // Phase 1: two ingresses → split at tick 1, halves classify (a, b)
        // at tick 2 while the per-IP state is still fresh.
        for i in 0..60u32 {
            root.ingest(Addr::v4(i * 64).masked(28).bits(), 32, 10, a, 1.0);
            root.ingest(
                Addr::v4(0x8000_0000 + i * 64).masked(28).bits(),
                32,
                10,
                b,
                1.0,
            );
        }
        let r = tick_once(&mut root, &params, &reg, 60);
        assert_eq!(r.newly_classified.len(), 2);
        assert_eq!(root.counts(), (2, 2, 0));
        // Phase 2: traffic moves entirely to a for both halves. The b-half
        // dilutes below q, gets invalidated, re-learns a — then the two
        // a-classified siblings join back into the root.
        let mut joined = false;
        let mut now = 61;
        for _ in 0..10 {
            for i in 0..60u32 {
                root.ingest(Addr::v4(i * 64).masked(28).bits(), 32, now, a, 1.0);
                root.ingest(
                    Addr::v4(0x8000_0000 + i * 64).masked(28).bits(),
                    32,
                    now,
                    a,
                    1.0,
                );
            }
            now += params.t_secs;
            let r = tick_once(&mut root, &params, &reg, now);
            if r.joins > 0 {
                joined = true;
                break;
            }
        }
        assert!(joined, "siblings with equal ingress must join");
        assert_eq!(root.counts(), (1, 1, 0));
        // And the joined range is the root, classified to a.
        let mut seen = Vec::new();
        root.visit_leaves(Prefix::root(Af::V4), &mut |p, s| {
            if let RangeState::Classified(c) = s {
                seen.push((p, c.ingress.clone()));
            }
        });
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, Prefix::root(Af::V4));
        assert_eq!(seen[0].1, LogicalIngress::Link(IngressPoint::new(1, 1)));
    }

    #[test]
    fn empty_monitoring_siblings_collapse() {
        let params = small_params();
        let mut reg = IngressRegistry::new();
        let a = reg.intern(IngressPoint::new(1, 1));
        let b = reg.intern(IngressPoint::new(2, 1));
        let mut root = Node::empty();
        for i in 0..60u32 {
            root.ingest(Addr::v4(i * 64).masked(28).bits(), 32, 10, a, 1.0);
            root.ingest(
                Addr::v4(0x8000_0000 + i * 64).masked(28).bits(),
                32,
                10,
                b,
                1.0,
            );
        }
        tick_once(&mut root, &params, &reg, 60); // split + classify halves
        assert_eq!(root.counts().0, 2);
        // With traffic gone, the classified halves decay away, revert to
        // empty monitoring leaves, and collapse back into a single root.
        let mut now = 60;
        let mut collapsed = false;
        for _ in 0..200 {
            now += params.t_secs;
            let r = tick_once(&mut root, &params, &reg, now);
            if r.collapses >= 1 {
                collapsed = true;
                break;
            }
        }
        assert!(collapsed, "empty siblings must collapse");
        assert_eq!(root.counts(), (1, 0, 0));
    }

    #[test]
    fn router_load_balancing_is_flagged_not_classified() {
        // Same /28, flows alternating evenly between two *routers* — the
        // §5.8 pathological case.
        let params = small_params();
        let mut reg = IngressRegistry::new();
        let a = reg.intern(IngressPoint::new(1, 1));
        let b = reg.intern(IngressPoint::new(2, 1));
        let mut root = Node::empty();
        for i in 0..200u32 {
            let addr = Addr::v4(0x0A000000 + (i % 4)).masked(28).bits();
            root.ingest(addr, 32, 10, if i % 2 == 0 { a } else { b }, 1.0);
        }
        let report = tick_once(&mut root, &params, &reg, 60);
        assert!(report.newly_classified.is_empty(), "LB must not classify");
        assert!(
            report.lb_suspects.iter().any(|p| p.len() == 28),
            "expected a /28 LB suspect, got {:?}",
            report.lb_suspects
        );
        // Detection off: silent.
        let quiet = IpdParams {
            detect_router_lb: false,
            ..small_params()
        };
        let report = tick_once(&mut root, &quiet, &reg, 61);
        assert!(report.lb_suspects.is_empty());
    }

    #[test]
    fn even_split_on_one_router_is_a_bundle_not_lb() {
        let params = small_params();
        let mut reg = IngressRegistry::new();
        let a = reg.intern(IngressPoint::new(1, 1));
        let b = reg.intern(IngressPoint::new(1, 2));
        let mut root = Node::empty();
        for i in 0..200u32 {
            let addr = Addr::v4(0x0A000000 + (i % 4)).masked(28).bits();
            root.ingest(addr, 32, 10, if i % 2 == 0 { a } else { b }, 1.0);
        }
        let report = tick_once(&mut root, &params, &reg, 60);
        assert!(
            report.lb_suspects.is_empty(),
            "same-router split bundles instead"
        );
        assert_eq!(report.bundles, 1);
    }

    #[test]
    fn splits_stop_at_cidr_max() {
        let params = IpdParams {
            cidr_max_v4: 2,
            ncidr_factor_v4: 0.0001,
            ..IpdParams::default()
        };
        let mut reg = IngressRegistry::new();
        let ids: Vec<_> = (0..16)
            .map(|i| reg.intern(IngressPoint::new(100 + i as u32, 1)))
            .collect();
        let mut root = Node::empty();
        // 16 different ingresses spread over the whole space: would split
        // forever without the cidr_max stop.
        for round in 0..5 {
            for (i, &id) in ids.iter().enumerate() {
                for j in 0..50u32 {
                    let addr = Addr::v4(((i as u32) << 28) + j * 1024);
                    root.ingest(addr.masked(2).bits(), 32, round * 60, id, 1.0);
                }
            }
            tick_once(&mut root, &params, &reg, (round + 1) * 60);
        }
        // Depth never exceeds 2 → at most 4 leaves.
        assert!(root.counts().0 <= 4, "leaves: {}", root.counts().0);
    }
}
