//! Ingress identity: interning and logical (link vs bundle) ingress points.

use std::collections::HashMap;
use std::fmt;

use ipd_topology::{Bundle, IngressPoint};
use serde::{Deserialize, Serialize};

/// Dense interned id for an [`IngressPoint`]. The engine counts per-`u32`
/// instead of per-struct, which keeps per-range counter maps small and fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IngressId(pub(crate) u32);

impl IngressId {
    /// Raw index value.
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Bidirectional intern table for ingress points.
#[derive(Debug, Default, Clone)]
pub struct IngressRegistry {
    by_point: HashMap<IngressPoint, IngressId>,
    points: Vec<IngressPoint>,
}

impl IngressRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an ingress point (idempotent).
    pub fn intern(&mut self, p: IngressPoint) -> IngressId {
        if let Some(&id) = self.by_point.get(&p) {
            return id;
        }
        let id = IngressId(self.points.len() as u32);
        self.by_point.insert(p, id);
        self.points.push(p);
        id
    }

    /// Resolve an id back to its ingress point.
    ///
    /// # Panics
    /// Panics on an id not produced by this registry — that is a logic error,
    /// not a data error.
    pub fn resolve(&self, id: IngressId) -> IngressPoint {
        self.points[id.0 as usize]
    }

    /// Get the id of a point if it was interned before.
    pub fn get(&self, p: IngressPoint) -> Option<IngressId> {
        self.by_point.get(&p).copied()
    }

    /// All interned points in id order: index `i` is the point of id `i`.
    pub fn points(&self) -> &[IngressPoint] {
        &self.points
    }

    /// Rebuild a registry from a point list in id order (the shape
    /// [`IngressRegistry::points`] returns). Fails on duplicates — an intern
    /// table maps each point to exactly one id.
    pub(crate) fn from_points(
        points: Vec<IngressPoint>,
    ) -> Result<Self, crate::persist::RestoreError> {
        let mut by_point = HashMap::with_capacity(points.len());
        for (i, &p) in points.iter().enumerate() {
            if by_point.insert(p, IngressId(i as u32)).is_some() {
                return Err(crate::persist::RestoreError::DuplicateIngress(p));
            }
        }
        Ok(IngressRegistry { by_point, points })
    }

    /// Number of distinct ingress points seen.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// A classified ingress: either a single link (router + interface) or a
/// *bundle* — several interfaces of one router acting as one logical link
/// (paper §3.2: "where multiple interfaces of the same router are logically
/// mapped as one link").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicalIngress {
    /// One (router, interface).
    Link(IngressPoint),
    /// Several interfaces on one router.
    Bundle(Bundle),
}

impl LogicalIngress {
    /// The router of this ingress.
    pub fn router(&self) -> u32 {
        match self {
            LogicalIngress::Link(p) => p.router,
            LogicalIngress::Bundle(b) => b.router,
        }
    }

    /// Does a concrete ingress point belong to this logical ingress?
    pub fn matches(&self, p: IngressPoint) -> bool {
        match self {
            LogicalIngress::Link(l) => *l == p,
            LogicalIngress::Bundle(b) => b.contains(p),
        }
    }

    /// Convenience: is this exactly the given single link?
    pub fn is_link(&self, p: IngressPoint) -> bool {
        matches!(self, LogicalIngress::Link(l) if *l == p)
    }

    /// All member interfaces (one for a link).
    pub fn members(&self) -> Vec<IngressPoint> {
        match self {
            LogicalIngress::Link(p) => vec![*p],
            LogicalIngress::Bundle(b) => b
                .ifindexes
                .iter()
                .map(|&i| IngressPoint::new(b.router, i))
                .collect(),
        }
    }
}

impl fmt::Display for LogicalIngress {
    /// Topology-free rendering: `R30.1` for a link, `R30.[1+2]` for a
    /// bundle. Use `Topology::format_ingress` for the paper's `C2-R30.1`
    /// form (needs country data this crate does not have).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicalIngress::Link(p) => write!(f, "R{}.{}", p.router, p.ifindex),
            LogicalIngress::Bundle(b) => {
                let ifs: Vec<String> = b.ifindexes.iter().map(|i| i.to_string()).collect();
                write!(f, "R{}.[{}]", b.router, ifs.join("+"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut reg = IngressRegistry::new();
        let a = reg.intern(IngressPoint::new(1, 1));
        let b = reg.intern(IngressPoint::new(1, 2));
        let a2 = reg.intern(IngressPoint::new(1, 1));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.resolve(a), IngressPoint::new(1, 1));
        assert_eq!(reg.resolve(b), IngressPoint::new(1, 2));
        assert_eq!(reg.get(IngressPoint::new(1, 2)), Some(b));
        assert_eq!(reg.get(IngressPoint::new(9, 9)), None);
    }

    #[test]
    fn logical_ingress_matching() {
        let link = LogicalIngress::Link(IngressPoint::new(3, 7));
        assert!(link.matches(IngressPoint::new(3, 7)));
        assert!(!link.matches(IngressPoint::new(3, 8)));
        assert!(link.is_link(IngressPoint::new(3, 7)));
        assert_eq!(link.router(), 3);

        let bundle = LogicalIngress::Bundle(Bundle::new(3, vec![7, 8]));
        assert!(bundle.matches(IngressPoint::new(3, 7)));
        assert!(bundle.matches(IngressPoint::new(3, 8)));
        assert!(!bundle.matches(IngressPoint::new(3, 9)));
        assert!(!bundle.matches(IngressPoint::new(4, 7)));
        assert!(!bundle.is_link(IngressPoint::new(3, 7)));
        assert_eq!(bundle.members().len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            LogicalIngress::Link(IngressPoint::new(30, 1)).to_string(),
            "R30.1"
        );
        assert_eq!(
            LogicalIngress::Bundle(Bundle::new(30, vec![2, 1])).to_string(),
            "R30.[1+2]"
        );
    }
}
