//! Per-range state and the classify/split/bundle decision.

use std::collections::HashMap;

use ipd_topology::Bundle;

use crate::ingress::{IngressId, IngressRegistry, LogicalIngress};

/// Counter map: per-ingress accumulated weight (flows or bytes).
pub(crate) type CountMap = HashMap<IngressId, f64>;

/// State of one leaf range in the IPD trie.
#[derive(Debug, Clone)]
pub(crate) enum RangeState {
    /// Not yet classified: full per-(masked) source IP state is kept so that
    /// expiry can be exact and splits can redistribute it (the paper:
    /// "maintaining state only for ranges lacking a definitive ingress").
    Monitoring(MonitorState),
    /// Classified: "all state is removed for efficiency reasons, and only
    /// the total number of samples, the counters for the respective
    /// ingresses, and the last timestamp are retained."
    Classified(ClassifiedState),
}

impl RangeState {
    pub(crate) fn empty() -> Self {
        RangeState::Monitoring(MonitorState::default())
    }

    /// Most recent sample timestamp in this range, if any.
    pub(crate) fn last_ts(&self) -> Option<u64> {
        match self {
            RangeState::Monitoring(m) => m.ips.values().map(|s| s.last_ts).max(),
            RangeState::Classified(c) => Some(c.last_ts),
        }
    }
}

/// Per masked-source-IP observation state.
#[derive(Debug, Clone)]
pub(crate) struct IpState {
    pub(crate) last_ts: u64,
    pub(crate) counts: CountMap,
}

/// Unclassified-range state: one entry per masked source IP.
#[derive(Debug, Clone, Default)]
pub(crate) struct MonitorState {
    pub(crate) ips: HashMap<u128, IpState>,
}

impl MonitorState {
    /// Record one sample.
    pub(crate) fn add(&mut self, masked_ip: u128, ts: u64, id: IngressId, weight: f64) {
        let entry = self.ips.entry(masked_ip).or_insert_with(|| IpState {
            last_ts: ts,
            counts: CountMap::new(),
        });
        entry.last_ts = entry.last_ts.max(ts);
        *entry.counts.entry(id).or_insert(0.0) += weight;
    }

    /// Remove per-IP state older than `e` seconds. Returns how many IPs were
    /// expired.
    pub(crate) fn expire(&mut self, now: u64, e_secs: u64) -> usize {
        let before = self.ips.len();
        self.ips.retain(|_, s| s.last_ts + e_secs >= now);
        before - self.ips.len()
    }

    /// Aggregate totals: overall weight and per-ingress weight.
    pub(crate) fn totals(&self) -> (f64, CountMap) {
        let mut total = 0.0;
        let mut per_ingress = CountMap::new();
        for s in self.ips.values() {
            for (&id, &w) in &s.counts {
                total += w;
                *per_ingress.entry(id).or_insert(0.0) += w;
            }
        }
        (total, per_ingress)
    }

    /// True when no per-IP state remains.
    pub(crate) fn is_empty(&self) -> bool {
        self.ips.is_empty()
    }

    /// Split the state into (bit = 0, bit = 1) halves according to address
    /// bit `depth` (0-based from the MSB of the family width `width`).
    pub(crate) fn split(self, width: u8, depth: u8) -> (MonitorState, MonitorState) {
        let mut left = MonitorState::default();
        let mut right = MonitorState::default();
        let shift = width - 1 - depth;
        for (ip, st) in self.ips {
            if (ip >> shift) & 1 == 0 {
                left.ips.insert(ip, st);
            } else {
                right.ips.insert(ip, st);
            }
        }
        (left, right)
    }
}

/// Classified-range state.
#[derive(Debug, Clone)]
pub(crate) struct ClassifiedState {
    /// The assigned logical ingress.
    pub(crate) ingress: LogicalIngress,
    /// Interned ids belonging to the ingress (one for a link, several for a
    /// bundle) — kept sorted for cheap membership tests.
    pub(crate) member_ids: Vec<IngressId>,
    /// Per-ingress counters (all ingresses, members and strays).
    pub(crate) counts: CountMap,
    /// Total weight (`s_ipcount` in Table 3).
    pub(crate) total: f64,
    /// Last sample timestamp.
    pub(crate) last_ts: u64,
    /// When this range was classified.
    pub(crate) since: u64,
}

impl ClassifiedState {
    /// Record one sample.
    pub(crate) fn add(&mut self, ts: u64, id: IngressId, weight: f64) {
        *self.counts.entry(id).or_insert(0.0) += weight;
        self.total += weight;
        self.last_ts = self.last_ts.max(ts);
    }

    /// Share of the traffic entering through member ingresses — the paper's
    /// `s_ingress` confidence for a classified range.
    pub(crate) fn member_share(&self) -> f64 {
        if self.total <= 0.0 {
            return 0.0;
        }
        let member: f64 = self
            .member_ids
            .iter()
            .filter_map(|id| self.counts.get(id))
            .sum();
        member / self.total
    }

    /// Multiply every counter by `factor` (the Table 1 decay).
    pub(crate) fn decay(&mut self, factor: f64) {
        for w in self.counts.values_mut() {
            *w *= factor;
        }
        self.total *= factor;
    }
}

/// Outcome of evaluating an unclassified range that met its `n_cidr`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Decision {
    /// One logical ingress dominates: classify.
    Classify(LogicalIngress, Vec<IngressId>),
    /// Ambiguous and below `cidr_max`: split into the two children.
    Split,
    /// Ambiguous at `cidr_max` (and bundling did not help): keep monitoring.
    Wait,
}

/// The classification decision of Algorithm 1, lines 9–15.
///
/// * A single ingress with share ≥ `q` classifies as a link at any depth.
/// * Below `cidr_max`, anything ambiguous splits.
/// * At `cidr_max` ranges cannot split, so we attempt router-level
///   *bundling*: if one router's interfaces jointly hold share ≥ `q`, the
///   interfaces carrying at least `bundle_member_min_share` of that router's
///   weight form a [`Bundle`]. Otherwise the range stays monitored.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decide(
    per_ingress: &CountMap,
    total: f64,
    q: f64,
    at_cidr_max: bool,
    enable_bundles: bool,
    bundle_member_min_share: f64,
    registry: &IngressRegistry,
) -> Decision {
    if total <= 0.0 {
        return Decision::Wait;
    }
    // Single dominant link? Ties break toward the lower id so the decision
    // is deterministic (HashMap iteration order is randomly seeded).
    if let Some((&best_id, &best_w)) = per_ingress.iter().max_by(|a, b| {
        a.1.partial_cmp(b.1)
            .expect("weights are finite")
            .then(b.0.cmp(a.0))
    }) {
        if best_w / total >= q {
            let point = registry.resolve(best_id);
            return Decision::Classify(LogicalIngress::Link(point), vec![best_id]);
        }
    }
    if !at_cidr_max {
        return Decision::Split;
    }
    if enable_bundles {
        // Group by router.
        let mut per_router: HashMap<u32, f64> = HashMap::new();
        for (&id, &w) in per_ingress {
            *per_router.entry(registry.resolve(id).router).or_insert(0.0) += w;
        }
        if let Some((&router, &router_w)) = per_router.iter().max_by(|a, b| {
            a.1.partial_cmp(b.1)
                .expect("weights are finite")
                .then(b.0.cmp(a.0))
        }) {
            if router_w / total >= q {
                let mut member_ids: Vec<IngressId> = per_ingress
                    .iter()
                    .filter(|(&id, &w)| {
                        registry.resolve(id).router == router
                            && w >= bundle_member_min_share * router_w
                    })
                    .map(|(&id, _)| id)
                    .collect();
                member_ids.sort_unstable();
                // Re-check: dropping sub-threshold members must not push the
                // member share below q.
                let member_w: f64 = member_ids.iter().filter_map(|id| per_ingress.get(id)).sum();
                if member_w / total >= q {
                    if member_ids.len() == 1 {
                        let point = registry.resolve(member_ids[0]);
                        return Decision::Classify(LogicalIngress::Link(point), member_ids);
                    }
                    let ifindexes = member_ids
                        .iter()
                        .map(|&id| registry.resolve(id).ifindex)
                        .collect();
                    return Decision::Classify(
                        LogicalIngress::Bundle(Bundle::new(router, ifindexes)),
                        member_ids,
                    );
                }
            }
        }
    }
    Decision::Wait
}

/// Does this counter distribution look like *router-level load balancing*
/// (§5.8)? True when at least two distinct routers each carry ≥ 25 % of the
/// range's traffic and together carry ≥ `q` — the signature of a neighbor
/// hashing flows across two of our routers, which IPD deliberately does not
/// classify but can cheaply flag.
pub(crate) fn looks_load_balanced(
    per_ingress: &CountMap,
    total: f64,
    q: f64,
    registry: &IngressRegistry,
) -> bool {
    if total <= 0.0 {
        return false;
    }
    let mut per_router: HashMap<u32, f64> = HashMap::new();
    for (&id, &w) in per_ingress {
        *per_router.entry(registry.resolve(id).router).or_insert(0.0) += w;
    }
    let mut majors: Vec<f64> = per_router
        .values()
        .copied()
        .filter(|w| *w / total >= 0.25)
        .collect();
    if majors.len() < 2 {
        return false;
    }
    majors.sort_by(|a, b| b.partial_cmp(a).expect("finite weights"));
    majors.iter().take(3).sum::<f64>() / total >= q
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_topology::IngressPoint;

    fn registry_with(points: &[(u32, u16)]) -> (IngressRegistry, Vec<IngressId>) {
        let mut reg = IngressRegistry::new();
        let ids = points
            .iter()
            .map(|&(r, i)| reg.intern(IngressPoint::new(r, i)))
            .collect();
        (reg, ids)
    }

    #[test]
    fn monitor_add_expire_totals() {
        let (_, ids) = registry_with(&[(1, 1), (1, 2)]);
        let mut m = MonitorState::default();
        m.add(100, 10, ids[0], 1.0);
        m.add(100, 12, ids[0], 1.0);
        m.add(200, 50, ids[1], 3.0);
        let (total, per) = m.totals();
        assert_eq!(total, 5.0);
        assert_eq!(per[&ids[0]], 2.0);
        assert_eq!(per[&ids[1]], 3.0);
        assert_eq!(m.last_ts_for_test(), 50);
        // IP 100 was last seen at 12 (12+120 < 170: expired at now=170);
        // IP 200 at 50 (50+120 = 170 >= 170: kept, then expired at 200).
        assert_eq!(m.expire(170, 120), 1);
        assert_eq!(m.ips.len(), 1);
        assert_eq!(m.expire(200, 120), 1);
        assert!(m.is_empty());
    }

    impl MonitorState {
        fn last_ts_for_test(&self) -> u64 {
            self.ips.values().map(|s| s.last_ts).max().unwrap()
        }
    }

    #[test]
    fn monitor_split_partitions_by_bit() {
        let (_, ids) = registry_with(&[(1, 1)]);
        let mut m = MonitorState::default();
        // IPv4 (width 32), splitting at depth 8 (bit index 8 from MSB).
        let low = 0x0A00_0001u128; // 10.0.0.1  -> bit 8 = 0
        let high = 0x0A80_0001u128; // 10.128.0.1 -> bit 8 = 1
        m.add(low, 1, ids[0], 1.0);
        m.add(high, 1, ids[0], 2.0);
        let (l, r) = m.split(32, 8);
        assert_eq!(l.ips.len(), 1);
        assert!(l.ips.contains_key(&low));
        assert_eq!(r.ips.len(), 1);
        assert!(r.ips.contains_key(&high));
    }

    #[test]
    fn classified_share_and_decay() {
        let (_, ids) = registry_with(&[(1, 1), (2, 1)]);
        let mut c = ClassifiedState {
            ingress: LogicalIngress::Link(IngressPoint::new(1, 1)),
            member_ids: vec![ids[0]],
            counts: CountMap::new(),
            total: 0.0,
            last_ts: 0,
            since: 0,
        };
        for _ in 0..95 {
            c.add(10, ids[0], 1.0);
        }
        for _ in 0..5 {
            c.add(11, ids[1], 1.0);
        }
        assert!((c.member_share() - 0.95).abs() < 1e-9);
        assert_eq!(c.last_ts, 11);
        c.decay(0.5);
        assert!((c.total - 50.0).abs() < 1e-9);
        assert!((c.member_share() - 0.95).abs() < 1e-9, "decay keeps shares");
    }

    #[test]
    fn decide_single_dominant_link() {
        let (reg, ids) = registry_with(&[(1, 1), (2, 1)]);
        let mut per = CountMap::new();
        per.insert(ids[0], 96.0);
        per.insert(ids[1], 4.0);
        let d = decide(&per, 100.0, 0.95, false, true, 0.05, &reg);
        assert_eq!(
            d,
            Decision::Classify(LogicalIngress::Link(IngressPoint::new(1, 1)), vec![ids[0]])
        );
    }

    #[test]
    fn decide_ambiguous_splits_below_max() {
        let (reg, ids) = registry_with(&[(1, 1), (2, 1)]);
        let mut per = CountMap::new();
        per.insert(ids[0], 60.0);
        per.insert(ids[1], 40.0);
        assert_eq!(
            decide(&per, 100.0, 0.95, false, true, 0.05, &reg),
            Decision::Split
        );
    }

    #[test]
    fn decide_bundles_at_cidr_max() {
        // Two interfaces of router 5 share the traffic evenly.
        let (reg, ids) = registry_with(&[(5, 1), (5, 2), (6, 1)]);
        let mut per = CountMap::new();
        per.insert(ids[0], 49.0);
        per.insert(ids[1], 48.0);
        per.insert(ids[2], 3.0);
        match decide(&per, 100.0, 0.95, true, true, 0.05, &reg) {
            Decision::Classify(LogicalIngress::Bundle(b), members) => {
                assert_eq!(b, Bundle::new(5, vec![1, 2]));
                assert_eq!(members.len(), 2);
            }
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn decide_no_bundle_when_disabled_or_across_routers() {
        let (reg, ids) = registry_with(&[(5, 1), (5, 2)]);
        let mut per = CountMap::new();
        per.insert(ids[0], 50.0);
        per.insert(ids[1], 50.0);
        // Disabled: waits.
        assert_eq!(
            decide(&per, 100.0, 0.95, true, false, 0.05, &reg),
            Decision::Wait
        );
        // Across two routers: no bundle possible.
        let (reg2, ids2) = registry_with(&[(5, 1), (6, 1)]);
        let mut per2 = CountMap::new();
        per2.insert(ids2[0], 50.0);
        per2.insert(ids2[1], 50.0);
        assert_eq!(
            decide(&per2, 100.0, 0.95, true, true, 0.05, &reg2),
            Decision::Wait
        );
    }

    #[test]
    fn decide_bundle_collapses_to_link_when_one_member_survives() {
        // Second interface is below the member threshold, first holds ≥ q alone.
        let (reg, ids) = registry_with(&[(5, 1), (5, 2)]);
        let mut per = CountMap::new();
        per.insert(ids[0], 96.0);
        per.insert(ids[1], 4.0);
        // Single-link rule fires first anyway at 96%.
        match decide(&per, 100.0, 0.95, true, true, 0.25, &reg) {
            Decision::Classify(LogicalIngress::Link(p), _) => {
                assert_eq!(p, IngressPoint::new(5, 1));
            }
            other => panic!("expected link, got {other:?}"),
        }
    }

    #[test]
    fn decide_empty_waits() {
        let (reg, _) = registry_with(&[]);
        assert_eq!(
            decide(&CountMap::new(), 0.0, 0.95, false, true, 0.05, &reg),
            Decision::Wait
        );
    }

    #[test]
    fn bundle_members_below_threshold_are_excluded() {
        // Router 5 dominates via three interfaces: 60/35/1 (+4 stray).
        // With member_min_share 0.05, the 1%-interface is excluded but the
        // remaining two still hold ≥ q... 95/100 exactly.
        let (reg, ids) = registry_with(&[(5, 1), (5, 2), (5, 3), (6, 1)]);
        let mut per = CountMap::new();
        per.insert(ids[0], 60.0);
        per.insert(ids[1], 35.0);
        per.insert(ids[2], 1.0);
        per.insert(ids[3], 4.0);
        match decide(&per, 100.0, 0.95, true, true, 0.05, &reg) {
            Decision::Classify(LogicalIngress::Bundle(b), members) => {
                assert_eq!(b, Bundle::new(5, vec![1, 2]));
                assert_eq!(members.len(), 2);
            }
            other => panic!("expected bundle, got {other:?}"),
        }
    }
}
