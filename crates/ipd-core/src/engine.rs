//! The deterministic IPD engine: stage-1 ingest and stage-2 ticks.

use ipd_lpm::{Addr, Af, Prefix};
use ipd_netflow::FlowRecord;
use ipd_topology::IngressPoint;

use crate::ingress::{IngressRegistry, LogicalIngress};
use crate::output::{IpdRangeRecord, Snapshot};
use crate::params::{CountMode, IpdParams, ParamError};
use crate::range::RangeState;
use crate::trie::{Node, TickCtx};

/// What happened during one stage-2 cycle.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// Timestamp the cycle ran at.
    pub now: u64,
    /// Ranges that received a (new) classification this cycle, including
    /// ranges re-created by joins.
    pub newly_classified: Vec<(Prefix, LogicalIngress)>,
    /// Classified ranges dropped because their counters decayed away.
    pub dropped: Vec<Prefix>,
    /// Classified ranges dropped because the dominant share fell below `q`.
    pub invalidated: Vec<Prefix>,
    /// Number of range splits.
    pub splits: usize,
    /// Number of joins of equally-classified siblings.
    pub joins: usize,
    /// Number of empty sibling collapses.
    pub collapses: usize,
    /// Newly created bundle classifications.
    pub bundles: usize,
    /// Per-IP state entries expired.
    pub expired_ips: usize,
    /// Ranges at `cidr_max` whose traffic splits evenly across routers —
    /// likely router-level load balancing by the neighbor (§5.8 extension;
    /// see [`crate::IpdParams::detect_router_lb`]).
    pub lb_suspects: Vec<Prefix>,
}

impl TickReport {
    pub(crate) fn new(now: u64) -> Self {
        TickReport {
            now,
            ..Default::default()
        }
    }
}

/// Cumulative engine statistics (all cheap counters; the live state sizes
/// are computed on demand).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Flow samples ingested (stage 1).
    pub flows_ingested: u64,
    /// Stage-2 cycles run.
    pub ticks: u64,
    /// Total splits over the engine lifetime.
    pub splits: u64,
    /// Total joins.
    pub joins: u64,
    /// Total classifications assigned.
    pub classifications: u64,
    /// Total drops (decay + invalidation).
    pub drops: u64,
}

/// The IPD engine. See the crate docs for the algorithm description.
///
/// Deterministic and I/O-free: `ingest` and `tick` are the only mutations,
/// and both are driven by caller-provided timestamps (use data time for
/// reproducible runs; the [`crate::pipeline`] does exactly that).
#[derive(Debug, Clone)]
pub struct IpdEngine {
    pub(crate) params: IpdParams,
    pub(crate) root_v4: Node,
    pub(crate) root_v6: Node,
    pub(crate) registry: IngressRegistry,
    pub(crate) stats: EngineStats,
}

impl IpdEngine {
    /// Build an engine after validating `params`.
    pub fn new(params: IpdParams) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(IpdEngine {
            params,
            root_v4: Node::empty(),
            root_v6: Node::empty(),
            registry: IngressRegistry::new(),
            stats: EngineStats::default(),
        })
    }

    /// The engine's parameters.
    pub fn params(&self) -> &IpdParams {
        &self.params
    }

    /// The ingress intern table (maps internal ids back to (router, if)).
    pub fn registry(&self) -> &IngressRegistry {
        &self.registry
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Stage 1 for one flow record (Algorithm 1, lines 1–4): mask the source
    /// IP to `cidr_max` and add it, with its ingress link and timestamp, to
    /// the range covering it.
    pub fn ingest(&mut self, flow: &FlowRecord) {
        let weight = match self.params.count_mode {
            CountMode::Flows => 1.0,
            CountMode::Bytes => flow.bytes as f64,
        };
        self.ingest_parts(
            flow.ts,
            flow.src,
            IngressPoint::new(flow.router, flow.input_if),
            weight,
        );
    }

    /// Stage 1 with explicit parts (useful when flows come from synthetic
    /// sources that never materialize full records).
    pub fn ingest_parts(&mut self, ts: u64, src: Addr, ingress: IngressPoint, weight: f64) {
        let id = self.registry.intern(ingress);
        let af = src.af();
        let cidr_max = self.params.cidr_max(af);
        let bits = src.masked(cidr_max).bits();
        let root = match af {
            Af::V4 => &mut self.root_v4,
            Af::V6 => &mut self.root_v6,
        };
        root.ingest(bits, af.width(), ts, id, weight);
        self.stats.flows_ingested += 1;
    }

    /// Stage 2 (Algorithm 1, lines 5–19): sweep all ranges — expire, decay,
    /// classify, split, bundle, join, drop. Call every `t` seconds of data
    /// time.
    pub fn tick(&mut self, now: u64) -> TickReport {
        let mut report = TickReport::new(now);
        {
            let mut ctx = TickCtx {
                now,
                params: &self.params,
                registry: &self.registry,
                report: &mut report,
            };
            self.root_v4.tick(Prefix::root(Af::V4), &mut ctx);
            self.root_v6.tick(Prefix::root(Af::V6), &mut ctx);
        }
        self.stats.ticks += 1;
        self.stats.splits += report.splits as u64;
        self.stats.joins += report.joins as u64;
        self.stats.classifications += report.newly_classified.len() as u64;
        self.stats.drops += (report.dropped.len() + report.invalidated.len()) as u64;
        report
    }

    /// Number of live leaf ranges (both families).
    pub fn range_count(&self) -> usize {
        self.root_v4.counts().0 + self.root_v6.counts().0
    }

    /// Number of classified ranges.
    pub fn classified_count(&self) -> usize {
        self.root_v4.counts().1 + self.root_v6.counts().1
    }

    /// Number of per-IP state entries currently held for unclassified
    /// ranges — the dominant memory consumer (Appendix A: "the state of each
    /// (masked) IP must be held for each range").
    pub fn monitored_ip_count(&self) -> usize {
        self.root_v4.counts().2 + self.root_v6.counts().2
    }

    /// Rough live state size in bytes, for the resource-consumption metric
    /// of the parameter study (Fig 20). Counts the dominant contributors:
    /// per-IP entries and per-range counter entries.
    pub fn state_bytes_estimate(&self) -> usize {
        // HashMap entry overhead approximations; precision is irrelevant,
        // relative growth with cidr_max is what the figure shows.
        const IP_ENTRY: usize = 16 + 8 + 48; // key + ts + counts map base
        const RANGE: usize = 96;
        self.monitored_ip_count() * IP_ENTRY + self.range_count() * RANGE
    }

    /// Export the complete engine state as canonical plain data — the
    /// substrate checkpoints are encoded from. See [`crate::persist`].
    pub fn dump_state(&self) -> crate::persist::EngineStateDump {
        let mut v4 = Vec::new();
        let mut v6 = Vec::new();
        self.root_v4.dump_into(&mut v4);
        self.root_v6.dump_into(&mut v6);
        crate::persist::EngineStateDump {
            params: self.params.clone(),
            ingresses: self.registry.points().to_vec(),
            stats: self.stats.clone(),
            v4,
            v6,
        }
    }

    /// Rebuild an engine from a [`dump`](IpdEngine::dump_state). Validates
    /// params, the intern table, and both trie preorders.
    pub fn restore_state(
        dump: crate::persist::EngineStateDump,
    ) -> Result<Self, crate::persist::RestoreError> {
        dump.params.validate()?;
        let registry = IngressRegistry::from_points(dump.ingresses)?;
        let n = registry.len() as u32;
        let rebuild = |nodes: &[crate::persist::TrieNodeDump], af: Af| {
            let mut pos = 0;
            let root = Node::from_dump(nodes, &mut pos, n, af, af.width())?;
            if pos != nodes.len() {
                return Err(crate::persist::RestoreError::TrailingNodes(
                    af,
                    nodes.len() - pos,
                ));
            }
            Ok(root)
        };
        let root_v4 = rebuild(&dump.v4, Af::V4)?;
        let root_v6 = rebuild(&dump.v6, Af::V6)?;
        Ok(IpdEngine {
            params: dump.params,
            root_v4,
            root_v6,
            registry,
            stats: dump.stats,
        })
    }

    /// Snapshot of every live range (classified and monitored) in the shape
    /// of the paper's raw output (Table 3). `ts` stamps the records.
    pub fn snapshot(&self, ts: u64) -> Snapshot {
        let mut records = Vec::new();
        let mut emit = |prefix: Prefix, state: &RangeState| {
            records.push(IpdRangeRecord::from_state(
                ts,
                prefix,
                state,
                &self.params,
                &self.registry,
            ));
        };
        self.root_v4.visit_leaves(Prefix::root(Af::V4), &mut emit);
        self.root_v6.visit_leaves(Prefix::root(Af::V6), &mut emit);
        // Root leaves with no data are noise, not ranges.
        records.retain(|r| r.sample_count > 0.0 || r.classified);
        Snapshot { ts, records }
    }

    /// Like [`snapshot`](IpdEngine::snapshot) but keeps only classified
    /// ranges — the records that carry an ingress verdict. This is the view a
    /// serving layer publishes: monitored-but-unclassified ranges answer
    /// "unmapped" anyway, so shipping them to readers is pure overhead.
    pub fn classified_snapshot(&self, ts: u64) -> Snapshot {
        let mut snap = self.snapshot(ts);
        snap.records.retain(|r| r.classified);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_params() -> IpdParams {
        // n_cidr(v4 /0) = 0.01 * sqrt(2^32) ≈ 655; the v6 reference width is
        // 64 bits so its factor must be far smaller for unit-test volumes.
        IpdParams {
            ncidr_factor_v4: 0.01,
            ncidr_factor_v6: 1e-9,
            ..IpdParams::default()
        }
    }

    fn v4(bits: u32) -> Addr {
        Addr::v4(bits)
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(IpdEngine::new(IpdParams {
            q: 0.3,
            ..IpdParams::default()
        })
        .is_err());
    }

    #[test]
    fn end_to_end_classification_via_flow_records() {
        let mut e = IpdEngine::new(test_params()).unwrap();
        for i in 0..2000u32 {
            let f = FlowRecord::synthetic(30, v4(0x0A00_0000 + i * 16), 7, 3);
            e.ingest(&f);
        }
        assert_eq!(e.stats().flows_ingested, 2000);
        let report = e.tick(60);
        assert!(!report.newly_classified.is_empty());
        assert!(report.newly_classified[0]
            .1
            .is_link(IngressPoint::new(7, 3)));
        assert_eq!(e.stats().ticks, 1);
        assert!(e.classified_count() >= 1);
    }

    #[test]
    fn byte_mode_weights_by_bytes() {
        let params = IpdParams {
            count_mode: CountMode::Bytes,
            ncidr_factor_v4: 0.01,
            ..IpdParams::default()
        };
        let mut e = IpdEngine::new(params).unwrap();
        // One giant flow outweighs many small ones from another ingress.
        let mut big = FlowRecord::synthetic(30, v4(0x0A000001), 1, 1);
        big.bytes = 1_000_000;
        e.ingest(&big);
        for i in 0..20u32 {
            let mut small = FlowRecord::synthetic(30, v4(0x0A000001 + i), 2, 1);
            small.bytes = 100;
            e.ingest(&small);
        }
        let report = e.tick(60);
        assert!(report
            .newly_classified
            .iter()
            .any(|(_, ing)| ing.is_link(IngressPoint::new(1, 1))));
    }

    #[test]
    fn v4_and_v6_are_independent_tries() {
        let mut e = IpdEngine::new(test_params()).unwrap();
        // 1000 samples clears n_cidr(v4 /0) ≈ 655.
        for i in 0..1000u32 {
            e.ingest_parts(30, v4(0x0A000000 + i * 256), IngressPoint::new(1, 1), 1.0);
            e.ingest_parts(
                30,
                Addr::v6((0x2001_0db8u128 << 96) | ((i as u128) << 40)),
                IngressPoint::new(2, 1),
                1.0,
            );
        }
        let report = e.tick(60);
        let v4_cls: Vec<_> = report
            .newly_classified
            .iter()
            .filter(|(p, _)| p.af() == Af::V4)
            .collect();
        let v6_cls: Vec<_> = report
            .newly_classified
            .iter()
            .filter(|(p, _)| p.af() == Af::V6)
            .collect();
        assert!(!v4_cls.is_empty());
        assert!(!v6_cls.is_empty());
        assert!(v6_cls[0].1.is_link(IngressPoint::new(2, 1)));
    }

    #[test]
    fn snapshot_contains_classified_and_monitored() {
        let mut e = IpdEngine::new(test_params()).unwrap();
        // Dominant traffic (share 1000/1002 ≥ q) with a stray dribble: the
        // root classifies while still reporting all ingress shares.
        for i in 0..1000u32 {
            e.ingest_parts(30, v4(i * 512), IngressPoint::new(1, 1), 1.0);
        }
        e.ingest_parts(30, v4(0xF000_0001), IngressPoint::new(2, 1), 1.0);
        e.ingest_parts(30, v4(0xF000_0011), IngressPoint::new(3, 1), 1.0);
        e.tick(60);
        let snap = e.snapshot(60);
        assert!(!snap.records.is_empty());
        let classified = snap.records.iter().filter(|r| r.classified).count();
        assert!(classified >= 1);
        for r in &snap.records {
            assert!(r.confidence >= 0.0 && r.confidence <= 1.0 + 1e-9);
            assert!(r.n_cidr > 0.0);
        }
    }

    #[test]
    fn range_count_and_state_estimate_move() {
        let mut e = IpdEngine::new(test_params()).unwrap();
        assert_eq!(e.range_count(), 2); // two empty roots
        let base = e.state_bytes_estimate();
        for i in 0..100u32 {
            e.ingest_parts(30, v4(i << 16), IngressPoint::new((i % 7) + 1, 1), 1.0);
        }
        assert!(e.monitored_ip_count() > 0);
        assert!(e.state_bytes_estimate() > base);
        e.tick(60);
        let _ = e.tick(120);
        assert!(e.stats().ticks == 2);
    }
}
