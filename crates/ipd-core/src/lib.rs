//! # IPD — Ingress Point Detection
//!
//! A from-scratch Rust implementation of the IPD algorithm from
//! *"IPD: Detecting Traffic Ingress Points at ISPs"* (ACM SIGCOMM 2024).
//!
//! IPD answers the question *where does traffic enter my network?* by
//! consuming sampled flow records from **all** border routers and
//! partitioning the IP address space — by *traffic*, not by BGP — into
//! dynamic CIDR ranges that each enter the network through one dominant
//! ingress point (a specific router and interface, or a *bundle* of
//! interfaces on one router).
//!
//! ## Algorithm in one paragraph (paper §3.2, Algorithm 1)
//!
//! Stage 1 masks every source IP to `cidr_max` and adds it, with its ingress
//! link and timestamp, into a binary prefix trie (one per address family).
//! Stage 2 runs every `t` seconds: it expires stale per-IP state (older than
//! `e`), decays counters of silent classified ranges, and for every range
//! that has accumulated at least `n_cidr` samples either **classifies** it
//! (one ingress holds at least share `q`), **splits** it in half (ambiguous,
//! below `cidr_max`), or — at `cidr_max` — tries router-level **bundling**.
//! Sibling ranges classified to the same ingress are **joined** back into
//! their parent. Classified ranges whose dominant share falls below `q` are
//! dropped and re-learned.
//!
//! ## Crate layout
//!
//! * [`IpdParams`] — all knobs of Table 1 with the paper's defaults.
//! * [`IpdEngine`] — the deterministic core: [`IpdEngine::ingest`] (stage 1)
//!   and [`IpdEngine::tick`] (stage 2). No clocks, no threads, no I/O —
//!   drive it with data timestamps and it is fully reproducible.
//! * [`output`] — per-tick snapshots in the shape of the paper's raw output
//!   (Table 3), plus LPM-table export for validation.
//! * [`pipeline`] — the deployment shape (§5.7): parallel reader threads
//!   feeding the engine over channels, ticks at time-bucket boundaries.
//! * [`ShardedEngine`] — the same engine on K cores: the address space is
//!   partitioned by the top shard-key bits, stage 1 and stage 2 run on
//!   scoped threads per shard, and the results are bit-for-bit identical to
//!   the single-threaded engine for every K (see the `shard` module docs
//!   for the determinism contract).
//!
//! ## Quick start
//!
//! ```
//! use ipd::{IpdEngine, IpdParams};
//! use ipd_topology::IngressPoint;
//! use ipd_lpm::Addr;
//!
//! // Small thresholds so the doc-test classifies with a handful of samples.
//! let params = IpdParams { ncidr_factor_v4: 0.01, ..IpdParams::default() };
//! let mut engine = IpdEngine::new(params).unwrap();
//!
//! // All traffic enters via router 1, interface 1...
//! let ingress = IngressPoint::new(1, 1);
//! for i in 0..1000u32 {
//!     engine.ingest_parts(60, Addr::v4(0x0A00_0000 | ((i * 97) & 0xFF_FFFF)), ingress, 1.0);
//! }
//! let report = engine.tick(120);
//! assert!(!report.newly_classified.is_empty());
//!
//! // ...so looking any source address up in the exported LPM table finds it.
//! let table = engine.snapshot(120).lpm_table();
//! let (range, who) = table.lookup(Addr::v4(0x0A01_0203)).unwrap();
//! assert!(who.is_link(ingress));
//! assert!(range.contains(Addr::v4(0x0A01_0203)));
//! ```

mod engine;
mod ingress;
pub mod output;
mod params;
pub mod persist;
pub mod pipeline;
mod range;
mod shard;
pub mod telemetry;
mod trie;

pub use engine::{EngineStats, IpdEngine, TickReport};
pub use ingress::{IngressId, IngressRegistry, LogicalIngress};
pub use output::{IpdRangeRecord, PrefixChange, Snapshot, SnapshotDiff, StoreDelta};
pub use params::{CountMode, IpdParams, ParamError};
pub use shard::{ShardedEngine, MAX_SHARDS};
pub use telemetry::CoreTelemetry;
