//! The deployment shape of IPD (paper §5.7): parallel flow-reader threads
//! decoding export datagrams, a single engine thread running stage 1
//! continuously and stage 2 at every time-bucket boundary.
//!
//! Time is *data time*: ticks fire when the flow stream crosses a `t`-second
//! bucket boundary, not on a wall clock. That matches the paper's online
//! contract ("an online algorithm that must be completed by the end of each
//! time bucket") while keeping every run bit-for-bit reproducible — the same
//! input stream always produces the same outputs, whether driven offline
//! ([`run_offline`]) or through the threaded [`IpdPipeline`].

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use ipd_netflow::{Collector, CollectorStats, FlowRecord, RouterId};

use crate::engine::{IpdEngine, TickReport};
use crate::output::Snapshot;
use crate::params::IpdParams;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Engine parameters.
    pub params: IpdParams,
    /// Bounded channel capacity between stages (batches, not flows).
    pub channel_capacity: usize,
    /// Emit a full [`Snapshot`] every this many ticks. The paper's raw
    /// output is written at 5-minute granularity with t = 60 s, i.e. 5.
    pub snapshot_every_ticks: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            params: IpdParams::default(),
            channel_capacity: 1024,
            snapshot_every_ticks: 5,
        }
    }
}

/// Items the engine thread emits.
#[derive(Debug, Clone)]
pub enum PipelineOutput {
    /// A stage-2 cycle completed.
    Tick(TickReport),
    /// A periodic full snapshot (see [`PipelineConfig::snapshot_every_ticks`]).
    Snapshot(Snapshot),
}

/// Drives stage-2 ticks from data timestamps. Shared by the offline runner
/// and the threaded pipeline so both have identical semantics.
#[derive(Debug)]
pub struct BucketDriver {
    t: u64,
    snapshot_every: u32,
    current_bucket: Option<u64>,
    ticks_since_snapshot: u32,
}

impl BucketDriver {
    /// A driver for the given bucket length and snapshot cadence.
    pub fn new(t_secs: u64, snapshot_every_ticks: u32) -> Self {
        BucketDriver {
            t: t_secs.max(1),
            snapshot_every: snapshot_every_ticks.max(1),
            current_bucket: None,
            ticks_since_snapshot: 0,
        }
    }

    /// Observe the timestamp of the next flow *before* ingesting it; fires
    /// any due ticks (one per crossed bucket, so decay sees every cycle).
    pub fn observe<F: FnMut(PipelineOutput)>(
        &mut self,
        engine: &mut IpdEngine,
        ts: u64,
        out: &mut F,
    ) {
        let bucket = ts / self.t;
        let Some(current) = self.current_bucket else {
            self.current_bucket = Some(bucket);
            return;
        };
        if bucket <= current {
            return; // same bucket, or late data: no tick due
        }
        for b in current..bucket {
            self.fire(engine, (b + 1) * self.t, out);
        }
        self.current_bucket = Some(bucket);
    }

    /// Fire the final tick and snapshot at end of stream.
    pub fn finish<F: FnMut(PipelineOutput)>(&mut self, engine: &mut IpdEngine, out: &mut F) {
        if let Some(current) = self.current_bucket {
            let now = (current + 1) * self.t;
            let report = engine.tick(now);
            out(PipelineOutput::Tick(report));
            out(PipelineOutput::Snapshot(engine.snapshot(now)));
        }
    }

    fn fire<F: FnMut(PipelineOutput)>(&mut self, engine: &mut IpdEngine, now: u64, out: &mut F) {
        let report = engine.tick(now);
        out(PipelineOutput::Tick(report));
        self.ticks_since_snapshot += 1;
        if self.ticks_since_snapshot >= self.snapshot_every {
            self.ticks_since_snapshot = 0;
            out(PipelineOutput::Snapshot(engine.snapshot(now)));
        }
    }
}

/// Run IPD over an in-memory, time-ordered flow stream. Ticks fire at bucket
/// boundaries; `on_output` receives every tick report and snapshot,
/// including the final end-of-stream snapshot.
pub fn run_offline<I, F>(engine: &mut IpdEngine, flows: I, snapshot_every_ticks: u32, mut on_output: F)
where
    I: IntoIterator<Item = FlowRecord>,
    F: FnMut(PipelineOutput),
{
    let mut driver = BucketDriver::new(engine.params().t_secs, snapshot_every_ticks);
    for flow in flows {
        driver.observe(engine, flow.ts, &mut on_output);
        engine.ingest(&flow);
    }
    driver.finish(engine, &mut on_output);
}

/// Handle to a running threaded pipeline.
///
/// Feed batches of flows through [`IpdPipeline::input`]; consume
/// [`PipelineOutput`]s from [`IpdPipeline::output`]; call
/// [`IpdPipeline::finish`] to close the input, drain, and get the engine
/// back.
pub struct IpdPipeline {
    input: Sender<Vec<FlowRecord>>,
    output: Receiver<PipelineOutput>,
    handle: std::thread::JoinHandle<IpdEngine>,
}

impl IpdPipeline {
    /// Spawn the engine thread.
    pub fn spawn(config: PipelineConfig) -> Result<Self, crate::params::ParamError> {
        let engine = IpdEngine::new(config.params.clone())?;
        let (in_tx, in_rx) = bounded::<Vec<FlowRecord>>(config.channel_capacity);
        let (out_tx, out_rx) = bounded::<PipelineOutput>(config.channel_capacity);
        let snapshot_every = config.snapshot_every_ticks;
        let handle = std::thread::Builder::new()
            .name("ipd-engine".into())
            .spawn(move || {
                let mut engine = engine;
                let mut driver = BucketDriver::new(engine.params().t_secs, snapshot_every);
                // If the consumer goes away we keep processing; IPD state is
                // still useful when handed back by finish().
                let mut emit = |o: PipelineOutput| {
                    let _ = out_tx.send(o);
                };
                for batch in in_rx.iter() {
                    for flow in batch {
                        driver.observe(&mut engine, flow.ts, &mut emit);
                        engine.ingest(&flow);
                    }
                }
                driver.finish(&mut engine, &mut emit);
                engine
            })
            .expect("spawning the engine thread");
        Ok(IpdPipeline { input: in_tx, output: out_rx, handle })
    }

    /// A clonable sender for flow batches.
    pub fn input(&self) -> Sender<Vec<FlowRecord>> {
        self.input.clone()
    }

    /// The output stream of tick reports and snapshots.
    pub fn output(&self) -> &Receiver<PipelineOutput> {
        &self.output
    }

    /// Close the input, wait for the engine thread, and return the engine
    /// plus any outputs still queued.
    pub fn finish(self) -> (IpdEngine, Vec<PipelineOutput>) {
        drop(self.input);
        let engine = self.handle.join().expect("engine thread never panics");
        let leftover: Vec<PipelineOutput> = self.output.try_iter().collect();
        (engine, leftover)
    }
}

/// A flow-reader worker (paper §5.7: "processes that handle incoming flow
/// data", ~120 MB each): decodes export datagrams from its routers and
/// forwards flow batches to the engine.
///
/// IPFIX template caches are per-collector, so *all datagrams of one router
/// must go to the same reader* — shard by `router % n_readers`.
pub fn run_reader(
    datagrams: Receiver<(RouterId, Bytes)>,
    flows_out: Sender<Vec<FlowRecord>>,
    batch_size: usize,
) -> CollectorStats {
    let mut collector = Collector::new();
    let mut batch: Vec<FlowRecord> = Vec::with_capacity(batch_size.max(1));
    for (router, datagram) in datagrams.iter() {
        // Malformed datagrams are counted in the stats and skipped; one bad
        // exporter must not take the reader down.
        let _ = collector.feed(&datagram, router, &mut batch);
        if batch.len() >= batch_size {
            if flows_out.send(std::mem::take(&mut batch)).is_err() {
                break; // engine gone; drain and report
            }
            batch = Vec::with_capacity(batch_size.max(1));
        }
    }
    if !batch.is_empty() {
        let _ = flows_out.send(batch);
    }
    collector.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_lpm::Addr;
    use ipd_netflow::v5::V5Exporter;
    use ipd_topology::IngressPoint;

    fn test_params() -> IpdParams {
        IpdParams { ncidr_factor_v4: 0.01, ..IpdParams::default() }
    }

    fn flows_two_halves(n_per_minute: u32, minutes: u64) -> Vec<FlowRecord> {
        let mut flows = Vec::new();
        for m in 0..minutes {
            for i in 0..n_per_minute {
                let ts = m * 60 + (i as u64 % 60);
                let mut f = FlowRecord::synthetic(ts, Addr::v4(i * 4096), 1, 1);
                f.input_if = 1;
                flows.push(f);
                let g =
                    FlowRecord::synthetic(ts, Addr::v4(0x8000_0000 + i * 4096), 2, 1);
                flows.push(g);
            }
        }
        flows.sort_by_key(|f| f.ts);
        flows
    }

    #[test]
    fn offline_run_classifies_and_snapshots() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut ticks = 0;
        let mut snapshots = Vec::new();
        run_offline(&mut engine, flows_two_halves(200, 10), 5, |o| match o {
            PipelineOutput::Tick(_) => ticks += 1,
            PipelineOutput::Snapshot(s) => snapshots.push(s),
        });
        assert_eq!(ticks, 10, "one tick per crossed bucket + final");
        assert!(!snapshots.is_empty());
        let last = snapshots.last().unwrap();
        let lpm = last.lpm_table();
        assert!(lpm.lookup(Addr::v4(0x0100_0000)).unwrap().1.is_link(IngressPoint::new(1, 1)));
        assert!(lpm.lookup(Addr::v4(0x9100_0000)).unwrap().1.is_link(IngressPoint::new(2, 1)));
    }

    #[test]
    fn threaded_pipeline_matches_offline() {
        let flows = flows_two_halves(100, 6);
        // Offline reference.
        let mut ref_engine = IpdEngine::new(test_params()).unwrap();
        let mut ref_outputs = Vec::new();
        run_offline(&mut ref_engine, flows.clone(), 2, |o| ref_outputs.push(o));

        // Threaded run with the same data.
        let pipeline = IpdPipeline::spawn(PipelineConfig {
            params: test_params(),
            channel_capacity: 16,
            snapshot_every_ticks: 2,
        })
        .unwrap();
        let tx = pipeline.input();
        for chunk in flows.chunks(97) {
            tx.send(chunk.to_vec()).unwrap();
        }
        drop(tx);
        let mut outputs: Vec<PipelineOutput> = Vec::new();
        // Drain the live output until the engine thread finishes.
        let (engine, leftover) = {
            // Collect concurrently to avoid backpressure deadlock.
            let rx = pipeline.output().clone();
            let drainer = std::thread::spawn(move || rx.iter().collect::<Vec<_>>());
            let (engine, leftover) = pipeline.finish();
            outputs.extend(drainer.join().unwrap());
            (engine, leftover)
        };
        outputs.extend(leftover);

        assert_eq!(engine.stats().flows_ingested, ref_engine.stats().flows_ingested);
        assert_eq!(engine.stats().ticks, ref_engine.stats().ticks);
        assert_eq!(engine.classified_count(), ref_engine.classified_count());
        // Same number and kinds of outputs in the same order.
        let kinds = |v: &[PipelineOutput]| -> Vec<bool> {
            v.iter().map(|o| matches!(o, PipelineOutput::Snapshot(_))).collect()
        };
        assert_eq!(kinds(&outputs), kinds(&ref_outputs));
    }

    #[test]
    fn readers_decode_and_forward() {
        let (gram_tx, gram_rx) = bounded(64);
        let (flow_tx, flow_rx) = bounded(64);
        let reader = std::thread::spawn(move || run_reader(gram_rx, flow_tx, 10));
        let mut exporter = V5Exporter::new(4, 0, 1000, 0);
        let records: Vec<FlowRecord> = (0..25)
            .map(|i| FlowRecord::synthetic(60, Addr::v4(0x0A000000 + i), 4, 2))
            .collect();
        for gram in exporter.encode(60, &records).unwrap() {
            gram_tx.send((4, gram)).unwrap();
        }
        // A garbage datagram must be survivable.
        gram_tx.send((4, Bytes::from_static(&[0, 9, 9]))).unwrap();
        drop(gram_tx);
        let stats = reader.join().unwrap();
        let got: Vec<FlowRecord> = flow_rx.iter().flatten().collect();
        assert_eq!(got.len(), 25);
        assert_eq!(stats.records, 25);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn late_data_does_not_rewind_ticks() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut driver = BucketDriver::new(60, 1000);
        let mut ticks = Vec::new();
        let mut out = |o: PipelineOutput| {
            if let PipelineOutput::Tick(t) = o {
                ticks.push(t.now);
            }
        };
        for ts in [10u64, 70, 65, 130, 50, 200] {
            driver.observe(&mut engine, ts, &mut out);
            engine.ingest_parts(ts, Addr::v4(1), IngressPoint::new(1, 1), 1.0);
        }
        driver.finish(&mut engine, &mut out);
        // Buckets crossed: 0→1 (tick @60), 1→2 (@120), 2→3 (@180), final (@240).
        assert_eq!(ticks, vec![60, 120, 180, 240]);
    }

    #[test]
    fn gap_in_stream_fires_intermediate_ticks_for_decay() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut driver = BucketDriver::new(60, 1000);
        let mut n = 0;
        let mut out = |o: PipelineOutput| {
            if matches!(o, PipelineOutput::Tick(_)) {
                n += 1;
            }
        };
        driver.observe(&mut engine, 30, &mut out);
        driver.observe(&mut engine, 630, &mut out);
        assert_eq!(n, 10, "a 10-bucket gap fires 10 ticks");
    }
}
