//! The deployment shape of IPD (paper §5.7): parallel flow-reader threads
//! decoding export datagrams, a single engine thread running stage 1
//! continuously and stage 2 at every time-bucket boundary.
//!
//! Time is *data time*: ticks fire when the flow stream crosses a `t`-second
//! bucket boundary, not on a wall clock. That matches the paper's online
//! contract ("an online algorithm that must be completed by the end of each
//! time bucket") while keeping every run bit-for-bit reproducible — the same
//! input stream always produces the same outputs, whether driven offline
//! ([`run_offline`]), through the threaded [`IpdPipeline`], or through the
//! multi-core [`ShardedPipeline`] at any shard count.

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use ipd_netflow::{Collector, CollectorStats, FlowRecord, RouterId};
use ipd_telemetry::Telemetry;

use crate::engine::{IpdEngine, TickReport};
use crate::output::Snapshot;
use crate::params::IpdParams;
use crate::shard::ShardedEngine;
use crate::telemetry::CoreTelemetry;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Engine parameters.
    pub params: IpdParams,
    /// Bounded channel capacity between stages (batches, not flows).
    pub channel_capacity: usize,
    /// Emit a full [`Snapshot`] every this many ticks. The paper's raw
    /// output is written at 5-minute granularity with t = 60 s, i.e. 5.
    pub snapshot_every_ticks: u32,
    /// Shard count K for [`ShardedPipeline`] (power of two, 1..=256).
    /// [`IpdPipeline`] ignores this and always runs single-threaded.
    pub shards: usize,
    /// Metric registry the run reports into. The default is
    /// [`Telemetry::disabled`], whose handles are no-ops — telemetry is
    /// observational only and never changes engine output either way (the
    /// differential suite proves digests are bit-for-bit equal with it on
    /// or off).
    pub telemetry: Telemetry,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            params: IpdParams::default(),
            channel_capacity: 1024,
            snapshot_every_ticks: 5,
            shards: 1,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// The engine operations the drivers in this module need — implemented by
/// the single-threaded [`IpdEngine`] and the multi-core
/// [`ShardedEngine`], which produce bit-for-bit identical state for the
/// same flow stream (see the `shard` module docs for the contract).
pub trait TickEngine {
    /// Stage-1 ingest of one flow.
    fn ingest(&mut self, flow: &FlowRecord);
    /// Stage-1 ingest of a batch of flows (in stream order). Implementations
    /// may parallelize; the default just loops.
    fn ingest_batch(&mut self, flows: &[FlowRecord]) {
        for f in flows {
            self.ingest(f);
        }
    }
    /// Stage-2 sweep at data time `now`.
    fn tick(&mut self, now: u64) -> TickReport;
    /// Full state snapshot stamped `ts`.
    fn snapshot(&self, ts: u64) -> Snapshot;
    /// The configured stage-2 bucket length `t` in seconds.
    fn t_secs(&self) -> u64;
    /// The underlying logical engine (for state export — checkpoints are
    /// execution-strategy-free, see [`crate::persist`]).
    fn engine(&self) -> &IpdEngine;
}

impl TickEngine for IpdEngine {
    fn ingest(&mut self, flow: &FlowRecord) {
        IpdEngine::ingest(self, flow);
    }

    fn tick(&mut self, now: u64) -> TickReport {
        IpdEngine::tick(self, now)
    }

    fn snapshot(&self, ts: u64) -> Snapshot {
        IpdEngine::snapshot(self, ts)
    }

    fn t_secs(&self) -> u64 {
        self.params().t_secs
    }

    fn engine(&self) -> &IpdEngine {
        self
    }
}

impl TickEngine for ShardedEngine {
    fn ingest(&mut self, flow: &FlowRecord) {
        ShardedEngine::ingest(self, flow);
    }

    fn ingest_batch(&mut self, flows: &[FlowRecord]) {
        ShardedEngine::ingest_batch(self, flows);
    }

    fn tick(&mut self, now: u64) -> TickReport {
        ShardedEngine::tick(self, now)
    }

    fn snapshot(&self, ts: u64) -> Snapshot {
        ShardedEngine::snapshot(self, ts)
    }

    fn t_secs(&self) -> u64 {
        self.params().t_secs
    }

    fn engine(&self) -> &IpdEngine {
        ShardedEngine::engine(self)
    }
}

/// Items the engine thread emits.
#[derive(Debug, Clone)]
pub enum PipelineOutput {
    /// A stage-2 cycle completed.
    Tick(TickReport),
    /// A periodic full snapshot (see [`PipelineConfig::snapshot_every_ticks`]).
    Snapshot(Snapshot),
}

/// The data-time position of a [`BucketDriver`] — checkpointed alongside
/// the engine state so a restored run resumes tick/snapshot cadence exactly
/// where the interrupted run left it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketClock {
    /// The bucket of the last observed flow (None before the first flow).
    pub current_bucket: Option<u64>,
    /// Ticks fired since the last periodic snapshot.
    pub ticks_since_snapshot: u32,
}

/// Observer of a driven engine run — the durability seam. A hook sees every
/// flow *before* it is ingested (write-ahead: a flow is journaled before it
/// can mutate state) and every bucket-boundary crossing *after* its ticks
/// fired but before the crossing flow is delivered — at that instant the
/// engine state is exactly "all flows of the closed buckets applied", the
/// well-defined point a checkpoint captures.
pub trait PipelineHook: Send {
    /// A run of flows about to be ingested, in stream order.
    fn flows(&mut self, flows: &[FlowRecord]) {
        let _ = flows;
    }
    /// Bucket-boundary ticks just fired; `clock` is the driver position.
    fn bucket_crossed(&mut self, engine: &IpdEngine, clock: BucketClock) {
        let _ = (engine, clock);
    }
    /// End of stream, *before* the final tick — a restored run replays to
    /// this state and fires the final tick itself.
    fn finished(&mut self, engine: &IpdEngine, clock: BucketClock) {
        let _ = (engine, clock);
    }
    /// End of stream, *after* the final tick and snapshot fired — the
    /// terminal engine state. This is the publication seam a serving layer
    /// (e.g. `ipd-serve`) uses to push the last ingress map of a run;
    /// durability hooks keep using [`finished`](PipelineHook::finished),
    /// whose pre-final-tick state is what a restore replays to.
    fn closed(&mut self, engine: &IpdEngine, clock: BucketClock) {
        let _ = (engine, clock);
    }
}

/// The do-nothing hook the unhooked entry points run with.
pub struct NoopHook;

impl PipelineHook for NoopHook {}

/// Drives stage-2 ticks from data timestamps. Shared by the offline runner
/// and the threaded pipeline so both have identical semantics.
#[derive(Debug)]
pub struct BucketDriver {
    t: u64,
    snapshot_every: u32,
    current_bucket: Option<u64>,
    ticks_since_snapshot: u32,
    metrics: CoreTelemetry,
}

impl BucketDriver {
    /// A driver for the given bucket length and snapshot cadence.
    pub fn new(t_secs: u64, snapshot_every_ticks: u32) -> Self {
        Self::with_clock(t_secs, snapshot_every_ticks, BucketClock::default())
    }

    /// A driver resuming from a checkpointed [`BucketClock`]. The cadence
    /// parameters must match the interrupted run's for tick-exact replay.
    pub fn with_clock(t_secs: u64, snapshot_every_ticks: u32, clock: BucketClock) -> Self {
        BucketDriver {
            t: t_secs.max(1),
            snapshot_every: snapshot_every_ticks.max(1),
            current_bucket: clock.current_bucket,
            ticks_since_snapshot: clock.ticks_since_snapshot,
            metrics: CoreTelemetry::default(),
        }
    }

    /// Attach metric handles: tick counters, stage-2 timing, and post-tick
    /// state gauges are recorded by this driver. Purely observational.
    pub fn with_metrics(mut self, metrics: CoreTelemetry) -> Self {
        self.metrics = metrics;
        self
    }

    /// The current data-time position.
    pub fn clock(&self) -> BucketClock {
        BucketClock {
            current_bucket: self.current_bucket,
            ticks_since_snapshot: self.ticks_since_snapshot,
        }
    }

    /// Observe the timestamp of the next flow *before* ingesting it; fires
    /// any due ticks (one per crossed bucket, so decay sees every cycle).
    pub fn observe<E: TickEngine, F: FnMut(PipelineOutput)>(
        &mut self,
        engine: &mut E,
        ts: u64,
        out: &mut F,
    ) {
        self.observe_with(engine, ts, out, &mut NoopHook);
    }

    /// [`BucketDriver::observe`] with a [`PipelineHook`] that is told about
    /// boundary crossings (after their ticks fired).
    pub fn observe_with<E: TickEngine, F: FnMut(PipelineOutput)>(
        &mut self,
        engine: &mut E,
        ts: u64,
        out: &mut F,
        hook: &mut dyn PipelineHook,
    ) {
        let bucket = ts / self.t;
        let Some(current) = self.current_bucket else {
            self.current_bucket = Some(bucket);
            return;
        };
        if bucket <= current {
            return; // same bucket, or late data: no tick due
        }
        for b in current..bucket {
            self.fire(engine, (b + 1) * self.t, out);
        }
        self.current_bucket = Some(bucket);
        hook.bucket_crossed(engine.engine(), self.clock());
    }

    /// Observe *and ingest* a whole batch: due ticks still fire exactly at
    /// bucket boundaries inside the batch, while each maximal run of flows
    /// between boundaries goes through the engine's (possibly parallel)
    /// batch path. Per-flow, this is the same observe-then-ingest sequence
    /// [`run_offline`] performs.
    pub fn ingest_batch<E: TickEngine, F: FnMut(PipelineOutput)>(
        &mut self,
        engine: &mut E,
        batch: &[FlowRecord],
        out: &mut F,
    ) {
        self.ingest_batch_with(engine, batch, out, &mut NoopHook);
    }

    /// [`BucketDriver::ingest_batch`] with a [`PipelineHook`]: every run of
    /// flows between boundaries goes to [`PipelineHook::flows`] immediately
    /// before it is ingested, so a boundary crossing mid-batch sees the
    /// preceding run applied and the following run not yet journaled —
    /// the same order the per-flow path produces.
    pub fn ingest_batch_with<E: TickEngine, F: FnMut(PipelineOutput)>(
        &mut self,
        engine: &mut E,
        batch: &[FlowRecord],
        out: &mut F,
        hook: &mut dyn PipelineHook,
    ) {
        let mut start = 0;
        for (i, flow) in batch.iter().enumerate() {
            let due = match self.current_bucket {
                Some(current) => flow.ts / self.t > current,
                None => false,
            };
            if due {
                hook.flows(&batch[start..i]);
                engine.ingest_batch(&batch[start..i]);
                start = i;
            }
            self.observe_with(engine, flow.ts, out, hook);
        }
        hook.flows(&batch[start..]);
        engine.ingest_batch(&batch[start..]);
        self.metrics.flows.add(batch.len() as u64);
    }

    /// Fire the final tick and snapshot at end of stream.
    pub fn finish<E: TickEngine, F: FnMut(PipelineOutput)>(&mut self, engine: &mut E, out: &mut F) {
        if let Some(current) = self.current_bucket {
            let now = (current + 1) * self.t;
            let report = self.timed_tick(engine, now);
            self.metrics.record_tick(&report, engine.engine(), now);
            out(PipelineOutput::Tick(report));
            out(PipelineOutput::Snapshot(engine.snapshot(now)));
        }
    }

    fn fire<E: TickEngine, F: FnMut(PipelineOutput)>(
        &mut self,
        engine: &mut E,
        now: u64,
        out: &mut F,
    ) {
        let report = self.timed_tick(engine, now);
        self.metrics.record_tick(&report, engine.engine(), now);
        out(PipelineOutput::Tick(report));
        self.ticks_since_snapshot += 1;
        if self.ticks_since_snapshot >= self.snapshot_every {
            self.ticks_since_snapshot = 0;
            out(PipelineOutput::Snapshot(engine.snapshot(now)));
        }
    }

    /// Run stage 2 under the tick-duration timer. A disabled histogram's
    /// timer never reads the clock, so the untelemetered path stays free of
    /// `Instant::now` calls.
    fn timed_tick<E: TickEngine>(&self, engine: &mut E, now: u64) -> TickReport {
        let _timer = self.metrics.tick_duration.start_timer();
        engine.tick(now)
    }
}

/// Run IPD over an in-memory, time-ordered flow stream. Ticks fire at bucket
/// boundaries; `on_output` receives every tick report and snapshot,
/// including the final end-of-stream snapshot.
pub fn run_offline<E, I, F>(engine: &mut E, flows: I, snapshot_every_ticks: u32, on_output: F)
where
    E: TickEngine,
    I: IntoIterator<Item = FlowRecord>,
    F: FnMut(PipelineOutput),
{
    run_offline_with(
        engine,
        flows,
        snapshot_every_ticks,
        None,
        &mut NoopHook,
        on_output,
    );
}

/// [`run_offline`] with a [`PipelineHook`] and an optional starting
/// [`BucketClock`] (pass the clock a restore returned to resume an
/// interrupted run mid-stream). The hook's
/// [`finished`](PipelineHook::finished) fires before the final tick.
pub fn run_offline_with<E, I, F>(
    engine: &mut E,
    flows: I,
    snapshot_every_ticks: u32,
    clock: Option<BucketClock>,
    hook: &mut dyn PipelineHook,
    mut on_output: F,
) where
    E: TickEngine,
    I: IntoIterator<Item = FlowRecord>,
    F: FnMut(PipelineOutput),
{
    let mut driver = BucketDriver::with_clock(
        engine.t_secs(),
        snapshot_every_ticks,
        clock.unwrap_or_default(),
    );
    for flow in flows {
        driver.observe_with(engine, flow.ts, &mut on_output, hook);
        hook.flows(std::slice::from_ref(&flow));
        engine.ingest(&flow);
    }
    hook.finished(engine.engine(), driver.clock());
    driver.finish(engine, &mut on_output);
    hook.closed(engine.engine(), driver.clock());
}

/// [`run_offline_with`] reporting into a [`Telemetry`] registry: flow and
/// tick counters, stage-2 timing, and post-tick state gauges. With a
/// disabled registry this is exactly [`run_offline_with`] (the handles are
/// no-ops), and even with a live one the engine output is bit-for-bit
/// unchanged — telemetry never feeds back.
pub fn run_offline_instrumented<E, I, F>(
    engine: &mut E,
    flows: I,
    snapshot_every_ticks: u32,
    clock: Option<BucketClock>,
    hook: &mut dyn PipelineHook,
    telemetry: &Telemetry,
    mut on_output: F,
) where
    E: TickEngine,
    I: IntoIterator<Item = FlowRecord>,
    F: FnMut(PipelineOutput),
{
    let metrics = CoreTelemetry::register(telemetry);
    let mut driver = BucketDriver::with_clock(
        engine.t_secs(),
        snapshot_every_ticks,
        clock.unwrap_or_default(),
    )
    .with_metrics(metrics.clone());
    for flow in flows {
        driver.observe_with(engine, flow.ts, &mut on_output, hook);
        hook.flows(std::slice::from_ref(&flow));
        engine.ingest(&flow);
        metrics.flows.inc();
        metrics.ingest_watermark.record(flow.ts);
    }
    hook.finished(engine.engine(), driver.clock());
    driver.finish(engine, &mut on_output);
    hook.closed(engine.engine(), driver.clock());
}

/// Wind-down drain shared by both pipelines' `finish`.
///
/// The output channel is bounded, so an engine thread flushing its final
/// ticks can be parked mid-`send`; *someone* must keep consuming or the
/// join deadlocks. Who that someone is depends on whether the caller ever
/// took the output receiver:
///
/// * `output_taken` — the caller owns consumption (every such caller must
///   drain until the channel disconnects, which is also what unparks the
///   engine). `finish` only joins and sweeps up post-disconnect dregs, so
///   the caller's consumer sees the whole stream in order.
/// * not taken — `finish` is the sole consumer: it blocking-drains until
///   the engine thread hangs up, and `leftover` is the complete output
///   stream in order. This is what makes a fire-and-finish caller (no
///   drainer anywhere) deadlock-free.
fn drain_while_finishing<T, O>(
    output: &Receiver<O>,
    handle: std::thread::JoinHandle<T>,
    output_taken: bool,
) -> (T, Vec<O>) {
    let mut leftover = Vec::new();
    if !output_taken {
        // Sole consumer: ends when the engine thread drops its sender.
        leftover.extend(output.iter());
    }
    let result = handle.join().expect("engine thread never panics");
    leftover.extend(output.try_iter());
    (result, leftover)
}

/// Feed a flow source — typically a streaming generator that never
/// materializes the full trace — into a pipeline input in bounded batches.
///
/// Memory held here is one `batch_size` buffer regardless of stream length;
/// the pipeline's bounded channel provides backpressure. Returns the number
/// of flows sent, stopping early if the consuming side hung up.
pub fn pump_stream<I>(input: &Sender<Vec<FlowRecord>>, flows: I, batch_size: usize) -> u64
where
    I: IntoIterator<Item = FlowRecord>,
{
    let batch_size = batch_size.max(1);
    let mut sent = 0u64;
    let mut buf = Vec::with_capacity(batch_size);
    for flow in flows {
        buf.push(flow);
        if buf.len() == batch_size {
            let full = std::mem::replace(&mut buf, Vec::with_capacity(batch_size));
            sent += full.len() as u64;
            if input.send(full).is_err() {
                return sent;
            }
        }
    }
    if !buf.is_empty() {
        sent += buf.len() as u64;
        let _ = input.send(buf);
    }
    sent
}

/// Handle to a running threaded pipeline.
///
/// Feed batches of flows through [`IpdPipeline::input`]; consume
/// [`PipelineOutput`]s from [`IpdPipeline::output`]; call
/// [`IpdPipeline::finish`] to close the input, drain, and get the engine
/// back.
pub struct IpdPipeline {
    input: Sender<Vec<FlowRecord>>,
    output: Receiver<PipelineOutput>,
    output_taken: std::sync::atomic::AtomicBool,
    handle: std::thread::JoinHandle<(IpdEngine, Box<dyn PipelineHook>)>,
}

impl IpdPipeline {
    /// Spawn the engine thread.
    pub fn spawn(config: PipelineConfig) -> Result<Self, crate::params::ParamError> {
        Self::spawn_hooked(config, Box::new(NoopHook))
    }

    /// Spawn the engine thread with a [`PipelineHook`] riding on the driver
    /// (e.g. a checkpointer). The hook lives on the engine thread and is
    /// handed back by [`IpdPipeline::finish_hooked`].
    pub fn spawn_hooked(
        config: PipelineConfig,
        hook: Box<dyn PipelineHook>,
    ) -> Result<Self, crate::params::ParamError> {
        let engine = IpdEngine::new(config.params.clone())?;
        let (in_tx, in_rx) = bounded::<Vec<FlowRecord>>(config.channel_capacity);
        let (out_tx, out_rx) = bounded::<PipelineOutput>(config.channel_capacity);
        let snapshot_every = config.snapshot_every_ticks;
        let metrics = CoreTelemetry::register(&config.telemetry);
        let handle = std::thread::Builder::new()
            .name("ipd-engine".into())
            .spawn(move || {
                let mut engine = engine;
                let mut hook = hook;
                let mut driver = BucketDriver::new(engine.params().t_secs, snapshot_every)
                    .with_metrics(metrics.clone());
                // If the consumer goes away we keep processing; IPD state is
                // still useful when handed back by finish().
                let mut emit = |o: PipelineOutput| {
                    let _ = out_tx.send(o);
                };
                for batch in in_rx.iter() {
                    metrics.batches.inc();
                    metrics.batch_size.observe(batch.len() as u64);
                    metrics.channel_depth.set(in_rx.len() as i64);
                    let last_ts = batch.last().map(|f| f.ts);
                    for flow in batch {
                        driver.observe_with(&mut engine, flow.ts, &mut emit, hook.as_mut());
                        hook.flows(std::slice::from_ref(&flow));
                        engine.ingest(&flow);
                        metrics.flows.inc();
                    }
                    if let Some(ts) = last_ts {
                        metrics.ingest_watermark.record(ts);
                    }
                }
                hook.finished(&engine, driver.clock());
                driver.finish(&mut engine, &mut emit);
                hook.closed(&engine, driver.clock());
                (engine, hook)
            })
            .expect("spawning the engine thread");
        Ok(IpdPipeline {
            input: in_tx,
            output: out_rx,
            output_taken: std::sync::atomic::AtomicBool::new(false),
            handle,
        })
    }

    /// A clonable sender for flow batches.
    pub fn input(&self) -> Sender<Vec<FlowRecord>> {
        self.input.clone()
    }

    /// The output stream of tick reports and snapshots.
    ///
    /// Taking this receiver makes the caller the output consumer: drain it
    /// until it disconnects (the output channel is bounded, and the engine
    /// thread blocks on it for backpressure). If it is never taken,
    /// [`IpdPipeline::finish`] consumes the stream itself and returns it
    /// whole.
    pub fn output(&self) -> &Receiver<PipelineOutput> {
        self.output_taken
            .store(true, std::sync::atomic::Ordering::Relaxed);
        &self.output
    }

    /// Close the input, wait for the engine thread, and return the engine
    /// plus the queued outputs: the complete run's outputs if
    /// [`IpdPipeline::output`] was never taken, otherwise whatever a
    /// concurrent consumer left behind.
    pub fn finish(self) -> (IpdEngine, Vec<PipelineOutput>) {
        let (engine, _, leftover) = self.finish_hooked();
        (engine, leftover)
    }

    /// [`IpdPipeline::finish`], also handing back the hook passed to
    /// [`IpdPipeline::spawn_hooked`] (after its
    /// [`finished`](PipelineHook::finished) callback ran).
    pub fn finish_hooked(self) -> (IpdEngine, Box<dyn PipelineHook>, Vec<PipelineOutput>) {
        drop(self.input);
        let taken = self.output_taken.load(std::sync::atomic::Ordering::Relaxed);
        let ((engine, hook), leftover) = drain_while_finishing(&self.output, self.handle, taken);
        (engine, hook, leftover)
    }
}

/// Handle to a running multi-core pipeline: like [`IpdPipeline`], but the
/// engine stage is a [`ShardedEngine`] with `config.shards` = K.
///
/// One coordinator thread owns the [`BucketDriver`] — data-time tick
/// semantics are global, exactly as in the single-threaded pipeline — and
/// routes every same-bucket run of each incoming batch through
/// [`ShardedEngine::ingest_batch`], which fans the flows out to their
/// owning shards (top shard-key address bits) on scoped threads. Stage-2
/// ticks likewise run across all shards in parallel. Outputs are identical
/// to [`IpdPipeline`]'s for the same batch sequence, up to report ordering
/// (sharded tick reports are prefix-sorted; see the `shard` module docs).
pub struct ShardedPipeline {
    input: Sender<Vec<FlowRecord>>,
    output: Receiver<PipelineOutput>,
    output_taken: std::sync::atomic::AtomicBool,
    handle: std::thread::JoinHandle<(ShardedEngine, Box<dyn PipelineHook>)>,
}

impl ShardedPipeline {
    /// Spawn the coordinator thread with a K-sharded engine.
    pub fn spawn(config: PipelineConfig) -> Result<Self, crate::params::ParamError> {
        Self::spawn_hooked(config, Box::new(NoopHook))
    }

    /// Spawn the coordinator thread with a [`PipelineHook`] riding on the
    /// driver, exactly like [`IpdPipeline::spawn_hooked`].
    pub fn spawn_hooked(
        config: PipelineConfig,
        hook: Box<dyn PipelineHook>,
    ) -> Result<Self, crate::params::ParamError> {
        let mut engine = ShardedEngine::new(config.params.clone(), config.shards)?;
        engine.attach_telemetry(&config.telemetry);
        let (in_tx, in_rx) = bounded::<Vec<FlowRecord>>(config.channel_capacity);
        let (out_tx, out_rx) = bounded::<PipelineOutput>(config.channel_capacity);
        let snapshot_every = config.snapshot_every_ticks;
        let metrics = CoreTelemetry::register(&config.telemetry);
        let handle = std::thread::Builder::new()
            .name("ipd-sharded-engine".into())
            .spawn(move || {
                let mut engine = engine;
                let mut hook = hook;
                let mut driver = BucketDriver::new(engine.params().t_secs, snapshot_every)
                    .with_metrics(metrics.clone());
                let mut emit = |o: PipelineOutput| {
                    let _ = out_tx.send(o);
                };
                for batch in in_rx.iter() {
                    metrics.batches.inc();
                    metrics.batch_size.observe(batch.len() as u64);
                    metrics.channel_depth.set(in_rx.len() as i64);
                    driver.ingest_batch_with(&mut engine, &batch, &mut emit, hook.as_mut());
                    if let Some(last) = batch.last() {
                        metrics.ingest_watermark.record(last.ts);
                    }
                }
                hook.finished(ShardedEngine::engine(&engine), driver.clock());
                driver.finish(&mut engine, &mut emit);
                hook.closed(ShardedEngine::engine(&engine), driver.clock());
                (engine, hook)
            })
            .expect("spawning the sharded engine thread");
        Ok(ShardedPipeline {
            input: in_tx,
            output: out_rx,
            output_taken: std::sync::atomic::AtomicBool::new(false),
            handle,
        })
    }

    /// A clonable sender for flow batches.
    pub fn input(&self) -> Sender<Vec<FlowRecord>> {
        self.input.clone()
    }

    /// The output stream of tick reports and snapshots. Consumption
    /// contract as in [`IpdPipeline::output`]: taking it obliges draining
    /// to disconnect; never taking it means
    /// [`ShardedPipeline::finish`] returns the whole stream.
    pub fn output(&self) -> &Receiver<PipelineOutput> {
        self.output_taken
            .store(true, std::sync::atomic::Ordering::Relaxed);
        &self.output
    }

    /// Close the input, wait for the engine thread, and return the sharded
    /// engine plus the queued outputs — the complete run's outputs if
    /// [`ShardedPipeline::output`] was never taken.
    pub fn finish(self) -> (ShardedEngine, Vec<PipelineOutput>) {
        let (engine, _, leftover) = self.finish_hooked();
        (engine, leftover)
    }

    /// [`ShardedPipeline::finish`], also handing back the hook.
    pub fn finish_hooked(self) -> (ShardedEngine, Box<dyn PipelineHook>, Vec<PipelineOutput>) {
        drop(self.input);
        let taken = self.output_taken.load(std::sync::atomic::Ordering::Relaxed);
        let ((engine, hook), leftover) = drain_while_finishing(&self.output, self.handle, taken);
        (engine, hook, leftover)
    }
}

/// A flow-reader worker (paper §5.7: "processes that handle incoming flow
/// data", ~120 MB each): decodes export datagrams from its routers and
/// forwards flow batches to the engine.
///
/// IPFIX template caches are per-collector, so *all datagrams of one router
/// must go to the same reader* — shard by `router % n_readers`.
pub fn run_reader(
    datagrams: Receiver<(RouterId, Bytes)>,
    flows_out: Sender<Vec<FlowRecord>>,
    batch_size: usize,
) -> CollectorStats {
    let mut collector = Collector::new();
    let mut batch: Vec<FlowRecord> = Vec::with_capacity(batch_size.max(1));
    for (router, datagram) in datagrams.iter() {
        // Malformed datagrams are counted in the stats and skipped; one bad
        // exporter must not take the reader down.
        let _ = collector.feed(&datagram, router, &mut batch);
        if batch.len() >= batch_size {
            if flows_out.send(std::mem::take(&mut batch)).is_err() {
                break; // engine gone; drain and report
            }
            batch = Vec::with_capacity(batch_size.max(1));
        }
    }
    if !batch.is_empty() {
        let _ = flows_out.send(batch);
    }
    collector.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_lpm::Addr;
    use ipd_netflow::v5::V5Exporter;
    use ipd_topology::IngressPoint;

    fn test_params() -> IpdParams {
        IpdParams {
            ncidr_factor_v4: 0.01,
            ..IpdParams::default()
        }
    }

    fn flows_two_halves(n_per_minute: u32, minutes: u64) -> Vec<FlowRecord> {
        let mut flows = Vec::new();
        for m in 0..minutes {
            for i in 0..n_per_minute {
                let ts = m * 60 + (i as u64 % 60);
                let mut f = FlowRecord::synthetic(ts, Addr::v4(i * 4096), 1, 1);
                f.input_if = 1;
                flows.push(f);
                let g = FlowRecord::synthetic(ts, Addr::v4(0x8000_0000 + i * 4096), 2, 1);
                flows.push(g);
            }
        }
        flows.sort_by_key(|f| f.ts);
        flows
    }

    #[test]
    fn offline_run_classifies_and_snapshots() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut ticks = 0;
        let mut snapshots = Vec::new();
        run_offline(&mut engine, flows_two_halves(200, 10), 5, |o| match o {
            PipelineOutput::Tick(_) => ticks += 1,
            PipelineOutput::Snapshot(s) => snapshots.push(s),
        });
        assert_eq!(ticks, 10, "one tick per crossed bucket + final");
        assert!(!snapshots.is_empty());
        let last = snapshots.last().unwrap();
        let lpm = last.lpm_table();
        assert!(lpm
            .lookup(Addr::v4(0x0100_0000))
            .unwrap()
            .1
            .is_link(IngressPoint::new(1, 1)));
        assert!(lpm
            .lookup(Addr::v4(0x9100_0000))
            .unwrap()
            .1
            .is_link(IngressPoint::new(2, 1)));
    }

    #[test]
    fn threaded_pipeline_matches_offline() {
        let flows = flows_two_halves(100, 6);
        // Offline reference.
        let mut ref_engine = IpdEngine::new(test_params()).unwrap();
        let mut ref_outputs = Vec::new();
        run_offline(&mut ref_engine, flows.clone(), 2, |o| ref_outputs.push(o));

        // Threaded run with the same data.
        let pipeline = IpdPipeline::spawn(PipelineConfig {
            params: test_params(),
            channel_capacity: 16,
            snapshot_every_ticks: 2,
            shards: 1,
            ..Default::default()
        })
        .unwrap();
        let tx = pipeline.input();
        for chunk in flows.chunks(97) {
            tx.send(chunk.to_vec()).unwrap();
        }
        drop(tx);
        let mut outputs: Vec<PipelineOutput> = Vec::new();
        // Drain the live output until the engine thread finishes.
        let (engine, leftover) = {
            // Collect concurrently to avoid backpressure deadlock.
            let rx = pipeline.output().clone();
            let drainer = std::thread::spawn(move || rx.iter().collect::<Vec<_>>());
            let (engine, leftover) = pipeline.finish();
            outputs.extend(drainer.join().unwrap());
            (engine, leftover)
        };
        outputs.extend(leftover);

        assert_eq!(
            engine.stats().flows_ingested,
            ref_engine.stats().flows_ingested
        );
        assert_eq!(engine.stats().ticks, ref_engine.stats().ticks);
        assert_eq!(engine.classified_count(), ref_engine.classified_count());
        // Same number and kinds of outputs in the same order.
        let kinds = |v: &[PipelineOutput]| -> Vec<bool> {
            v.iter()
                .map(|o| matches!(o, PipelineOutput::Snapshot(_)))
                .collect()
        };
        assert_eq!(kinds(&outputs), kinds(&ref_outputs));
    }

    #[test]
    fn readers_decode_and_forward() {
        let (gram_tx, gram_rx) = bounded(64);
        let (flow_tx, flow_rx) = bounded(64);
        let reader = std::thread::spawn(move || run_reader(gram_rx, flow_tx, 10));
        let mut exporter = V5Exporter::new(4, 0, 1000, 0);
        let records: Vec<FlowRecord> = (0..25)
            .map(|i| FlowRecord::synthetic(60, Addr::v4(0x0A000000 + i), 4, 2))
            .collect();
        for gram in exporter.encode(60, &records).unwrap() {
            gram_tx.send((4, gram)).unwrap();
        }
        // A garbage datagram must be survivable.
        gram_tx.send((4, Bytes::from_static(&[0, 9, 9]))).unwrap();
        drop(gram_tx);
        let stats = reader.join().unwrap();
        let got: Vec<FlowRecord> = flow_rx.iter().flatten().collect();
        assert_eq!(got.len(), 25);
        assert_eq!(stats.records, 25);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn late_data_does_not_rewind_ticks() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut driver = BucketDriver::new(60, 1000);
        let mut ticks = Vec::new();
        let mut out = |o: PipelineOutput| {
            if let PipelineOutput::Tick(t) = o {
                ticks.push(t.now);
            }
        };
        for ts in [10u64, 70, 65, 130, 50, 200] {
            driver.observe(&mut engine, ts, &mut out);
            engine.ingest_parts(ts, Addr::v4(1), IngressPoint::new(1, 1), 1.0);
        }
        driver.finish(&mut engine, &mut out);
        // Buckets crossed: 0→1 (tick @60), 1→2 (@120), 2→3 (@180), final (@240).
        assert_eq!(ticks, vec![60, 120, 180, 240]);
    }

    #[test]
    fn one_second_buckets_tick_every_second() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut driver = BucketDriver::new(1, 1000);
        let mut ticks = Vec::new();
        let mut out = |o: PipelineOutput| {
            if let PipelineOutput::Tick(t) = o {
                ticks.push(t.now);
            }
        };
        for ts in [0u64, 1, 3, 3, 4] {
            driver.observe(&mut engine, ts, &mut out);
            engine.ingest_parts(ts, Addr::v4(ts as u32), IngressPoint::new(1, 1), 1.0);
        }
        driver.finish(&mut engine, &mut out);
        // Every crossed 1-second boundary ticks exactly once, including both
        // seconds of the 1→3 jump; the final tick closes bucket 4.
        assert_eq!(ticks, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn duplicate_timestamps_at_bucket_boundary_tick_once() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut driver = BucketDriver::new(60, 1000);
        let mut ticks = Vec::new();
        let mut out = |o: PipelineOutput| {
            if let PipelineOutput::Tick(t) = o {
                ticks.push(t.now);
            }
        };
        // Several flows stamped exactly at the boundary must fire the tick
        // for the crossed bucket once, not once per duplicate.
        for ts in [59u64, 60, 60, 60, 61] {
            driver.observe(&mut engine, ts, &mut out);
        }
        assert_eq!(ticks, vec![60]);
    }

    #[test]
    fn backward_multi_bucket_jump_never_rewinds() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut driver = BucketDriver::new(60, 1000);
        let mut ticks = Vec::new();
        let mut out = |o: PipelineOutput| {
            if let PipelineOutput::Tick(t) = o {
                ticks.push(t.now);
            }
        };
        // A flow far in the future, then stragglers several buckets back:
        // the stragglers are ingested but fire nothing, and the next
        // forward crossing resumes from the *maximum* bucket seen.
        for ts in [310u64, 60, 0, 250, 311] {
            driver.observe(&mut engine, ts, &mut out);
            engine.ingest_parts(ts, Addr::v4(7), IngressPoint::new(1, 1), 1.0);
        }
        driver.observe(&mut engine, 370, &mut out);
        // Nothing fired for the backward jumps; the forward crossing resumes
        // from the maximum bucket with a single tick.
        assert_eq!(
            ticks,
            vec![360],
            "one tick, not one per skipped bucket backwards"
        );
    }

    #[test]
    fn batched_observe_matches_per_flow_observe() {
        // The batch driver used by ShardedPipeline must fire the same ticks
        // at the same data times as the per-flow path, including a batch
        // spanning several boundaries and late data inside the batch.
        let flows: Vec<FlowRecord> = [10u64, 59, 60, 60, 130, 95, 250, 240, 305]
            .iter()
            .map(|&ts| FlowRecord::synthetic(ts, Addr::v4(ts as u32 * 131), 1, 1))
            .collect();

        let mut ref_engine = IpdEngine::new(test_params()).unwrap();
        let mut ref_driver = BucketDriver::new(60, 1000);
        let mut ref_ticks = Vec::new();
        let mut ref_out = |o: PipelineOutput| {
            if let PipelineOutput::Tick(t) = o {
                ref_ticks.push(t.now);
            }
        };
        for f in &flows {
            ref_driver.observe(&mut ref_engine, f.ts, &mut ref_out);
            ref_engine.ingest(f);
        }

        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut driver = BucketDriver::new(60, 1000);
        let mut ticks = Vec::new();
        let mut out = |o: PipelineOutput| {
            if let PipelineOutput::Tick(t) = o {
                ticks.push(t.now);
            }
        };
        driver.ingest_batch(&mut engine, &flows, &mut out);

        assert_eq!(ticks, ref_ticks);
        assert_eq!(engine.stats(), ref_engine.stats());
        assert_eq!(
            engine.snapshot(999).digest(),
            ref_engine.snapshot(999).digest()
        );
    }

    #[test]
    fn reader_survives_engine_disconnect_mid_stream() {
        let (gram_tx, gram_rx) = bounded(64);
        let (flow_tx, flow_rx) = bounded::<Vec<FlowRecord>>(1);
        let reader = std::thread::spawn(move || run_reader(gram_rx, flow_tx, 5));
        let mut exporter = V5Exporter::new(4, 0, 1000, 0);
        let records: Vec<FlowRecord> = (0..30u32)
            .map(|i| FlowRecord::synthetic(60, Addr::v4(0x0A00_0000 + i * 64), 4, 2))
            .collect();
        // One 25-record datagram: `feed` decodes the whole datagram before
        // the batch-size check, so this arrives downstream as a single batch.
        for gram in exporter.encode(60, &records[..25]).unwrap() {
            gram_tx.send((4, gram)).unwrap();
        }
        let first = flow_rx.recv().expect("the first batch is forwarded");
        assert_eq!(first.len(), 25);
        // Kill the downstream "engine" mid-stream, then keep exporting. The
        // reader must decode the next datagram, notice the dead channel on
        // its send, stop forwarding, and still return its decode stats —
        // without panicking and without wedging the datagram producer.
        drop(flow_rx);
        gram_tx.send((4, Bytes::from_static(&[0, 9, 9]))).unwrap(); // malformed: counted, no send
        for gram in exporter.encode(61, &records[25..]).unwrap() {
            gram_tx.send((4, gram)).unwrap();
        }
        drop(gram_tx);
        let stats = reader.join().expect("reader must not panic on disconnect");
        assert_eq!(
            stats.records, 30,
            "everything fed before the failed send is counted"
        );
        assert_eq!(
            stats.errors, 1,
            "the malformed datagram is counted, not fatal"
        );
    }

    #[test]
    fn gap_in_stream_fires_intermediate_ticks_for_decay() {
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut driver = BucketDriver::new(60, 1000);
        let mut n = 0;
        let mut out = |o: PipelineOutput| {
            if matches!(o, PipelineOutput::Tick(_)) {
                n += 1;
            }
        };
        driver.observe(&mut engine, 30, &mut out);
        driver.observe(&mut engine, 630, &mut out);
        assert_eq!(n, 10, "a 10-bucket gap fires 10 ticks");
    }
}
