//! Multi-core IPD: one logical engine, K-way parallel execution.
//!
//! [`ShardedEngine`] holds exactly the state an [`IpdEngine`] holds — one
//! range trie per address family, one ingress intern table, one stats
//! block — and parallelizes the two hot paths over disjoint subtrees:
//!
//! * **Shard key.** With `K = 2^d` shards, the top `d` bits of the (masked)
//!   source address select the shard; shard `i` owns the depth-`d` subtree
//!   under prefix `i` of each family. Because ranges shallower than `d` may
//!   exist (the trie starts as a single root leaf), the actual work units
//!   are the trie's *frontier* at depth `d`: every subtree rooted at depth
//!   `d` plus every leaf sitting above it ([`Node::frontier_at_depth`]).
//!   These units are disjoint and cover the space, so `&mut` handles to all
//!   of them can be farmed out to scoped threads at once.
//! * **Stage 1** ([`ShardedEngine::ingest_batch`]): ingress points are
//!   interned *sequentially in stream order* (so `IngressId` assignment is
//!   identical to the unsharded engine), then flows are routed to their
//!   owning frontier unit and applied in parallel — per unit still in
//!   stream order, so every per-IP/per-range accumulator sees the exact
//!   float addition sequence the unsharded engine produces.
//! * **Stage 2** ([`ShardedEngine::tick`]): phase A fully ticks each
//!   frontier subtree in parallel (each with its own [`TickReport`]); phase
//!   B runs the remaining join/collapse pass on the internal nodes *above*
//!   the frontier sequentially ([`Node::tick_top`]). Together the two
//!   phases perform the same node-local operations in the same bottom-up
//!   order per path as `IpdEngine::tick`.
//!
//! **Determinism contract.** For any flow stream fed in the same order and
//! any shard count K, the engine state after each `ingest_batch`/`tick` is
//! *bit-for-bit identical* to the unsharded engine's (in `CountMode::Flows`;
//! see below), independent of thread scheduling. Snapshots are therefore
//! byte-identical, and `Snapshot::digest()` can be compared across K.
//! Tick reports are returned in canonical form — counters summed, range
//! lists sorted by prefix — which equals the unsharded report as a
//! *multiset* (the unsharded sweep emits in DFS order instead).
//!
//! The one caveat is inherited from the unsharded engine, not introduced
//! here: in `CountMode::Bytes`, `MonitorState::totals` sums f64 weights in
//! `HashMap` iteration order, which is seeded randomly per process. Flows
//! mode only ever sums exactly-representable integer counts, where every
//! summation order yields the same bits.

use ipd_lpm::{Af, Prefix};
use ipd_netflow::FlowRecord;
use ipd_topology::IngressPoint;

use crate::engine::{EngineStats, IpdEngine, TickReport};
use crate::ingress::{IngressId, IngressRegistry};
use crate::output::Snapshot;
use crate::params::{CountMode, IpdParams, ParamError};
use crate::telemetry::ShardCounters;
use crate::trie::{Node, TickCtx};

/// Hard ceiling on the shard count: 256 shards (depth 8) is already far
/// beyond any host this targets, and keeps the slot-routing table small.
pub const MAX_SHARDS: usize = 256;

/// A multi-core wrapper around the IPD state: same trie, same results,
/// K-way parallel ingest and tick. See the module docs for the shard-key
/// scheme and the determinism contract.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    inner: IpdEngine,
    shards: usize,
    depth: u8,
    /// Per-slot ingest counters; disabled (empty) unless
    /// [`ShardedEngine::attach_telemetry`] was called. Observational only —
    /// never read back into routing or trie state.
    shard_counters: ShardCounters,
}

/// One flow, pre-interned and pre-masked, ready for the trie walk.
struct PreparedFlow {
    bits: u128,
    ts: u64,
    id: IngressId,
    weight: f64,
    af: Af,
}

impl ShardedEngine {
    /// Build a sharded engine. `shards` must be a power of two in
    /// 1..=[`MAX_SHARDS`]; 1 degenerates to the unsharded engine run on the
    /// calling thread.
    pub fn new(params: IpdParams, shards: usize) -> Result<Self, ParamError> {
        Self::from_engine(IpdEngine::new(params)?, shards)
    }

    /// Wrap an existing engine (state is preserved — sharding is purely an
    /// execution strategy).
    pub fn from_engine(engine: IpdEngine, shards: usize) -> Result<Self, ParamError> {
        if shards == 0 || shards > MAX_SHARDS || !shards.is_power_of_two() {
            return Err(ParamError::BadShardCount(shards));
        }
        let depth = shards.trailing_zeros() as u8;
        Ok(ShardedEngine {
            inner: engine,
            shards,
            depth,
            shard_counters: ShardCounters::default(),
        })
    }

    /// Register per-shard flow counters (`ipd_shard_flows_total{shard=..}`)
    /// in `telemetry`. A disabled registry leaves counting off entirely.
    pub fn attach_telemetry(&mut self, telemetry: &ipd_telemetry::Telemetry) {
        if telemetry.is_enabled() {
            self.shard_counters = ShardCounters::register(telemetry, self.shards);
        }
    }

    /// The configured shard count K.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The wrapped engine (full read access to the logical state).
    pub fn engine(&self) -> &IpdEngine {
        &self.inner
    }

    /// Unwrap back into the plain engine.
    pub fn into_engine(self) -> IpdEngine {
        self.inner
    }

    /// Export the complete logical state — identical to the wrapped
    /// engine's [`IpdEngine::dump_state`]; the shard count is an execution
    /// strategy, not state, so checkpoints are shard-count-free.
    pub fn dump_state(&self) -> crate::persist::EngineStateDump {
        self.inner.dump_state()
    }

    /// Rebuild a sharded engine from a dump at *any* valid shard count —
    /// including one different from the engine the dump was taken from.
    pub fn restore_state(
        dump: crate::persist::EngineStateDump,
        shards: usize,
    ) -> Result<Self, crate::persist::RestoreError> {
        let engine = IpdEngine::restore_state(dump)?;
        Self::from_engine(engine, shards).map_err(crate::persist::RestoreError::Params)
    }

    /// The engine's parameters.
    pub fn params(&self) -> &IpdParams {
        self.inner.params()
    }

    /// The ingress intern table.
    pub fn registry(&self) -> &IngressRegistry {
        self.inner.registry()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &EngineStats {
        self.inner.stats()
    }

    /// Number of live leaf ranges (both families).
    pub fn range_count(&self) -> usize {
        self.inner.range_count()
    }

    /// Number of classified ranges.
    pub fn classified_count(&self) -> usize {
        self.inner.classified_count()
    }

    /// Number of per-IP state entries held for unclassified ranges.
    pub fn monitored_ip_count(&self) -> usize {
        self.inner.monitored_ip_count()
    }

    /// Stage 1 for a single flow — sequential passthrough; use
    /// [`ShardedEngine::ingest_batch`] for the parallel path.
    pub fn ingest(&mut self, flow: &FlowRecord) {
        if !self.shard_counters.is_empty() {
            let af = flow.af();
            let bits = flow.src.masked(self.inner.params().cidr_max(af)).bits();
            self.shard_counters.add(self.slot_of(bits, af.width()), 1);
        }
        self.inner.ingest(flow);
    }

    /// Shard slot for a masked address: the top `depth` bits.
    fn slot_of(&self, bits: u128, width: u8) -> usize {
        if self.depth == 0 {
            0
        } else {
            (bits >> (width - self.depth)) as usize
        }
    }

    /// Stage 1 with explicit parts — sequential passthrough.
    pub fn ingest_parts(
        &mut self,
        ts: u64,
        src: ipd_lpm::Addr,
        ingress: IngressPoint,
        weight: f64,
    ) {
        self.inner.ingest_parts(ts, src, ingress, weight);
    }

    /// Stage 1 over a batch, executed on up to K threads.
    ///
    /// Interning happens first, sequentially, in stream order; the trie
    /// walks then run in parallel per frontier unit, each unit applying its
    /// flows in stream order. The result is bit-for-bit the state
    /// `IpdEngine::ingest` would produce flow by flow.
    pub fn ingest_batch(&mut self, flows: &[FlowRecord]) {
        if flows.is_empty() {
            return;
        }
        let depth = self.depth;
        let IpdEngine {
            params,
            root_v4,
            root_v6,
            registry,
            stats,
        } = &mut self.inner;
        let prepared: Vec<PreparedFlow> = flows
            .iter()
            .map(|f| {
                let weight = match params.count_mode {
                    CountMode::Flows => 1.0,
                    CountMode::Bytes => f.bytes as f64,
                };
                let af = f.af();
                PreparedFlow {
                    bits: f.src.masked(params.cidr_max(af)).bits(),
                    ts: f.ts,
                    id: registry.intern(IngressPoint::new(f.router, f.input_if)),
                    weight,
                    af,
                }
            })
            .collect();
        stats.flows_ingested += flows.len() as u64;

        let mut entries = Vec::new();
        root_v4.frontier_at_depth(Prefix::root(Af::V4), depth, &mut entries);
        let v4_units = entries.len();
        root_v6.frontier_at_depth(Prefix::root(Af::V6), depth, &mut entries);

        // Route each flow to its owning unit via the top `depth` address
        // bits, preserving stream order within each unit.
        let v4_slots = slot_table(&entries[..v4_units], depth);
        let v6_slots = slot_table(&entries[v4_units..], depth);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); entries.len()];
        let mut slot_flows = vec![0u64; self.shard_counters.len()];
        for (i, p) in prepared.iter().enumerate() {
            let width = p.af.width();
            let slot = if depth == 0 {
                0
            } else {
                (p.bits >> (width - depth)) as usize
            };
            if let Some(n) = slot_flows.get_mut(slot) {
                *n += 1;
            }
            let unit = match p.af {
                Af::V4 => v4_slots[slot],
                Af::V6 => v4_units + v6_slots[slot],
            };
            groups[unit].push(i);
        }
        for (slot, n) in slot_flows.into_iter().enumerate() {
            if n > 0 {
                self.shard_counters.add(slot, n);
            }
        }

        let busy = groups.iter().filter(|g| !g.is_empty()).count();
        if busy <= 1 {
            for ((prefix, node), group) in entries.into_iter().zip(&groups) {
                let width = prefix.af().width();
                for &i in group {
                    let p = &prepared[i];
                    node.ingest_from(prefix.len(), p.bits, width, p.ts, p.id, p.weight);
                }
            }
            return;
        }
        std::thread::scope(|s| {
            for ((prefix, node), group) in entries.into_iter().zip(groups) {
                if group.is_empty() {
                    continue;
                }
                let width = prefix.af().width();
                let prepared = &prepared;
                s.spawn(move || {
                    for &i in &group {
                        let p = &prepared[i];
                        node.ingest_from(prefix.len(), p.bits, width, p.ts, p.id, p.weight);
                    }
                });
            }
        });
    }

    /// Stage 2, executed on up to K threads per family: phase A ticks every
    /// frontier subtree in parallel, phase B finishes the join/collapse pass
    /// above the frontier, and the per-unit reports are merged into one
    /// canonical report (counters summed, range lists sorted by prefix).
    pub fn tick(&mut self, now: u64) -> TickReport {
        let depth = self.depth;
        let IpdEngine {
            params,
            root_v4,
            root_v6,
            registry,
            stats,
        } = &mut self.inner;
        let params: &IpdParams = params;
        let registry: &IngressRegistry = registry;

        let mut entries = Vec::new();
        root_v4.frontier_at_depth(Prefix::root(Af::V4), depth, &mut entries);
        root_v6.frontier_at_depth(Prefix::root(Af::V6), depth, &mut entries);

        let tick_unit = |prefix: Prefix, node: &mut Node| -> TickReport {
            let mut report = TickReport::new(now);
            let mut ctx = TickCtx {
                now,
                params,
                registry,
                report: &mut report,
            };
            node.tick(prefix, &mut ctx);
            report
        };
        let mut reports: Vec<TickReport> = if entries.len() <= 1 {
            entries.into_iter().map(|(p, n)| tick_unit(p, n)).collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = entries
                    .into_iter()
                    .map(|(p, n)| s.spawn(move || tick_unit(p, n)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard tick threads do not panic"))
                    .collect()
            })
        };

        let mut top = TickReport::new(now);
        {
            let mut ctx = TickCtx {
                now,
                params,
                registry,
                report: &mut top,
            };
            root_v4.tick_top(Prefix::root(Af::V4), depth, &mut ctx);
            root_v6.tick_top(Prefix::root(Af::V6), depth, &mut ctx);
        }
        reports.push(top);
        let report = merge_reports(now, reports);

        stats.ticks += 1;
        stats.splits += report.splits as u64;
        stats.joins += report.joins as u64;
        stats.classifications += report.newly_classified.len() as u64;
        stats.drops += (report.dropped.len() + report.invalidated.len()) as u64;
        report
    }

    /// Snapshot of every live range — same code path as the unsharded
    /// engine, hence byte-identical output.
    pub fn snapshot(&self, ts: u64) -> Snapshot {
        self.inner.snapshot(ts)
    }
}

/// Map each of the `2^depth` shard slots of one family to the index of the
/// frontier unit owning it. A unit at prefix length `j <= depth` owns the
/// `2^(depth-j)` consecutive slots under its prefix.
fn slot_table(units: &[(Prefix, &mut Node)], depth: u8) -> Vec<usize> {
    let mut table = Vec::with_capacity(1usize << depth);
    for (idx, (prefix, _)) in units.iter().enumerate() {
        let covered = 1usize << (depth - prefix.len());
        table.extend(std::iter::repeat_n(idx, covered));
    }
    debug_assert_eq!(
        table.len(),
        1usize << depth,
        "frontier must cover the space"
    );
    table
}

/// Fold per-unit reports into one canonical report: counters summed, range
/// lists concatenated and sorted by prefix — a total order independent of
/// shard count and thread scheduling.
fn merge_reports(now: u64, reports: Vec<TickReport>) -> TickReport {
    let mut out = TickReport::new(now);
    for r in reports {
        out.newly_classified.extend(r.newly_classified);
        out.dropped.extend(r.dropped);
        out.invalidated.extend(r.invalidated);
        out.lb_suspects.extend(r.lb_suspects);
        out.splits += r.splits;
        out.joins += r.joins;
        out.collapses += r.collapses;
        out.bundles += r.bundles;
        out.expired_ips += r.expired_ips;
    }
    // Each list names every prefix at most once per tick, so an unstable
    // sort by prefix alone is already a total order.
    out.newly_classified.sort_unstable_by_key(|a| a.0);
    out.dropped.sort_unstable();
    out.invalidated.sort_unstable();
    out.lb_suspects.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_lpm::Addr;

    fn test_params() -> IpdParams {
        IpdParams {
            ncidr_factor_v4: 0.01,
            ncidr_factor_v6: 1e-9,
            ..IpdParams::default()
        }
    }

    fn two_halves(n: u32, ts: u64) -> Vec<FlowRecord> {
        let mut flows = Vec::new();
        for i in 0..n {
            flows.push(FlowRecord::synthetic(ts, Addr::v4(i * 4096), 1, 1));
            flows.push(FlowRecord::synthetic(
                ts,
                Addr::v4(0x8000_0000 + i * 4096),
                2,
                1,
            ));
        }
        flows
    }

    #[test]
    fn rejects_bad_shard_counts() {
        for bad in [0usize, 3, 6, 12, 512] {
            assert_eq!(
                ShardedEngine::new(test_params(), bad).unwrap_err(),
                ParamError::BadShardCount(bad)
            );
        }
        for ok in [1usize, 2, 4, 8, 256] {
            assert_eq!(ShardedEngine::new(test_params(), ok).unwrap().shards(), ok);
        }
    }

    #[test]
    fn matches_unsharded_engine_bit_for_bit() {
        let flows = two_halves(600, 30);
        let mut reference = IpdEngine::new(test_params()).unwrap();
        for f in &flows {
            reference.ingest(f);
        }
        let mut ref_report = reference.tick(60);
        ref_report.newly_classified.sort_unstable_by_key(|a| a.0);

        for k in [1usize, 2, 8, 64] {
            let mut sharded = ShardedEngine::new(test_params(), k).unwrap();
            sharded.ingest_batch(&flows);
            let report = sharded.tick(60);
            assert_eq!(
                report.newly_classified, ref_report.newly_classified,
                "K={k}"
            );
            assert_eq!(report.splits, ref_report.splits, "K={k}");
            assert_eq!(sharded.stats(), reference.stats(), "K={k}");
            assert_eq!(
                sharded.snapshot(60).digest(),
                reference.snapshot(60).digest(),
                "K={k}"
            );
        }
    }

    #[test]
    fn join_across_the_shard_frontier() {
        // Classify the two /1 halves to the *same* ingress: the join back
        // into /0 happens above any shard frontier deeper than 1, i.e. in
        // the sequential phase B — exactly the cross-shard case.
        let mut flows = Vec::new();
        for i in 0..600u32 {
            flows.push(FlowRecord::synthetic(30, Addr::v4(i * 4096), 1, 1));
            flows.push(FlowRecord::synthetic(
                30,
                Addr::v4(0x8000_0000 + i * 4096),
                2,
                1,
            ));
        }
        let run = |k: usize| {
            let mut e = ShardedEngine::new(test_params(), k).unwrap();
            e.ingest_batch(&flows);
            e.tick(60);
            // Move the high half to ingress 1 as well; once both halves are
            // classified to router 1 they must join into 0.0.0.0/0.
            let mut joins = 0;
            let mut now = 60;
            for round in 0..10u64 {
                let shift: Vec<FlowRecord> = (0..600u32)
                    .flat_map(|i| {
                        [
                            FlowRecord::synthetic(61 + round, Addr::v4(i * 4096), 1, 1),
                            FlowRecord::synthetic(
                                61 + round,
                                Addr::v4(0x8000_0000 + i * 4096),
                                1,
                                1,
                            ),
                        ]
                    })
                    .collect();
                e.ingest_batch(&shift);
                now += 60;
                joins += e.tick(now).joins;
                if joins > 0 {
                    break;
                }
            }
            (joins, e.snapshot(now).digest(), e.stats().clone())
        };
        let (joins1, digest1, stats1) = run(1);
        assert!(joins1 > 0, "equal halves must join in the reference run");
        for k in [2usize, 8] {
            let (joins, digest, stats) = run(k);
            assert_eq!(joins, joins1, "K={k}");
            assert_eq!(digest, digest1, "K={k}");
            assert_eq!(stats, stats1, "K={k}");
        }
    }

    #[test]
    fn slot_table_covers_space_with_shallow_leaves() {
        let mut root = Node::empty();
        let mut entries = Vec::new();
        root.frontier_at_depth(Prefix::root(Af::V4), 3, &mut entries);
        assert_eq!(entries.len(), 1, "a fresh trie is a single shallow leaf");
        let table = slot_table(&entries, 3);
        assert_eq!(table, vec![0; 8]);
    }

    #[test]
    fn v6_flows_route_to_v6_units() {
        let mut e = ShardedEngine::new(test_params(), 4).unwrap();
        let flows: Vec<FlowRecord> = (0..64u32)
            .map(|i| {
                FlowRecord::synthetic(
                    30,
                    Addr::v6((0x2001_0db8u128 << 96) | (u128::from(i) << 40)),
                    9,
                    2,
                )
            })
            .collect();
        e.ingest_batch(&flows);
        let report = e.tick(60);
        assert!(report
            .newly_classified
            .iter()
            .any(|(p, ing)| p.af() == Af::V6 && ing.is_link(IngressPoint::new(9, 2))));
    }
}
