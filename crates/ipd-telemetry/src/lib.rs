//! # ipd-telemetry — observability substrate for the IPD pipeline
//!
//! The paper's deployment runs IPD continuously for six years against
//! ~3,000 routers (§5.7); that is only operable with live visibility into
//! drop rates, stage latency, and per-stage throughput. This crate is the
//! metrics layer every stage of this reproduction reports into:
//!
//! * [`Telemetry`] — a lock-light registry of named metrics. Registration
//!   (cold path) takes a mutex; the handles it returns touch only atomics.
//! * [`Counter`], [`Gauge`], [`Histogram`] — allocation-free hot-path
//!   handles. A handle obtained from [`Telemetry::disabled`] is a no-op
//!   that compiles down to a branch on an `Option` discriminant, which is
//!   the "zero-cost when disabled" contract the pipeline relies on.
//! * [`Histogram::start_timer`] — span timing: a guard that observes its
//!   elapsed nanoseconds on drop. Disabled handles never read the clock.
//! * [`MetricsSnapshot`] — a deterministic, name-sorted view of every
//!   registered metric, renderable as Prometheus text exposition format
//!   ([`MetricsSnapshot::to_prometheus_text`]) or a human table
//!   ([`MetricsSnapshot::render_table`]).
//! * [`MetricsServer`] — a dependency-free HTTP endpoint serving
//!   `GET /metrics` (wired to `ipd-tool run --metrics-addr`).
//!
//! ## The determinism contract
//!
//! Every metric declares a [`Class`]:
//!
//! * [`Class::Deterministic`] — the value is a pure function of the input
//!   flow stream (flow counts, ticks, splits, trie sizes, …). For a fixed
//!   seed these are bit-for-bit identical on every run and every machine;
//!   the golden-metrics test pins them.
//! * [`Class::Timing`] — wall-clock measurements (stage latency, tick
//!   duration) and scheduling-dependent values (channel depth). Exported,
//!   but excluded from [`MetricsSnapshot::deterministic`].
//!
//! Telemetry is *observational only*: nothing in this crate feeds back
//! into the engine, so a run with telemetry attached produces bit-for-bit
//! the same [`ipd::Snapshot`] digest as a run without — a property the
//! differential harness in `ipd-core` proves end to end.
//!
//! ## Observability v2 (freshness + postmortem + introspection)
//!
//! * [`Watermark`] — per-stage flow-time high-water marks; the difference
//!   between two stages' marks is the pipeline's per-stage lag, the wall
//!   age of a mark is its freshness. Exported as `Timing`-class samples.
//! * [`FlightRecorder`] — an always-on, fixed-size, lock-free ring of
//!   structured events ([`Telemetry::flight`]), dumpable on demand, over
//!   the serve protocol, and on panic ([`install_panic_dump`]) or stall.
//! * [`Telemetry::derived_gauge`] — snapshot-time computed gauges such as
//!   `ipd_serve_epoch_age_seconds`.
//! * [`StallDetector`] — flags stages whose upstream advances while their
//!   own watermark update counter stands still.
//! * [`StatusHub`] — named JSON sections served at `GET /statusz` beside
//!   `/metrics`, with a minimal in-tree JSON reader ([`Json`]) for
//!   `ipd-tool top`.
//!
//! All of it obeys the same inertness contract: disabled handles are
//! one-branch no-ops, and enabled handles only observe.
//!
//! With the `trace` cargo feature, the [`trace`] module adds lightweight
//! span/event tracing with `target=level` filtering (`off` silences a
//! target).

mod flight;
mod http;
mod metrics;
mod registry;
mod snapshot;
mod stall;
mod status;
mod watermark;

#[cfg(feature = "trace")]
pub mod trace;

pub use flight::{
    decode_events, encode_events, install_panic_dump, render_events, EventKind, FlightCodecError,
    FlightEvent, FlightRecorder, EVENT_WIRE_BYTES, FLIGHT_CAPACITY, MAX_DUMP_EVENTS,
};
pub use http::MetricsServer;
pub use metrics::{Counter, Gauge, Histogram, Timer};
pub use registry::{Class, Kind, Telemetry};
pub use snapshot::{validate_prometheus_text, MetricSample, MetricValue, MetricsSnapshot};
pub use stall::{StallDetector, StallHandle};
pub use status::{json_f64, json_string, Json, StatusHub};
pub use watermark::{monotonic_nanos, Watermark, WatermarkSnapshot};

/// Default bucket bounds (in nanoseconds) for timing histograms: 1 µs to
/// ~16 s in powers of four — wide enough for a per-datagram decode and a
/// full stage-2 sweep over a hundred thousand ranges.
pub const TIMING_BUCKETS_NANOS: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
    16_777_216_000,
];

/// Fine-grained bucket bounds (in nanoseconds) for sub-microsecond
/// operations — a single LPM lookup in the serving layer's flattened table
/// lands around 100 ns, two orders of magnitude below the first
/// [`TIMING_BUCKETS_NANOS`] bound: 64 ns to ~1 ms in powers of four.
pub const TIMING_BUCKETS_FINE_NANOS: &[u64] =
    &[64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

/// Default bucket bounds for size-ish deterministic histograms (batch
/// sizes, classifications per tick): 1 to 65536 in powers of four.
pub const SIZE_BUCKETS: &[u64] = &[1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536];
