//! Hot-path metric handles: plain atomics behind an `Option`, so a handle
//! from a disabled registry costs one predictable branch and no clock read.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A cache-line-padded atomic cell. Counters that different shard threads
/// hammer concurrently each get their own line, so shard A's increments
/// never bounce shard B's line (the "shard-aware" part of the registry).
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

/// Monotonically increasing counter.
///
/// Cloning shares the underlying cell. The disabled variant (from
/// [`crate::Telemetry::disabled`]) is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<PaddedU64>>);

impl Counter {
    /// A no-op counter (what disabled registries hand out).
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.0.load(Ordering::Relaxed))
    }
}

/// Last-write-wins instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// A no-op gauge.
    pub fn disabled() -> Self {
        Gauge(None)
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for disabled handles).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Shared cells of one histogram: fixed bucket bounds chosen at
/// registration, one atomic per bucket plus the +Inf overflow, and the
/// running sum/count. `observe` is allocation-free.
#[derive(Debug)]
pub(crate) struct HistogramCells {
    pub(crate) bounds: Vec<u64>,
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) overflow: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl HistogramCells {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        HistogramCells {
            bounds: bounds.to_vec(),
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Fixed-bucket histogram (cumulative-bucket semantics are produced at
/// snapshot time; the live cells hold per-bucket counts).
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCells>>);

impl Histogram {
    /// A no-op histogram.
    pub fn disabled() -> Self {
        Histogram(None)
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let Some(cells) = &self.0 else { return };
        // Bucket vectors are short (≤ ~16); a linear scan beats binary
        // search on branch predictability and stays allocation-free.
        match cells.bounds.iter().position(|&b| v <= b) {
            Some(i) => cells.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => cells.overflow.fetch_add(1, Ordering::Relaxed),
        };
        cells.sum.fetch_add(v, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations so far (0 for disabled handles).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Start a span timer that observes its elapsed nanoseconds when
    /// dropped. A disabled histogram returns a timer that never reads the
    /// clock — `Instant::now` is the expensive part of span timing, so
    /// disabled spans cost only the discriminant branch.
    #[inline]
    pub fn start_timer(&self) -> Timer {
        Timer {
            histogram: self.clone(),
            started: self.0.as_ref().map(|_| Instant::now()),
        }
    }
}

/// Span-timing guard from [`Histogram::start_timer`].
#[derive(Debug)]
pub struct Timer {
    histogram: Histogram,
    started: Option<Instant>,
}

impl Timer {
    /// Stop early and record; equivalent to dropping the guard.
    pub fn observe(self) {}
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(started) = self.started.take() {
            let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.histogram.observe(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 0);
        let h = Histogram::disabled();
        h.observe(123);
        drop(h.start_timer());
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let cells = Arc::new(HistogramCells::new(&[10, 100]));
        let h = Histogram(Some(cells.clone()));
        for v in [1, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(cells.buckets[0].load(Ordering::Relaxed), 2); // 1, 10
        assert_eq!(cells.buckets[1].load(Ordering::Relaxed), 2); // 11, 100
        assert_eq!(cells.overflow.load(Ordering::Relaxed), 2); // 101, 5000
        assert_eq!(cells.count.load(Ordering::Relaxed), 6);
        assert_eq!(
            cells.sum.load(Ordering::Relaxed),
            1 + 10 + 11 + 100 + 101 + 5000
        );
    }

    #[test]
    fn timer_records_elapsed() {
        let cells = Arc::new(HistogramCells::new(&[1_000_000_000]));
        let h = Histogram(Some(cells));
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }
}
