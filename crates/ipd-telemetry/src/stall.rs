//! Stall detection over watermarks: a stage whose upstream keeps advancing
//! while its own update counter stands still is wedged — a hung shard, a
//! blocked channel, a deadlocked publisher. The detector polls watermark
//! update counters (pure reads, no feedback into the pipeline), records a
//! [`EventKind::Stall`] flight event plus a counter increment for each
//! newly wedged stage, and dumps the recorder tail to stderr so the
//! evidence survives even if the process is then killed.
//!
//! The decision procedure lives in [`StallDetector::poll_once`], a pure
//! seam the unit tests drive directly; [`StallDetector::spawn`] wraps it in
//! a background poll thread for production use.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::flight::{render_events, EventKind, FlightRecorder};
use crate::metrics::Counter;
use crate::watermark::Watermark;

struct Stage {
    name: String,
    watermark: Watermark,
    last_updates: u64,
    /// Latched while wedged so one stall produces one event, not one per
    /// poll; clears when the stage makes progress again.
    stalled: bool,
}

/// Watches downstream stages against one upstream reference watermark.
pub struct StallDetector {
    source: Watermark,
    source_last_updates: u64,
    stages: Vec<Stage>,
    recorder: FlightRecorder,
    stalls: Counter,
    dump_on_stall: bool,
}

impl StallDetector {
    /// A detector with `source` as the upstream progress reference.
    /// `stalls` is bumped once per newly detected stall (register it as
    /// e.g. `ipd_stalls_total`).
    pub fn new(source: Watermark, recorder: FlightRecorder, stalls: Counter) -> Self {
        StallDetector {
            source_last_updates: source.updates(),
            source,
            stages: Vec::new(),
            recorder,
            stalls,
            dump_on_stall: true,
        }
    }

    /// Disable the stderr flight dump on stall (tests).
    pub fn without_dump(mut self) -> Self {
        self.dump_on_stall = false;
        self
    }

    /// Watch a downstream stage. Order of registration is the stage index
    /// reported in the stall flight event's `a` field.
    pub fn watch(&mut self, name: &str, watermark: Watermark) {
        self.stages.push(Stage {
            name: name.to_string(),
            last_updates: watermark.updates(),
            watermark,
            stalled: false,
        });
    }

    /// One poll: returns the names of stages that *newly* stalled since the
    /// previous poll. A stage stalls when the source advanced over the poll
    /// interval but the stage's update counter did not move and its flow
    /// time trails the source's. Recovery (the counter moving again)
    /// re-arms the stage for future detection.
    pub fn poll_once(&mut self) -> Vec<String> {
        let source_updates = self.source.updates();
        let source_advanced = source_updates > self.source_last_updates;
        self.source_last_updates = source_updates;
        let source_flow_ts = self.source.flow_ts();

        let mut newly_stalled = Vec::new();
        for (idx, stage) in self.stages.iter_mut().enumerate() {
            let updates = stage.watermark.updates();
            let advanced = updates > stage.last_updates;
            stage.last_updates = updates;
            if advanced {
                stage.stalled = false;
                continue;
            }
            let behind = stage.watermark.flow_ts() < source_flow_ts;
            if source_advanced && behind && !stage.stalled {
                stage.stalled = true;
                self.stalls.inc();
                self.recorder.record(
                    EventKind::Stall,
                    source_flow_ts,
                    idx as u64,
                    stage.watermark.flow_ts(),
                    updates,
                );
                newly_stalled.push(stage.name.clone());
            }
        }
        if !newly_stalled.is_empty() && self.dump_on_stall {
            eprintln!(
                "ipd: stall detected in stage(s) {:?}; flight recorder tail:",
                newly_stalled
            );
            eprint!("{}", render_events(&self.recorder.tail(32)));
        }
        newly_stalled
    }

    /// Run `poll_once` every `interval` on a background thread until the
    /// returned handle is stopped or dropped.
    pub fn spawn(mut self, interval: Duration) -> StallHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("ipd-stall-detector".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    self.poll_once();
                }
            })
            .expect("spawn stall detector");
        StallHandle {
            stop,
            join: Some(join),
        }
    }
}

/// Handle to a running detector thread; stops and joins on drop.
pub struct StallHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl StallHandle {
    /// Stop the poll loop and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for StallHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Telemetry;

    fn setup() -> (Telemetry, Watermark, Watermark, StallDetector) {
        let t = Telemetry::new();
        let source = t.watermark("ipd_test_source", "upstream");
        let stage = t.watermark("ipd_test_stage", "downstream");
        let stalls = t.counter("ipd_test_stalls_total", "stalls");
        let mut det = StallDetector::new(source.clone(), t.flight(), stalls).without_dump();
        det.watch("stage", stage.clone());
        (t, source, stage, det)
    }

    #[test]
    fn wedged_stage_surfaces_within_one_poll_interval() {
        let (t, source, _stage, mut det) = setup();
        // Interval 1: upstream advances, the stage never moves.
        source.record(100);
        assert_eq!(det.poll_once(), vec!["stage".to_string()]);
        assert_eq!(
            t.snapshot().counter("ipd_test_stalls_total"),
            Some(1),
            "stall counter bumped"
        );
        let events = t.flight().dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Stall as u8);
        assert_eq!(events[0].ts, 100, "stall event carries the source flow ts");
        assert_eq!(events[0].a, 0, "stage index");
    }

    #[test]
    fn stall_reports_once_until_recovery() {
        let (t, source, stage, mut det) = setup();
        source.record(100);
        assert_eq!(det.poll_once().len(), 1);
        // Still wedged: no duplicate report while latched.
        source.record(200);
        assert!(det.poll_once().is_empty());
        // Recovery re-arms…
        stage.record(200);
        assert!(det.poll_once().is_empty());
        // …so a second wedge is reported again.
        source.record(300);
        assert_eq!(det.poll_once(), vec!["stage".to_string()]);
        assert_eq!(t.snapshot().counter("ipd_test_stalls_total"), Some(2));
    }

    #[test]
    fn keeping_pace_never_stalls() {
        let (t, source, stage, mut det) = setup();
        for ts in [60u64, 120, 180] {
            source.record(ts);
            stage.record(ts);
            assert!(det.poll_once().is_empty());
        }
        // Idle pipeline (nothing advances) is not a stall either.
        assert!(det.poll_once().is_empty());
        assert_eq!(t.snapshot().counter("ipd_test_stalls_total"), Some(0));
    }

    #[test]
    fn spawned_detector_stops_cleanly() {
        let (_t, source, _stage, det) = setup();
        source.record(60);
        let handle = det.spawn(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        handle.stop();
    }
}
