//! Flight recorder: an always-on, fixed-size, lock-free ring of structured
//! binary events — the postmortem layer the `trace` feature (format-on-emit,
//! off by default) cannot provide.
//!
//! Every live [`crate::Telemetry`] registry owns one ring
//! ([`crate::Telemetry::flight`]); a disabled registry hands out no-op
//! recorders, so the inertness contract extends to the recorder unchanged.
//! Writers claim a slot with one `fetch_add` and publish it under a per-slot
//! seqlock (sequence odd while the write is in flight, even once stable);
//! when the ring wraps, the oldest events are overwritten — the recorder
//! keeps the *last* [`FLIGHT_CAPACITY`] events, always. Readers
//! ([`FlightRecorder::dump`]) skip slots whose write is in flight and sort
//! the survivors by sequence number, oldest first. Every field is an
//! atomic: a torn read is impossible by construction, the seqlock only
//! guards against *mixed* reads (fields from two different events in one
//! decoded record).
//!
//! Events are 5-tuple payloads `(kind, ts, a, b, c)` — the meaning of
//! `ts`/`a`/`b`/`c` is per-kind (see [`EventKind`]). The wire codec
//! ([`encode_events`]/[`decode_events`]) is total and canonical: any
//! payload that decodes re-encodes to the same bytes, which is what the
//! `fuzz_flight` target asserts.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// Ring capacity in events (power of two; ~160 KiB of atomics).
pub const FLIGHT_CAPACITY: usize = 4096;

/// Hard cap on events in one encoded dump — bounds the allocation a
/// malicious or corrupt frame can demand from [`decode_events`].
pub const MAX_DUMP_EVENTS: usize = 65_536;

/// Bytes per encoded event: kind u8 + seq/ts/a/b/c as u64 LE.
pub const EVENT_WIRE_BYTES: usize = 1 + 8 * 5;

/// Well-known event kinds. The wire format carries a raw `u8` so decoding
/// is total (unknown kinds round-trip untouched and render as `kind=N`);
/// this enum only names the codes the system emits today.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A fresh epoch became visible to readers.
    /// `ts`=bucket-close flow time, `a`=epoch, `b`=changes applied, `c`=store entries.
    EpochPublished = 1,
    /// A per-bucket delta was applied to the live store.
    /// `ts`=bucket-close flow time, `a`=epoch, `b`=change count, `c`=garbage rows.
    DeltaApplied = 2,
    /// The live store was rebuilt to shed garbage.
    /// `ts`=bucket-close flow time, `a`=epoch, `b`=garbage shed, `c`=entries kept.
    Rotation = 3,
    /// An epoch was persisted to the longitudinal store.
    /// `ts`=epoch flow time, `a`=epoch, `b`=segment count, `c`=bytes on disk.
    HistAppend = 4,
    /// A delta run was folded into a keyframe.
    /// `ts`=wall seconds, `a`=last epoch, `b`=segments before, `c`=segments after.
    Compaction = 5,
    /// A (sharded) engine finished a tick.
    /// `ts`=bucket-close flow time, `a`=newly classified, `b`=live ranges,
    /// `c`=classified ranges.
    ShardTick = 6,
    /// A delta larger than the churn-burst threshold was applied.
    /// `ts`=bucket-close flow time, `a`=epoch, `b`=change count, `c`=threshold.
    ChurnBurst = 7,
    /// Spoof verdict counts over a reporting window.
    /// `ts`=flow time, `a`=consistent, `b`=spoofed, `c`=catchment shifts.
    SpoofSummary = 8,
    /// A stage stopped making progress while its upstream advanced.
    /// `ts`=upstream flow time, `a`=stage index, `b`=stage flow time, `c`=stage updates.
    Stall = 9,
}

impl EventKind {
    /// Human-readable name for a raw kind byte.
    pub fn name(code: u8) -> &'static str {
        match code {
            1 => "epoch_published",
            2 => "delta_applied",
            3 => "rotation",
            4 => "hist_append",
            5 => "compaction",
            6 => "shard_tick",
            7 => "churn_burst",
            8 => "spoof_summary",
            9 => "stall",
            _ => "unknown",
        }
    }
}

/// One recorded event. `seq` is the global record order (0-based ticket);
/// after the ring wraps, dumps contain the last [`FLIGHT_CAPACITY`]
/// sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    pub kind: u8,
    pub seq: u64,
    pub ts: u64,
    pub a: u64,
    pub b: u64,
    pub c: u64,
}

#[derive(Debug, Default)]
struct Slot {
    /// Seqlock word: 0 = never written, `2*ticket+1` = write in flight,
    /// `2*(ticket+1)` = stable content for `ticket`.
    seq: AtomicU64,
    kind: AtomicU64,
    ts: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct FlightRing {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRing {
    pub(crate) fn new() -> Self {
        Self::with_capacity(FLIGHT_CAPACITY)
    }

    fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        let slots: Vec<Slot> = (0..capacity).map(|_| Slot::default()).collect();
        FlightRing {
            cursor: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    fn record(&self, kind: u8, ts: u64, a: u64, b: u64, c: u64) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket as usize) & (self.slots.len() - 1)];
        slot.seq.store(2 * ticket + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.seq.store(2 * (ticket + 1), Ordering::Release);
    }

    fn dump(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or write in flight right now
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let ts = slot.ts.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let c = slot.c.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s1 != s2 {
                continue; // overwritten mid-read; its successor will show up
            }
            out.push(FlightEvent {
                kind: kind as u8,
                seq: s1 / 2 - 1,
                ts,
                a,
                b,
                c,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// Handle to a flight-recorder ring. Cloning shares the ring; the disabled
/// handle is a one-branch no-op. Obtain via [`crate::Telemetry::flight`].
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder(pub(crate) Option<Arc<FlightRing>>);

impl FlightRecorder {
    /// A no-op handle.
    pub fn disabled() -> Self {
        FlightRecorder(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one event (lock-free, ~one `fetch_add` plus six stores).
    pub fn record(&self, kind: EventKind, ts: u64, a: u64, b: u64, c: u64) {
        if let Some(ring) = &self.0 {
            ring.record(kind as u8, ts, a, b, c);
        }
    }

    /// Total events ever recorded (including ones the ring has since
    /// overwritten); 0 if disabled.
    pub fn recorded(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |r| r.cursor.load(Ordering::Relaxed))
    }

    /// All currently held events, oldest first. Slots with a write in
    /// flight are skipped, never blocked on.
    pub fn dump(&self) -> Vec<FlightEvent> {
        self.0.as_ref().map_or_else(Vec::new, |r| r.dump())
    }

    /// The last `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let mut events = self.dump();
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }
}

/// Encode a batch of events: `[count: u32 LE]` then [`EVENT_WIRE_BYTES`]
/// per event (`kind u8`, then `seq`/`ts`/`a`/`b`/`c` as u64 LE).
pub fn encode_events(events: &[FlightEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + events.len() * EVENT_WIRE_BYTES);
    out.extend_from_slice(&(events.len() as u32).to_le_bytes());
    for e in events {
        out.push(e.kind);
        out.extend_from_slice(&e.seq.to_le_bytes());
        out.extend_from_slice(&e.ts.to_le_bytes());
        out.extend_from_slice(&e.a.to_le_bytes());
        out.extend_from_slice(&e.b.to_le_bytes());
        out.extend_from_slice(&e.c.to_le_bytes());
    }
    out
}

/// Decode error for [`decode_events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightCodecError {
    /// Input shorter than the count header.
    Truncated,
    /// Count exceeds [`MAX_DUMP_EVENTS`].
    TooManyEvents(u32),
    /// Input length is not exactly `4 + 41 * count`.
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for FlightCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightCodecError::Truncated => write!(f, "input shorter than the count header"),
            FlightCodecError::TooManyEvents(n) => {
                write!(f, "count {n} exceeds the {MAX_DUMP_EVENTS} event cap")
            }
            FlightCodecError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "expected {expected} bytes for the declared count, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for FlightCodecError {}

/// Decode a batch encoded by [`encode_events`]. Total and canonical: every
/// accepted input re-encodes to exactly the input bytes (all field values
/// are free u8/u64s; only the framing is constrained), and length/count
/// bounds are checked before any allocation.
pub fn decode_events(data: &[u8]) -> Result<Vec<FlightEvent>, FlightCodecError> {
    if data.len() < 4 {
        return Err(FlightCodecError::Truncated);
    }
    let count = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    if count as usize > MAX_DUMP_EVENTS {
        return Err(FlightCodecError::TooManyEvents(count));
    }
    let expected = 4 + count as usize * EVENT_WIRE_BYTES;
    if data.len() != expected {
        return Err(FlightCodecError::LengthMismatch {
            expected,
            got: data.len(),
        });
    }
    let mut events = Vec::with_capacity(count as usize);
    let mut off = 4usize;
    let u64_at = |off: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&data[off..off + 8]);
        u64::from_le_bytes(b)
    };
    for _ in 0..count {
        events.push(FlightEvent {
            kind: data[off],
            seq: u64_at(off + 1),
            ts: u64_at(off + 9),
            a: u64_at(off + 17),
            b: u64_at(off + 25),
            c: u64_at(off + 33),
        });
        off += EVENT_WIRE_BYTES;
    }
    Ok(events)
}

/// Render events as one line each (`seq kind ts a b c`), for stderr dumps
/// and `ipd-tool` output.
pub fn render_events(events: &[FlightEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "#{:<8} {:<16} ts={} a={} b={} c={}",
            e.seq,
            EventKind::name(e.kind),
            e.ts,
            e.a,
            e.b,
            e.c
        );
    }
    out
}

/// Install a panic hook that dumps the recorder tail to stderr before the
/// default hook runs. The first installed recorder wins (one process-wide
/// hook); later calls are no-ops. Disabled recorders install nothing.
pub fn install_panic_dump(recorder: &FlightRecorder) {
    static HOOKED: Once = Once::new();
    static RECORDER: OnceLock<Mutex<FlightRecorder>> = OnceLock::new();
    if !recorder.is_enabled() {
        return;
    }
    let _ = RECORDER.set(Mutex::new(recorder.clone()));
    HOOKED.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(slot) = RECORDER.get() {
                if let Ok(rec) = slot.lock() {
                    let tail = rec.tail(64);
                    if !tail.is_empty() {
                        eprintln!("== flight recorder (last {} events) ==", tail.len());
                        eprint!("{}", render_events(&tail));
                    }
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live() -> FlightRecorder {
        FlightRecorder(Some(Arc::new(FlightRing::new())))
    }

    #[test]
    fn records_and_dumps_in_order() {
        let r = live();
        r.record(EventKind::EpochPublished, 60, 1, 10, 100);
        r.record(EventKind::DeltaApplied, 120, 2, 20, 200);
        r.record(EventKind::Rotation, 180, 3, 30, 300);
        let events = r.dump();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(events[0].kind, EventKind::EpochPublished as u8);
        assert_eq!(events[1].ts, 120);
        assert_eq!(events[2].c, 300);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder(Some(Arc::new(FlightRing::with_capacity(8))));
        for i in 0..20u64 {
            r.record(EventKind::ShardTick, i, i, 0, 0);
        }
        let events = r.dump();
        assert_eq!(events.len(), 8);
        // The last 8 tickets survive, oldest first.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>()
        );
        assert_eq!(r.recorded(), 20);
        assert_eq!(
            r.tail(3).iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![17, 18, 19]
        );
    }

    #[test]
    fn disabled_is_inert() {
        let r = FlightRecorder::disabled();
        r.record(EventKind::Stall, 1, 2, 3, 4);
        assert_eq!(r.recorded(), 0);
        assert!(r.dump().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn codec_roundtrips() {
        let events = vec![
            FlightEvent {
                kind: 1,
                seq: 0,
                ts: 60,
                a: 1,
                b: 2,
                c: 3,
            },
            FlightEvent {
                kind: 255, // unknown kinds round-trip untouched
                seq: u64::MAX,
                ts: 0,
                a: u64::MAX,
                b: 42,
                c: 7,
            },
        ];
        let bytes = encode_events(&events);
        assert_eq!(bytes.len(), 4 + 2 * EVENT_WIRE_BYTES);
        assert_eq!(decode_events(&bytes).unwrap(), events);
        assert_eq!(decode_events(&encode_events(&[])).unwrap(), vec![]);
    }

    #[test]
    fn codec_is_canonical() {
        // Arbitrary well-framed bytes decode and re-encode bit-identically.
        let mut data = vec![2, 0, 0, 0];
        data.extend((0..2 * EVENT_WIRE_BYTES).map(|i| (i * 37 % 251) as u8));
        let events = decode_events(&data).unwrap();
        assert_eq!(encode_events(&events), data);
    }

    #[test]
    fn codec_rejects_bad_framing() {
        assert_eq!(decode_events(&[1, 2]), Err(FlightCodecError::Truncated));
        assert_eq!(
            decode_events(&u32::MAX.to_le_bytes()),
            Err(FlightCodecError::TooManyEvents(u32::MAX))
        );
        let mut short = vec![1, 0, 0, 0];
        short.extend_from_slice(&[0u8; EVENT_WIRE_BYTES - 1]);
        assert!(matches!(
            decode_events(&short),
            Err(FlightCodecError::LengthMismatch { .. })
        ));
        let mut long = vec![0, 0, 0, 0];
        long.push(9);
        assert!(matches!(
            decode_events(&long),
            Err(FlightCodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn concurrent_writers_never_produce_mixed_reads() {
        let r = FlightRecorder(Some(Arc::new(FlightRing::with_capacity(16))));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    // Each writer tags every field with its thread id so a
                    // mixed read is detectable.
                    r.record(EventKind::ShardTick, t, t, t, t);
                    if i % 64 == 0 {
                        for e in r.dump() {
                            assert_eq!(e.ts, e.a);
                            assert_eq!(e.a, e.b);
                            assert_eq!(e.b, e.c);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.recorded(), 8_000);
    }

    #[test]
    fn render_names_known_kinds() {
        let text = render_events(&[
            FlightEvent {
                kind: 3,
                seq: 5,
                ts: 1,
                a: 2,
                b: 3,
                c: 4,
            },
            FlightEvent {
                kind: 200,
                seq: 6,
                ts: 0,
                a: 0,
                b: 0,
                c: 0,
            },
        ]);
        assert!(text.contains("rotation"));
        assert!(text.contains("unknown"));
    }
}
