//! Dependency-free introspection endpoint: a blocking accept loop on a
//! background thread serving `GET /metrics` (Prometheus text exposition)
//! and `GET /statusz` (JSON, see [`StatusHub`]) from a [`Telemetry`]
//! registry. Plain `std::net` — no HTTP stack, because neither format
//! needs one.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Telemetry;
use crate::status::StatusHub;

/// A running metrics endpoint. Dropping the server shuts it down; call
/// [`MetricsServer::shutdown`] to do so explicitly and observe join errors.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `GET /metrics` snapshots of `telemetry` until shutdown, with the
    /// default `/statusz` sections ([`StatusHub::with_telemetry`]).
    pub fn serve(addr: &str, telemetry: Telemetry) -> std::io::Result<MetricsServer> {
        let hub = StatusHub::with_telemetry(&telemetry);
        Self::serve_with_status(addr, telemetry, hub)
    }

    /// [`MetricsServer::serve`] with an explicit [`StatusHub`] — processes
    /// that own richer state (the serve store, the hist manifest) register
    /// extra sections on the hub before or after binding.
    pub fn serve_with_status(
        addr: &str,
        telemetry: Telemetry,
        hub: StatusHub,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ipd-metrics-http".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // One request per connection, handled inline: a
                        // scrape every few seconds doesn't need more.
                        let _ = handle_conn(stream, &telemetry, &hub);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `incoming()`; a self-connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn handle_conn(
    mut stream: TcpStream,
    telemetry: &Telemetry,
    hub: &StatusHub,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("");
    let is_get = request.starts_with("GET ");
    if is_get && (path == "/metrics" || path == "/") {
        let body = telemetry.snapshot().to_prometheus_text();
        let header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(header.as_bytes())?;
        stream.write_all(body.as_bytes())?;
    } else if is_get && path == "/statusz" {
        let body = hub.render();
        let header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(header.as_bytes())?;
        stream.write_all(body.as_bytes())?;
    } else {
        let body = "not found; try /metrics or /statusz\n";
        let header = format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(header.as_bytes())?;
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::validate_prometheus_text;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        // One write syscall: the server reads once and then responds, so a
        // multi-write `write!` could race its close.
        let request = format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n");
        stream.write_all(request.as_bytes()).expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    }

    #[test]
    fn serves_valid_prometheus_text() {
        let t = Telemetry::new();
        t.counter("ipd_http_test_total", "a counter").add(9);
        let server = MetricsServer::serve("127.0.0.1:0", t.clone()).expect("bind");
        let addr = server.local_addr();

        let response = get(addr, "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"));
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        validate_prometheus_text(body).expect("valid exposition format");
        assert!(body.contains("ipd_http_test_total 9"));

        // Scrapes see live values, not a bind-time copy.
        t.counter("ipd_http_test_total", "a counter").add(1);
        assert!(get(addr, "/metrics").contains("ipd_http_test_total 10"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn serves_statusz_json() {
        let t = Telemetry::new();
        t.watermark("ipd_statusz_test_watermark", "stage")
            .record(60);
        t.derived_gauge("ipd_statusz_age_seconds", "age", || 2.5);
        t.flight()
            .record(crate::EventKind::EpochPublished, 60, 1, 2, 3);
        let hub = crate::StatusHub::with_telemetry(&t);
        hub.register("custom", || "{\"entries\":42}".to_string());
        let server = MetricsServer::serve_with_status("127.0.0.1:0", t, hub).expect("bind");

        let response = get(server.local_addr(), "/statusz");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("application/json"));
        let body = response.split("\r\n\r\n").nth(1).expect("body");
        let doc = crate::Json::parse(body).expect("statusz is valid JSON");
        assert_eq!(
            doc.get("custom").unwrap().get("entries").unwrap().as_f64(),
            Some(42.0)
        );
        assert_eq!(
            doc.get("gauges")
                .unwrap()
                .get("ipd_statusz_age_seconds")
                .unwrap()
                .as_f64(),
            Some(2.5)
        );
        assert!(doc
            .get("watermarks")
            .unwrap()
            .get("ipd_statusz_test_watermark")
            .is_some());
        assert_eq!(
            doc.get("flight").unwrap().get("recorded").unwrap().as_f64(),
            Some(1.0)
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_promptly() {
        let server = MetricsServer::serve("127.0.0.1:0", Telemetry::new()).expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // After shutdown the port stops answering (allow for OS-level
        // listen backlog draining by tolerating an immediate-EOF connect).
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"GET /metrics HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = s.read_to_string(&mut out);
            assert!(out.is_empty(), "server answered after shutdown: {out}");
        }
    }
}
