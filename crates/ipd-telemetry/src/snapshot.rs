//! Point-in-time metric snapshots and their renderings: Prometheus text
//! exposition format for scrapers, a fixed-width table for humans, and the
//! deterministic subset the golden-metrics test pins.

use std::fmt::Write as _;

use crate::registry::{Class, Kind};

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    /// A fractional gauge (derived gauges, watermark ages), stored as the
    /// `f64` bit pattern so the enum keeps `Eq` (snapshots are compared
    /// bit-for-bit in the inertness tests).
    Float(u64),
    Histogram {
        /// `(upper_bound, observations_in_bucket)` per finite bucket.
        buckets: Vec<(u64, u64)>,
        /// Observations above the last finite bound (the +Inf bucket).
        overflow: u64,
        /// Sum of all observed values.
        sum: u64,
        /// Total observations.
        count: u64,
    },
}

/// Render an `f64` for exposition: plain decimal via `Display`, which both
/// Prometheus and the in-tree validator parse back exactly.
fn fmt_f64(bits: u64) -> String {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// One named metric with labels, help, kind, and determinism class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub help: String,
    pub kind: Kind,
    pub class: Class,
    pub value: MetricValue,
}

impl MetricSample {
    fn label_str(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{{{}}}", pairs.join(","))
    }

    /// Label string with an extra pair appended (for histogram `le`).
    fn label_str_with(&self, key: &str, value: &str) -> String {
        let mut pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        pairs.push(format!("{key}=\"{value}\""));
        format!("{{{}}}", pairs.join(","))
    }
}

/// A deterministic (name-sorted) view of a registry, see
/// [`crate::Telemetry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Only the [`Class::Deterministic`] samples — the subset whose values
    /// are a pure function of the input stream and safe to pin in golden
    /// tests.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            samples: self
                .samples
                .iter()
                .filter(|s| s.class == Class::Deterministic)
                .cloned()
                .collect(),
        }
    }

    /// Convenience lookup for tests: counter value by name (unlabeled).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .and_then(|s| match s.value {
                MetricValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// Convenience lookup for tests: gauge value by name (unlabeled).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .and_then(|s| match s.value {
                MetricValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// Convenience lookup for tests: float-gauge value by name (unlabeled).
    pub fn float(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .and_then(|s| match s.value {
                MetricValue::Float(bits) => Some(f64::from_bits(bits)),
                _ => None,
            })
    }

    /// Render as Prometheus text exposition format (version 0.0.4): one
    /// `# HELP`/`# TYPE` block per metric family, histogram buckets as
    /// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for s in &self.samples {
            if last_family != Some(s.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
                let _ = writeln!(out, "# TYPE {} {}", s.name, s.kind.prometheus_type());
                last_family = Some(s.name.as_str());
            }
            match &s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, s.label_str(), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, s.label_str(), v);
                }
                MetricValue::Float(bits) => {
                    let _ = writeln!(out, "{}{} {}", s.name, s.label_str(), fmt_f64(*bits));
                }
                MetricValue::Histogram {
                    buckets,
                    overflow,
                    sum,
                    count,
                } => {
                    let mut cum = 0u64;
                    for (bound, n) in buckets {
                        cum += n;
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            s.label_str_with("le", &bound.to_string()),
                            cum
                        );
                    }
                    cum += overflow;
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        s.label_str_with("le", "+Inf"),
                        cum
                    );
                    let _ = writeln!(out, "{}_sum{} {}", s.name, s.label_str(), sum);
                    let _ = writeln!(out, "{}_count{} {}", s.name, s.label_str(), count);
                }
            }
        }
        out
    }

    /// Render as an aligned human-readable table (the `--metrics-dump`
    /// end-of-run report).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .samples
            .iter()
            .map(|s| s.name.len() + s.label_str().len())
            .max()
            .unwrap_or(0);
        for s in &self.samples {
            let id = format!("{}{}", s.name, s.label_str());
            match &s.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{id:<width$}  {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{id:<width$}  {v}");
                }
                MetricValue::Float(bits) => {
                    let _ = writeln!(out, "{id:<width$}  {}", fmt_f64(*bits));
                }
                MetricValue::Histogram { sum, count, .. } => {
                    let mean = sum.checked_div(*count).unwrap_or(0);
                    let _ = writeln!(out, "{id:<width$}  count={count} sum={sum} mean={mean}");
                }
            }
        }
        out
    }
}

/// Check a string parses as well-formed Prometheus text format: every
/// non-comment line is `name[{labels}] value`, every family has HELP/TYPE
/// comments before its first sample. Returns the number of sample lines.
/// Used by the exporter snapshot tests; intentionally strict about the
/// subset this crate emits rather than the full grammar.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", ln + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    if parts.next().is_none() {
                        return err("HELP without metric name");
                    }
                }
                Some("TYPE") => {
                    let Some(name) = parts.next() else {
                        return err("TYPE without metric name");
                    };
                    match parts.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        _ => return err("bad TYPE"),
                    }
                    typed.insert(name.to_string());
                }
                _ => return err("unknown comment"),
            }
            continue;
        }
        let (id, value) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return err("sample line without value"),
        };
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "NaN" {
            return err("unparsable sample value");
        }
        let name = id.split('{').next().unwrap_or(id);
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return err("bad metric name");
        }
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(*f))
            .unwrap_or(name);
        if !typed.contains(family) {
            return err("sample before TYPE comment");
        }
        if let Some(labels) = id.strip_prefix(name) {
            let well_formed = labels.is_empty()
                || (labels.starts_with('{') && labels.ends_with('}') && labels.contains('='));
            if !well_formed {
                return err("malformed label block");
            }
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Class, Telemetry};

    fn populated() -> Telemetry {
        let t = Telemetry::new();
        t.counter("ipd_flows_total", "flows seen").add(42);
        t.counter_labeled(
            "ipd_shard_flows_total",
            "per-shard flows",
            &[("shard", "0")],
        )
        .add(40);
        t.counter_labeled(
            "ipd_shard_flows_total",
            "per-shard flows",
            &[("shard", "1")],
        )
        .add(2);
        t.gauge("ipd_ranges", "live ranges", Class::Deterministic)
            .set(7);
        let h = t.histogram(
            "ipd_batch_size",
            "batch sizes",
            &[1, 10, 100],
            Class::Deterministic,
        );
        h.observe(5);
        h.observe(50);
        h.observe(500);
        t.timing("ipd_tick_nanoseconds", "tick wall time")
            .observe(1234);
        t
    }

    #[test]
    fn prometheus_text_is_valid_and_complete() {
        let text = populated().snapshot().to_prometheus_text();
        let n = validate_prometheus_text(&text).expect("valid exposition format");
        // 1 counter + 2 labeled + 1 gauge + (4+2) batch hist + (14+2) timing hist
        assert!(n >= 10, "got {n} samples:\n{text}");
        assert!(text.contains("# TYPE ipd_flows_total counter"));
        assert!(text.contains("ipd_shard_flows_total{shard=\"0\"} 40"));
        assert!(text.contains("ipd_batch_size_bucket{le=\"10\"} 1"));
        assert!(text.contains("ipd_batch_size_bucket{le=\"100\"} 2"));
        assert!(text.contains("ipd_batch_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ipd_batch_size_sum 555"));
        assert!(text.contains("ipd_batch_size_count 3"));
    }

    #[test]
    fn deterministic_subset_excludes_timing() {
        let snap = populated().snapshot();
        let det = snap.deterministic();
        assert!(det.samples.iter().all(|s| s.class == Class::Deterministic));
        assert!(snap.samples.iter().any(|s| s.class == Class::Timing));
        assert!(det.samples.len() < snap.samples.len());
        assert_eq!(det.counter("ipd_flows_total"), Some(42));
        assert_eq!(det.gauge("ipd_ranges"), Some(7));
    }

    #[test]
    fn table_rendering_mentions_every_metric() {
        let table = populated().snapshot().render_table();
        for name in [
            "ipd_flows_total",
            "ipd_shard_flows_total{shard=\"1\"}",
            "ipd_ranges",
            "ipd_batch_size",
            "ipd_tick_nanoseconds",
        ] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn float_gauges_render_and_validate() {
        let t = Telemetry::new();
        t.derived_gauge("ipd_epoch_age_seconds", "age of the served epoch", || 1.25);
        t.watermark("ipd_ingest_watermark", "ingest high-water mark")
            .record(3600);
        let snap = t.snapshot();
        assert_eq!(snap.float("ipd_epoch_age_seconds"), Some(1.25));
        let text = snap.to_prometheus_text();
        validate_prometheus_text(&text).expect("float samples are valid exposition");
        assert!(text.contains("ipd_epoch_age_seconds 1.25"));
        assert!(text.contains("# TYPE ipd_epoch_age_seconds gauge"));
        assert!(text.contains("ipd_ingest_watermark_flow_ts 3600"));
        assert!(snap.render_table().contains("ipd_epoch_age_seconds"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_prometheus_text("no_type_metric 1").is_err());
        assert!(validate_prometheus_text("# TYPE x counter\nx notanumber").is_err());
        assert!(validate_prometheus_text("# TYPE x banana\nx 1").is_err());
        assert!(validate_prometheus_text("# TYPE x counter\nx{bad 1").is_err());
    }
}
