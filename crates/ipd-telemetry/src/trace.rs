//! Minimal span/event tracing, compiled only with the `trace` cargo
//! feature. Modeled on the `tracing` + `EnvFilter` idiom but dependency
//! free: a [`TraceFilter`] parses `target=level` directives
//! (`"ipd_core=debug,warn"`; `off` silences a target, as in
//! `"ipd_core=off,info"`), a [`Tracer`] emits filtered events to a sink,
//! and [`Tracer::span`] returns a guard that logs enter/exit with elapsed
//! time.
//!
//! Tracing shares telemetry's inertness contract: it observes the pipeline
//! and never feeds back into it, and a `Tracer` built from
//! [`TraceFilter::off`] skips formatting entirely.

use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Event severity, ordered `Error < Warn < Info < Debug < Trace` so that a
/// filter level admits everything at or below it in verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
    Trace,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            "off" => Err("off is not a level; use it as a directive value".into()),
            other => Err(format!("unknown trace level {other:?}")),
        }
    }
}

/// A directive's effect: admit up to a level, or silence the target
/// entirely (`off`).
fn parse_directive_level(s: &str) -> Result<Option<Level>, String> {
    if s.eq_ignore_ascii_case("off") {
        return Ok(None);
    }
    s.parse().map(Some)
}

/// A set of `target=level` directives plus a default level, as in
/// `"ipd_core=debug,ipd_netflow::ipfix=trace,warn"`. The most specific
/// (longest) matching target prefix wins, falling back to the bare default
/// directive if none matches. `off` is accepted wherever a level is
/// (`"ipd_core=off,info"` silences `ipd_core` while defaulting to info) —
/// an `off` directive beats the default, so one noisy target can be muted
/// without muting everything.
#[derive(Debug, Clone)]
pub struct TraceFilter {
    /// Sorted by target so longest-prefix search can scan once. `None`
    /// means the target is silenced.
    directives: Vec<(String, Option<Level>)>,
    /// `Some(None)` is an explicit bare `off` default; plain `None` means
    /// no default directive was given (also silent).
    default: Option<Option<Level>>,
}

impl TraceFilter {
    /// A filter that admits nothing.
    pub fn off() -> Self {
        TraceFilter {
            directives: Vec::new(),
            default: None,
        }
    }

    /// Parse a comma-separated directive list. A directive is either
    /// `target=level`, `target=off`, or a bare `level`/`off` (the default
    /// for unmatched targets). Empty input yields [`TraceFilter::off`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut directives = Vec::new();
        let mut default = None;
        for raw in spec.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            match raw.split_once('=') {
                Some((target, level)) => {
                    let target = target.trim();
                    if target.is_empty() {
                        return Err(format!("directive {raw:?} has an empty target"));
                    }
                    directives.push((target.to_string(), parse_directive_level(level.trim())?));
                }
                None => {
                    if default.replace(parse_directive_level(raw)?).is_some() {
                        return Err(format!("duplicate default level in {spec:?}"));
                    }
                }
            }
        }
        directives.sort();
        Ok(TraceFilter {
            directives,
            default,
        })
    }

    /// Whether an event with this `target` and `level` passes the filter.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        let mut best: Option<(usize, Option<Level>)> = None;
        for (prefix, max) in &self.directives {
            // A directive matches its exact target or any `::`-nested child.
            let matches = target == prefix
                || (target.starts_with(prefix.as_str())
                    && target[prefix.len()..].starts_with("::"));
            if matches && best.map_or(true, |(len, _)| prefix.len() >= len) {
                best = Some((prefix.len(), *max));
            }
        }
        match best.map(|(_, max)| max).or(self.default) {
            Some(Some(max)) => level <= max,
            // An explicit `off` directive, or no directive at all.
            Some(None) | None => false,
        }
    }
}

impl FromStr for TraceFilter {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TraceFilter::parse(s)
    }
}

/// Where formatted trace lines go.
enum Sink {
    Stderr,
    /// In-memory, for tests and for `--metrics-dump`-style end-of-run
    /// reporting.
    Memory(Arc<Mutex<Vec<String>>>),
}

/// A filtered trace emitter. Cloning is cheap and shares the sink.
#[derive(Clone)]
pub struct Tracer {
    filter: Arc<TraceFilter>,
    sink: Arc<Sink>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer({:?})", self.filter)
    }
}

impl Tracer {
    /// A tracer writing matching events to stderr.
    pub fn stderr(filter: TraceFilter) -> Self {
        Tracer {
            filter: Arc::new(filter),
            sink: Arc::new(Sink::Stderr),
        }
    }

    /// A tracer capturing matching events in memory; the returned handle
    /// reads them back.
    pub fn memory(filter: TraceFilter) -> (Self, MemorySink) {
        let lines = Arc::new(Mutex::new(Vec::new()));
        (
            Tracer {
                filter: Arc::new(filter),
                sink: Arc::new(Sink::Memory(Arc::clone(&lines))),
            },
            MemorySink(lines),
        )
    }

    /// A tracer that emits nothing.
    pub fn off() -> Self {
        Tracer::stderr(TraceFilter::off())
    }

    /// Whether `target`/`level` would be emitted — check before building
    /// expensive messages.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        self.filter.enabled(target, level)
    }

    /// Emit one event.
    pub fn event(&self, target: &str, level: Level, message: &str) {
        if !self.enabled(target, level) {
            return;
        }
        self.emit(&format!("{:5} {target}: {message}", level.as_str()));
    }

    /// Open a span: logs `-> name` now and `<- name (elapsed)` when the
    /// returned guard drops. Disabled spans never read the clock.
    pub fn span(&self, target: &str, level: Level, name: &str) -> Span {
        if !self.enabled(target, level) {
            return Span { live: None };
        }
        self.emit(&format!("{:5} {target}: -> {name}", level.as_str()));
        Span {
            live: Some(SpanLive {
                tracer: self.clone(),
                target: target.to_string(),
                level,
                name: name.to_string(),
                started: Instant::now(),
            }),
        }
    }

    fn emit(&self, line: &str) {
        match &*self.sink {
            Sink::Stderr => eprintln!("{line}"),
            Sink::Memory(lines) => lines.lock().expect("trace sink poisoned").push(line.into()),
        }
    }
}

/// Read side of [`Tracer::memory`].
pub struct MemorySink(Arc<Mutex<Vec<String>>>);

impl MemorySink {
    /// All lines captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.0.lock().expect("trace sink poisoned").clone()
    }
}

struct SpanLive {
    tracer: Tracer,
    target: String,
    level: Level,
    name: String,
    started: Instant,
}

/// Guard from [`Tracer::span`]; logs span exit with elapsed time on drop.
pub struct Span {
    live: Option<SpanLive>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let micros = live.started.elapsed().as_micros();
            live.tracer.emit(&format!(
                "{:5} {}: <- {} ({micros}us)",
                live.level.as_str(),
                live.target,
                live.name
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parses_targets_and_default() {
        let f = TraceFilter::parse("ipd_core=debug,ipd_netflow::ipfix=trace,warn").unwrap();
        assert!(f.enabled("ipd_core", Level::Debug));
        assert!(!f.enabled("ipd_core", Level::Trace));
        assert!(f.enabled("ipd_netflow::ipfix", Level::Trace));
        // Unmatched targets fall back to the bare default.
        assert!(f.enabled("ipd_state", Level::Warn));
        assert!(!f.enabled("ipd_state", Level::Info));
    }

    #[test]
    fn longest_prefix_wins_and_prefixes_respect_path_boundaries() {
        let f = TraceFilter::parse("ipd_core=warn,ipd_core::pipeline=debug").unwrap();
        assert!(f.enabled("ipd_core::pipeline", Level::Debug));
        assert!(f.enabled("ipd_core::pipeline::reader", Level::Debug));
        assert!(!f.enabled("ipd_core::engine", Level::Debug));
        // "ipd_core_extras" is not a child of "ipd_core".
        assert!(!f.enabled("ipd_core_extras", Level::Error));
    }

    #[test]
    fn filter_rejects_bad_specs() {
        assert!(TraceFilter::parse("ipd_core=banana").is_err());
        assert!(TraceFilter::parse("=debug").is_err());
        assert!(TraceFilter::parse("info,debug").is_err());
        assert!(TraceFilter::parse("info,off").is_err(), "two defaults");
        assert!(TraceFilter::parse("").unwrap().directives.is_empty());
        assert!(!TraceFilter::parse("").unwrap().enabled("x", Level::Error));
    }

    #[test]
    fn off_directive_silences_one_target() {
        let f = TraceFilter::parse("ipd_core=off,info").unwrap();
        // The muted target emits nothing, even errors…
        assert!(!f.enabled("ipd_core", Level::Error));
        assert!(!f.enabled("ipd_core::pipeline", Level::Error));
        // …while everything else keeps the default.
        assert!(f.enabled("ipd_netflow", Level::Info));
        assert!(!f.enabled("ipd_netflow", Level::Debug));
        // `off` nests like any directive: a more specific level re-enables.
        let g = TraceFilter::parse("ipd_core=off,ipd_core::engine=debug,warn").unwrap();
        assert!(!g.enabled("ipd_core::pipeline", Level::Error));
        assert!(g.enabled("ipd_core::engine", Level::Debug));
        // A bare `off` default is accepted and silences unmatched targets.
        let h = TraceFilter::parse("off,ipd_serve=info").unwrap();
        assert!(!h.enabled("ipd_core", Level::Error));
        assert!(h.enabled("ipd_serve", Level::Info));
        // `off` is still not a Level (the enabled() API needs a real one).
        assert!("off".parse::<Level>().is_err());
    }

    #[test]
    fn events_and_spans_reach_the_sink() {
        let (tracer, sink) = Tracer::memory(TraceFilter::parse("ipd_core=debug").unwrap());
        tracer.event("ipd_core", Level::Info, "tick fired");
        tracer.event("ipd_core", Level::Trace, "too verbose"); // filtered
        tracer.event("other", Level::Error, "wrong target"); // filtered
        {
            let _span = tracer.span("ipd_core", Level::Debug, "stage2");
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("tick fired"));
        assert!(lines[1].contains("-> stage2"));
        assert!(lines[2].contains("<- stage2"));
        assert!(lines[2].contains("us)"));
    }

    #[test]
    fn disabled_span_is_inert() {
        let tracer = Tracer::off();
        assert!(!tracer.enabled("ipd_core", Level::Error));
        let span = tracer.span("ipd_core", Level::Error, "nope");
        assert!(span.live.is_none());
    }
}
