//! The metric registry: registration is the cold path (one mutex), the
//! returned handles are the hot path (atomics only, see [`crate::metrics`]).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

use crate::flight::{FlightRecorder, FlightRing};
use crate::metrics::{Counter, Gauge, Histogram, HistogramCells, PaddedU64};
use crate::snapshot::{MetricSample, MetricValue, MetricsSnapshot};
use crate::watermark::{Watermark, WatermarkCell, WatermarkSnapshot};

/// What a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    /// The Prometheus `# TYPE` keyword.
    pub fn prometheus_type(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Determinism class of a metric (see the crate docs): `Deterministic`
/// values are pure functions of the input stream and are pinned by the
/// golden-metrics test; `Timing` values depend on the wall clock or thread
/// scheduling and are exported but never pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    Deterministic,
    Timing,
}

/// Fully qualified metric identity: name plus sorted label pairs.
pub(crate) type MetricKey = (String, Vec<(String, String)>);

pub(crate) enum Cell {
    Counter(Arc<PaddedU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCells>),
    /// Evaluated at snapshot time (e.g. epoch age = now − publish stamp);
    /// always [`Class::Timing`] — a clock-derived value can never be
    /// deterministic.
    Derived(Arc<dyn Fn() -> f64 + Send + Sync>),
}

pub(crate) struct Entry {
    pub(crate) help: String,
    pub(crate) class: Class,
    pub(crate) cell: Cell,
}

struct Inner {
    metrics: Mutex<BTreeMap<MetricKey, Entry>>,
    watermarks: Mutex<BTreeMap<String, (String, Arc<WatermarkCell>)>>,
    flight: Arc<FlightRing>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            metrics: Mutex::new(BTreeMap::new()),
            watermarks: Mutex::new(BTreeMap::new()),
            flight: Arc::new(FlightRing::new()),
        }
    }
}

/// Handle to a metric registry. Cloning is cheap (an `Arc`); all clones
/// observe the same metrics. [`Telemetry::disabled`] yields a registry
/// whose handles are all no-ops — components can register unconditionally
/// and pay only an `Option` branch per hot-path event.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => {
                let n = inner.metrics.lock().map(|m| m.len()).unwrap_or(0);
                write!(f, "Telemetry(enabled, {n} metrics)")
            }
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// A live registry.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A registry whose every handle is a no-op.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut l: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        l.sort();
        (name.to_string(), l)
    }

    /// Register (or look up) a counter. Registration is idempotent: the
    /// same (name, labels) always maps to the same underlying cell, so two
    /// components counting the same thing share it.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_labeled(name, help, &[])
    }

    /// [`Telemetry::counter`] with labels (e.g. `[("shard", "3")]`).
    pub fn counter_labeled(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::disabled();
        };
        let mut metrics = inner.metrics.lock().expect("registry poisoned");
        let entry = metrics
            .entry(Self::key(name, labels))
            .or_insert_with(|| Entry {
                help: help.to_string(),
                class: Class::Deterministic,
                cell: Cell::Counter(Arc::new(PaddedU64::default())),
            });
        match &entry.cell {
            Cell::Counter(c) => Counter(Some(Arc::clone(c))),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register (or look up) a gauge of the given determinism class.
    pub fn gauge(&self, name: &str, help: &str, class: Class) -> Gauge {
        self.gauge_labeled(name, help, class, &[])
    }

    /// [`Telemetry::gauge`] with labels.
    pub fn gauge_labeled(
        &self,
        name: &str,
        help: &str,
        class: Class,
        labels: &[(&str, &str)],
    ) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::disabled();
        };
        let mut metrics = inner.metrics.lock().expect("registry poisoned");
        let entry = metrics
            .entry(Self::key(name, labels))
            .or_insert_with(|| Entry {
                help: help.to_string(),
                class,
                cell: Cell::Gauge(Arc::new(AtomicI64::new(0))),
            });
        match &entry.cell {
            Cell::Gauge(c) => Gauge(Some(Arc::clone(c))),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register (or look up) a histogram with fixed, ascending bucket
    /// bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64], class: Class) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::disabled();
        };
        let mut metrics = inner.metrics.lock().expect("registry poisoned");
        let entry = metrics
            .entry(Self::key(name, &[]))
            .or_insert_with(|| Entry {
                help: help.to_string(),
                class,
                cell: Cell::Histogram(Arc::new(HistogramCells::new(bounds))),
            });
        match &entry.cell {
            Cell::Histogram(c) => Histogram(Some(Arc::clone(c))),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A wall-clock timing histogram in nanoseconds
    /// ([`crate::TIMING_BUCKETS_NANOS`] bounds, [`Class::Timing`]).
    pub fn timing(&self, name: &str, help: &str) -> Histogram {
        self.histogram(name, help, crate::TIMING_BUCKETS_NANOS, Class::Timing)
    }

    /// A wall-clock timing histogram for sub-microsecond operations
    /// ([`crate::TIMING_BUCKETS_FINE_NANOS`] bounds, [`Class::Timing`]) —
    /// use for per-lookup latency, where the coarse buckets would put
    /// everything in the first bin.
    pub fn timing_fine(&self, name: &str, help: &str) -> Histogram {
        self.histogram(name, help, crate::TIMING_BUCKETS_FINE_NANOS, Class::Timing)
    }

    /// Register (or look up) a flow-time watermark. Watermarks export as
    /// three [`Class::Timing`] samples per stage — `{name}_flow_ts`
    /// (gauge), `{name}_age_seconds` (gauge, wall time since last advance)
    /// and `{name}_updates_total` (counter) — so they are never pinned by
    /// golden tests and never enter the deterministic subset.
    pub fn watermark(&self, name: &str, help: &str) -> Watermark {
        let Some(inner) = &self.inner else {
            return Watermark::disabled();
        };
        let mut watermarks = inner.watermarks.lock().expect("registry poisoned");
        let (_, cell) = watermarks
            .entry(name.to_string())
            .or_insert_with(|| (help.to_string(), Arc::new(WatermarkCell::default())));
        Watermark(Some(Arc::clone(cell)))
    }

    /// All registered watermarks, name-sorted, with point-in-time values.
    pub fn watermarks(&self) -> Vec<(String, WatermarkSnapshot)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let watermarks = inner.watermarks.lock().expect("registry poisoned");
        watermarks
            .iter()
            .map(|(name, (_, cell))| (name.clone(), Watermark(Some(Arc::clone(cell))).snapshot()))
            .collect()
    }

    /// Register a gauge whose value is computed at snapshot time by `f`
    /// (e.g. `ipd_serve_epoch_age_seconds` = now − last publish stamp).
    /// Always [`Class::Timing`]; re-registering a name replaces the
    /// closure. On a disabled registry the closure is dropped unused.
    pub fn derived_gauge<F>(&self, name: &str, help: &str, f: F)
    where
        F: Fn() -> f64 + Send + Sync + 'static,
    {
        let Some(inner) = &self.inner else { return };
        let mut metrics = inner.metrics.lock().expect("registry poisoned");
        let entry = metrics
            .entry(Self::key(name, &[]))
            .or_insert_with(|| Entry {
                help: help.to_string(),
                class: Class::Timing,
                cell: Cell::Derived(Arc::new(f)),
            });
        match &entry.cell {
            Cell::Derived(_) => {}
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The registry's flight recorder (one fixed-size ring per live
    /// registry; a no-op handle from a disabled registry).
    pub fn flight(&self) -> FlightRecorder {
        match &self.inner {
            Some(inner) => FlightRecorder(Some(Arc::clone(&inner.flight))),
            None => FlightRecorder::disabled(),
        }
    }

    /// A point-in-time, name-sorted view of every registered metric,
    /// including watermark-derived samples and derived gauges.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut samples = Vec::new();
        if let Some(inner) = &self.inner {
            let metrics = inner.metrics.lock().expect("registry poisoned");
            for ((name, labels), entry) in metrics.iter() {
                let value = match &entry.cell {
                    Cell::Counter(c) => MetricValue::Counter(c.0.load(Ordering::Relaxed)),
                    Cell::Gauge(c) => MetricValue::Gauge(c.load(Ordering::Relaxed)),
                    Cell::Histogram(c) => {
                        let buckets = c
                            .bounds
                            .iter()
                            .zip(&c.buckets)
                            .map(|(&b, cell)| (b, cell.load(Ordering::Relaxed)))
                            .collect();
                        MetricValue::Histogram {
                            buckets,
                            overflow: c.overflow.load(Ordering::Relaxed),
                            sum: c.sum.load(Ordering::Relaxed),
                            count: c.count.load(Ordering::Relaxed),
                        }
                    }
                    Cell::Derived(f) => MetricValue::Float(f().to_bits()),
                };
                samples.push(MetricSample {
                    name: name.clone(),
                    labels: labels.clone(),
                    help: entry.help.clone(),
                    kind: match entry.cell {
                        Cell::Counter(_) => Kind::Counter,
                        Cell::Gauge(_) | Cell::Derived(_) => Kind::Gauge,
                        Cell::Histogram(_) => Kind::Histogram,
                    },
                    class: entry.class,
                    value,
                });
            }
            drop(metrics);
            let watermarks = inner.watermarks.lock().expect("registry poisoned");
            for (name, (help, cell)) in watermarks.iter() {
                let snap = Watermark(Some(Arc::clone(cell))).snapshot();
                let sample = |suffix: &str, kind: Kind, value: MetricValue| MetricSample {
                    name: format!("{name}{suffix}"),
                    labels: Vec::new(),
                    help: help.clone(),
                    kind,
                    class: Class::Timing,
                    value,
                };
                samples.push(sample(
                    "_flow_ts",
                    Kind::Gauge,
                    MetricValue::Gauge(snap.flow_ts.min(i64::MAX as u64) as i64),
                ));
                samples.push(sample(
                    "_age_seconds",
                    Kind::Gauge,
                    MetricValue::Float((snap.age_nanos as f64 / 1e9).to_bits()),
                ));
                samples.push(sample(
                    "_updates_total",
                    Kind::Counter,
                    MetricValue::Counter(snap.updates),
                ));
            }
            samples.sort_by(|x, y| (&x.name, &x.labels).cmp(&(&y.name, &y.labels)));
        }
        MetricsSnapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let t = Telemetry::new();
        let a = t.counter("ipd_test_total", "a test counter");
        let b = t.counter("ipd_test_total", "a test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(t.snapshot().samples.len(), 1);
    }

    #[test]
    fn labels_distinguish_cells() {
        let t = Telemetry::new();
        let s0 = t.counter_labeled(
            "ipd_shard_flows_total",
            "flows per shard",
            &[("shard", "0")],
        );
        let s1 = t.counter_labeled(
            "ipd_shard_flows_total",
            "flows per shard",
            &[("shard", "1")],
        );
        s0.inc();
        s1.add(5);
        assert_eq!(s0.get(), 1);
        assert_eq!(s1.get(), 5);
        assert_eq!(t.snapshot().samples.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let t = Telemetry::new();
        let _c = t.counter("ipd_conflict", "as counter");
        let _g = t.gauge("ipd_conflict", "as gauge", Class::Deterministic);
    }

    #[test]
    fn disabled_registry_registers_noops() {
        let t = Telemetry::disabled();
        let c = t.counter("ipd_x_total", "x");
        c.add(100);
        assert_eq!(c.get(), 0);
        assert!(t.snapshot().samples.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn watermark_exports_three_timing_samples() {
        let t = Telemetry::new();
        let w = t.watermark("ipd_stage_watermark", "stage high-water mark");
        w.record(600);
        w.record(540); // monotone max
        let snap = t.snapshot();
        assert_eq!(snap.gauge("ipd_stage_watermark_flow_ts"), Some(600));
        assert_eq!(snap.counter("ipd_stage_watermark_updates_total"), Some(2));
        assert!(snap.float("ipd_stage_watermark_age_seconds").is_some());
        assert!(
            snap.samples
                .iter()
                .filter(|s| s.name.starts_with("ipd_stage_watermark"))
                .all(|s| s.class == Class::Timing),
            "watermark samples must never enter the deterministic subset"
        );
        // Same name → same cell.
        t.watermark("ipd_stage_watermark", "stage high-water mark")
            .record(900);
        assert_eq!(w.flow_ts(), 900);
        assert_eq!(t.watermarks().len(), 1);
    }

    #[test]
    fn derived_gauge_evaluates_at_snapshot_time() {
        let t = Telemetry::new();
        let source = Arc::new(PaddedU64::default());
        let src = Arc::clone(&source);
        t.derived_gauge("ipd_age_seconds", "derived", move || {
            src.0.load(Ordering::Relaxed) as f64 / 2.0
        });
        assert_eq!(t.snapshot().float("ipd_age_seconds"), Some(0.0));
        source.0.store(7, Ordering::Relaxed);
        assert_eq!(t.snapshot().float("ipd_age_seconds"), Some(3.5));
        let s = t.snapshot();
        let sample = s.samples.iter().find(|s| s.name == "ipd_age_seconds");
        assert_eq!(sample.unwrap().class, Class::Timing);
    }

    #[test]
    fn snapshot_stays_sorted_with_watermarks_and_derived() {
        let t = Telemetry::new();
        t.counter("ipd_z_total", "z").inc();
        t.watermark("ipd_m_watermark", "m").record(1);
        t.derived_gauge("ipd_a_age", "a", || 0.0);
        let snap = t.snapshot();
        let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn flight_recorder_is_per_registry() {
        let t = Telemetry::new();
        t.flight()
            .record(crate::EventKind::EpochPublished, 60, 1, 0, 0);
        assert_eq!(t.flight().recorded(), 1, "clones share the ring");
        assert!(!Telemetry::disabled().flight().is_enabled());
        assert_eq!(Telemetry::new().flight().recorded(), 0);
    }

    #[test]
    fn snapshot_orders_by_name_then_labels() {
        let t = Telemetry::new();
        t.counter("ipd_b_total", "b").inc();
        t.counter_labeled("ipd_a_total", "a", &[("shard", "1")])
            .inc();
        t.counter_labeled("ipd_a_total", "a", &[("shard", "0")])
            .inc();
        let names: Vec<String> = t
            .snapshot()
            .samples
            .iter()
            .map(|s| format!("{}{:?}", s.name, s.labels))
            .collect();
        assert!(names[0].starts_with("ipd_a_total") && names[0].contains('0'));
        assert!(names[1].starts_with("ipd_a_total") && names[1].contains('1'));
        assert!(names[2].starts_with("ipd_b_total"));
    }
}
