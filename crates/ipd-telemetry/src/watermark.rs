//! Flow-time watermarks: per-stage high-water marks of the data clock.
//!
//! A [`Watermark`] tracks the largest flow timestamp a pipeline stage has
//! processed (monotone max, lock-free) together with a wall-clock stamp of
//! when it last advanced and a count of advances. Comparing two stages'
//! watermarks gives the per-stage flow-time lag; comparing a stage's wall
//! stamp against "now" gives its freshness (how long since it last made
//! progress). Like every handle in this crate, a disabled watermark is a
//! one-branch no-op and never reads the clock, so the inertness contract
//! (digests bit-identical with telemetry on or off) extends to watermarks
//! unchanged: they observe the data clock, they never steer it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Nanoseconds since a process-wide monotonic anchor (first call). All
/// watermark wall stamps share this anchor, so differences between stamps
/// and [`monotonic_nanos`] readings are directly comparable.
pub fn monotonic_nanos() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    Instant::now().duration_since(anchor).as_nanos() as u64
}

/// The shared cells behind a [`Watermark`] handle.
#[derive(Debug, Default)]
pub(crate) struct WatermarkCell {
    /// Monotone-max flow timestamp (data-clock seconds).
    pub(crate) flow_ts: AtomicU64,
    /// [`monotonic_nanos`] reading at the last [`Watermark::record`] that
    /// advanced `flow_ts` (plus the very first record); the anchor is
    /// `Instant`-based so 0 means "never recorded" in practice.
    pub(crate) wall_nanos: AtomicU64,
    /// Number of `record` calls (stage progress heartbeat — the stall
    /// detector watches this, not the flow ts, so a stage that re-processes
    /// old flow time still counts as alive).
    pub(crate) updates: AtomicU64,
}

/// Point-in-time view of one watermark (see [`Watermark::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatermarkSnapshot {
    /// High-water flow timestamp (data-clock seconds); 0 if never recorded.
    pub flow_ts: u64,
    /// Nanoseconds since the watermark last advanced; 0 if never recorded
    /// or the handle is disabled.
    pub age_nanos: u64,
    /// Total `record` calls.
    pub updates: u64,
}

/// Lock-free flow-time high-water mark for one pipeline stage. Cloning
/// shares the cells; the disabled handle (from a disabled registry) is a
/// no-op that never touches the clock.
#[derive(Debug, Clone, Default)]
pub struct Watermark(pub(crate) Option<Arc<WatermarkCell>>);

impl Watermark {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Watermark(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Advance the watermark to `flow_ts` if it is ahead of the current
    /// high-water mark (monotone max — out-of-order flows can never move
    /// it backwards) and bump the update count. The wall clock is stamped
    /// only when the mark actually advances: flow timestamps are coarse
    /// (data-clock seconds) while `record` runs per flow, so skipping the
    /// clock read on non-advancing calls keeps the hot path to two relaxed
    /// RMWs — and "age since last advance" is the stamp the freshness
    /// surfaces document anyway.
    pub fn record(&self, flow_ts: u64) {
        if let Some(c) = &self.0 {
            let prev = c.flow_ts.fetch_max(flow_ts, Ordering::Relaxed);
            if flow_ts > prev || c.wall_nanos.load(Ordering::Relaxed) == 0 {
                c.wall_nanos.store(monotonic_nanos(), Ordering::Relaxed);
            }
            c.updates.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current high-water flow timestamp (0 if disabled or never recorded).
    pub fn flow_ts(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.flow_ts.load(Ordering::Relaxed))
    }

    /// Total `record` calls (0 if disabled).
    pub fn updates(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.updates.load(Ordering::Relaxed))
    }

    /// Nanoseconds since the last `record` (0 if disabled or never
    /// recorded — a watermark that has never advanced has no meaningful
    /// age, and reporting "huge" would trip stall alarms at startup).
    pub fn age_nanos(&self) -> u64 {
        let Some(c) = &self.0 else { return 0 };
        if c.updates.load(Ordering::Relaxed) == 0 {
            return 0;
        }
        monotonic_nanos().saturating_sub(c.wall_nanos.load(Ordering::Relaxed))
    }

    /// Consistent-enough point-in-time view (fields are read individually;
    /// a concurrent `record` may land between reads, which is fine for a
    /// diagnostic surface).
    pub fn snapshot(&self) -> WatermarkSnapshot {
        WatermarkSnapshot {
            flow_ts: self.flow_ts(),
            age_nanos: self.age_nanos(),
            updates: self.updates(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_monotone_max() {
        let w = Watermark(Some(Arc::new(WatermarkCell::default())));
        w.record(100);
        w.record(50); // out-of-order flow cannot regress the mark
        w.record(200);
        assert_eq!(w.flow_ts(), 200);
        assert_eq!(w.updates(), 3);
        let snap = w.snapshot();
        assert_eq!(snap.flow_ts, 200);
        assert_eq!(snap.updates, 3);
    }

    #[test]
    fn disabled_is_inert() {
        let w = Watermark::disabled();
        w.record(100);
        assert_eq!(w.flow_ts(), 0);
        assert_eq!(w.updates(), 0);
        assert_eq!(w.age_nanos(), 0);
        assert!(!w.is_enabled());
    }

    #[test]
    fn never_recorded_has_zero_age() {
        let w = Watermark(Some(Arc::new(WatermarkCell::default())));
        assert_eq!(w.age_nanos(), 0);
        w.record(1);
        // Age is now a real (tiny) reading; just check it doesn't panic.
        let _ = w.age_nanos();
    }

    #[test]
    fn monotonic_nanos_is_monotone() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a);
    }
}
