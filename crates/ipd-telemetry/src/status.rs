//! The introspection plane: a [`StatusHub`] of named JSON sections served
//! at `/statusz` beside the Prometheus exposition, plus the minimal JSON
//! reader `ipd-tool top` uses to consume it (no external dependencies —
//! the same zero-dep discipline as the rest of the workspace).
//!
//! Sections are closures returning a raw JSON *value* (object, array,
//! number, …); the hub renders them into one object keyed by section name,
//! sorted. Stability contract: section names and the field names documented
//! in DESIGN.md §16 are append-only — tools may rely on them existing, new
//! fields may appear at any time, and unknown fields must be ignored.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::registry::Telemetry;
use crate::snapshot::MetricValue;

type Section = Arc<dyn Fn() -> String + Send + Sync>;

/// A registry of named JSON sections, rendered on demand for `/statusz`.
/// Cloning shares the sections.
#[derive(Clone, Default)]
pub struct StatusHub {
    sections: Arc<Mutex<BTreeMap<String, Section>>>,
}

impl std::fmt::Debug for StatusHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.sections.lock().map(|s| s.len()).unwrap_or(0);
        write!(f, "StatusHub({n} sections)")
    }
}

impl StatusHub {
    /// An empty hub.
    pub fn new() -> Self {
        StatusHub::default()
    }

    /// A hub pre-populated with the sections every process can serve:
    /// `watermarks` (per-stage freshness), `gauges` (every unlabeled gauge,
    /// including derived float gauges — this is where `*_age_seconds` and
    /// `*_lag_seconds` surface), and `flight` (recorder total + tail).
    pub fn with_telemetry(telemetry: &Telemetry) -> Self {
        let hub = StatusHub::new();
        let t = telemetry.clone();
        hub.register("watermarks", move || {
            let mut out = String::from("{");
            for (i, (name, w)) in t.watermarks().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{}:{{\"flow_ts\":{},\"age_seconds\":{},\"updates\":{}}}",
                    json_string(name),
                    w.flow_ts,
                    json_f64(w.age_nanos as f64 / 1e9),
                    w.updates
                );
            }
            out.push('}');
            out
        });
        let t = telemetry.clone();
        hub.register("gauges", move || {
            let mut out = String::from("{");
            let mut first = true;
            for s in &t.snapshot().samples {
                if !s.labels.is_empty() {
                    continue;
                }
                let value = match &s.value {
                    MetricValue::Gauge(v) => format!("{v}"),
                    MetricValue::Float(bits) => json_f64(f64::from_bits(*bits)),
                    _ => continue,
                };
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{}:{}", json_string(&s.name), value);
            }
            out.push('}');
            out
        });
        let flight = telemetry.flight();
        hub.register("flight", move || {
            let mut out = format!("{{\"recorded\":{},\"tail\":[", flight.recorded());
            for (i, e) in flight.tail(16).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"seq\":{},\"kind\":{},\"ts\":{},\"a\":{},\"b\":{},\"c\":{}}}",
                    e.seq,
                    json_string(crate::flight::EventKind::name(e.kind)),
                    e.ts,
                    e.a,
                    e.b,
                    e.c
                );
            }
            out.push_str("]}");
            out
        });
        hub
    }

    /// Register (or replace) a section. The closure must return a valid
    /// JSON value; it runs on the HTTP serving thread at render time.
    pub fn register<F>(&self, name: &str, section: F)
    where
        F: Fn() -> String + Send + Sync + 'static,
    {
        self.sections
            .lock()
            .expect("status hub poisoned")
            .insert(name.to_string(), Arc::new(section));
    }

    /// Render the whole hub as one JSON object, sections sorted by name.
    pub fn render(&self) -> String {
        let sections = self.sections.lock().expect("status hub poisoned");
        let mut out = String::from("{");
        for (i, (name, f)) in sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), f());
        }
        out.push('}');
        out
    }
}

/// Escape and quote a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render an f64 as a JSON number (JSON has no NaN/Infinity — those render
/// as 0, which a diagnostic surface prefers over an invalid document).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// A parsed JSON value — the consuming half of the introspection plane
/// (`ipd-tool top`, tests). Numbers are f64; object key order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields in document order, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number {text:?} at offset {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input came from &str, so this
                // char boundary arithmetic is safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::EventKind;

    #[test]
    fn hub_renders_registered_sections_sorted() {
        let hub = StatusHub::new();
        hub.register("zeta", || "{\"x\":1}".to_string());
        hub.register("alpha", || "[1,2,3]".to_string());
        let doc = Json::parse(&hub.render()).expect("hub renders valid JSON");
        let fields = doc.as_obj().unwrap();
        assert_eq!(fields[0].0, "alpha");
        assert_eq!(fields[1].0, "zeta");
        assert_eq!(doc.get("alpha").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("zeta").unwrap().get("x").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn with_telemetry_exposes_watermarks_gauges_and_flight() {
        let t = Telemetry::new();
        t.watermark("ipd_test_watermark", "test stage").record(1234);
        t.gauge("ipd_test_epoch", "epoch", crate::Class::Timing)
            .set(7);
        t.flight().record(EventKind::EpochPublished, 60, 1, 2, 3);
        let doc = Json::parse(&StatusHub::with_telemetry(&t).render()).expect("valid JSON");
        let wm = doc.get("watermarks").unwrap().get("ipd_test_watermark");
        assert_eq!(wm.unwrap().get("flow_ts").unwrap().as_f64(), Some(1234.0));
        assert_eq!(
            doc.get("gauges")
                .unwrap()
                .get("ipd_test_epoch")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        let flight = doc.get("flight").unwrap();
        assert_eq!(flight.get("recorded").unwrap().as_f64(), Some(1.0));
        let tail = flight.get("tail").unwrap().as_arr().unwrap();
        assert_eq!(
            tail[0].get("kind").unwrap().as_str(),
            Some("epoch_published")
        );
    }

    #[test]
    fn disabled_telemetry_renders_empty_sections() {
        let doc = Json::parse(&StatusHub::with_telemetry(&Telemetry::disabled()).render()).unwrap();
        assert_eq!(doc.get("watermarks").unwrap().as_obj().unwrap().len(), 0);
        assert_eq!(
            doc.get("flight").unwrap().get("recorded").unwrap().as_f64(),
            Some(0.0)
        );
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        let parsed = Json::parse(&json_string("a\"b\\c\nd\t\u{1}π")).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\t\u{1}π"));
    }

    #[test]
    fn parser_handles_the_grammar() {
        let doc =
            Json::parse(r#"{"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null, "d": "s"}"#)
                .unwrap();
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(doc.get("b").unwrap().get("nested"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d").unwrap().as_str(), Some("s"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }
}
