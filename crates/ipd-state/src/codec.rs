//! The checkpoint codec: a versioned, deterministic binary image of the
//! full engine state plus the bucket clock.
//!
//! Layout (all integers little-endian, f64 as IEEE-754 bit patterns):
//!
//! ```text
//! magic "IPDSTAT1" | version u16 | section* | checksum u64
//! section := tag u8 | len u64 | payload[len]
//! ```
//!
//! Sections appear exactly once, in tag order: params (1), ingress registry
//! (2), engine stats (3), bucket clock (4), v4 trie (5), v6 trie (6). The
//! trailing checksum is eight-lane interleaved FNV-1a 64 (see
//! [`image_checksum`]) over every preceding byte. [`encode`] and
//! [`decode`] are pure sans-I/O functions; because the underlying
//! [`EngineStateDump`] is canonical (maps sorted by key), the same engine
//! state always encodes to the same bytes — checkpoint files are
//! content-comparable.

use ipd::persist::{ClassifiedDump, EngineStateDump, IpEntryDump, TrieNodeDump};
use ipd::pipeline::BucketClock;
use ipd::{CountMode, EngineStats, IpdParams, LogicalIngress};
use ipd_topology::{Bundle, IngressPoint};

/// Checkpoint file magic.
pub const MAGIC: [u8; 8] = *b"IPDSTAT1";
/// Current format version.
pub const VERSION: u16 = 1;

const SEC_PARAMS: u8 = 1;
const SEC_REGISTRY: u8 = 2;
const SEC_STATS: u8 = 3;
const SEC_CLOCK: u8 = 4;
const SEC_TRIE_V4: u8 = 5;
const SEC_TRIE_V6: u8 = 6;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 — same function [`ipd::Snapshot::digest`] uses. Used for the
/// short per-frame journal checksums, where the serial dependency chain is
/// irrelevant.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Image checksum: FNV-1a in eight interleaved lanes (lane `i` hashes bytes
/// `i, i+8, i+16, …`), folded together with a final FNV-1a pass over the
/// lane values. Same primitive and detection strength as plain FNV-1a, but
/// the eight independent multiply chains pipeline, so checkpoint-sized
/// images hash at memory speed instead of one multiply-latency per byte.
/// Exported for the other on-disk formats that share the `IPDSTAT1`
/// conventions (the `IPDSEG1` segments of `ipd-hist`).
pub fn image_checksum(bytes: &[u8]) -> u64 {
    let mut lanes = [0u64; 8];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = FNV_OFFSET ^ (i as u64);
    }
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        for (lane, &b) in lanes.iter_mut().zip(chunk) {
            *lane = (*lane ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    for (lane, &b) in lanes.iter_mut().zip(chunks.remainder()) {
        *lane = (*lane ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    let mut h = FNV_OFFSET ^ bytes.len() as u64;
    for lane in lanes {
        for b in lane.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Everything a checkpoint holds: the engine state plus the driver clock, so
/// a restored run resumes tick cadence exactly where it stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// The full engine state.
    pub dump: EngineStateDump,
    /// The bucket driver's data-time position at checkpoint time.
    pub clock: BucketClock,
}

/// Why a byte image is not a valid checkpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the claimed structure needs.
    Truncated,
    /// The magic does not match.
    BadMagic,
    /// A format version this build does not read.
    BadVersion(u16),
    /// The trailing checksum does not match the content.
    BadChecksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum of the actual bytes.
        computed: u64,
    },
    /// A section is missing, duplicated, or out of order.
    BadSection(u8),
    /// A structurally invalid field value.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "checkpoint truncated"),
            CodecError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CodecError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CodecError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            CodecError::BadSection(tag) => write!(f, "bad section sequence at tag {tag}"),
            CodecError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    /// Append a section: tag, length placeholder, payload via `fill`, then
    /// backpatch the length.
    fn section(&mut self, tag: u8, fill: impl FnOnce(&mut Writer)) {
        self.u8(tag);
        let len_at = self.buf.len();
        self.u64(0);
        fill(self);
        let len = (self.buf.len() - len_at - 8) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool out of range")),
        }
    }
    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Encode a checkpoint to its canonical byte image.
pub fn encode(state: &CheckpointState) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::with_capacity(4096),
    };
    w.buf.extend_from_slice(&MAGIC);
    w.u16(VERSION);

    let p = &state.dump.params;
    w.section(SEC_PARAMS, |w| {
        w.u8(p.cidr_max_v4);
        w.u8(p.cidr_max_v6);
        w.f64(p.ncidr_factor_v4);
        w.f64(p.ncidr_factor_v6);
        w.f64(p.q);
        w.u64(p.t_secs);
        w.u64(p.e_secs);
        w.u8(match p.count_mode {
            CountMode::Flows => 0,
            CountMode::Bytes => 1,
        });
        w.bool(p.enable_bundles);
        w.f64(p.bundle_member_min_share);
        w.f64(p.drop_floor);
        w.bool(p.detect_router_lb);
    });

    w.section(SEC_REGISTRY, |w| {
        w.u32(state.dump.ingresses.len() as u32);
        for p in &state.dump.ingresses {
            w.u32(p.router);
            w.u16(p.ifindex);
        }
    });

    let s = &state.dump.stats;
    w.section(SEC_STATS, |w| {
        w.u64(s.flows_ingested);
        w.u64(s.ticks);
        w.u64(s.splits);
        w.u64(s.joins);
        w.u64(s.classifications);
        w.u64(s.drops);
    });

    w.section(SEC_CLOCK, |w| {
        match state.clock.current_bucket {
            Some(b) => {
                w.u8(1);
                w.u64(b);
            }
            None => {
                w.u8(0);
                w.u64(0);
            }
        }
        w.u32(state.clock.ticks_since_snapshot);
    });

    w.section(SEC_TRIE_V4, |w| encode_trie(w, &state.dump.v4));
    w.section(SEC_TRIE_V6, |w| encode_trie(w, &state.dump.v6));

    let checksum = image_checksum(&w.buf);
    w.u64(checksum);
    w.buf
}

fn encode_trie(w: &mut Writer, nodes: &[TrieNodeDump]) {
    w.u64(nodes.len() as u64);
    for node in nodes {
        match node {
            TrieNodeDump::Internal => w.u8(0),
            TrieNodeDump::Monitoring(ips) => {
                w.u8(1);
                w.u32(ips.len() as u32);
                for e in ips {
                    w.u128(e.ip);
                    w.u64(e.last_ts);
                    encode_counts(w, &e.counts);
                }
            }
            TrieNodeDump::Classified(c) => {
                w.u8(2);
                match &c.ingress {
                    LogicalIngress::Link(p) => {
                        w.u8(1);
                        w.u32(p.router);
                        w.u16(p.ifindex);
                    }
                    LogicalIngress::Bundle(b) => {
                        w.u8(2);
                        w.u32(b.router);
                        w.u16(b.ifindexes.len() as u16);
                        for &i in &b.ifindexes {
                            w.u16(i);
                        }
                    }
                }
                w.u32(c.member_ids.len() as u32);
                for &id in &c.member_ids {
                    w.u32(id);
                }
                encode_counts(w, &c.counts);
                w.f64(c.total);
                w.u64(c.last_ts);
                w.u64(c.since);
            }
        }
    }
}

fn encode_counts(w: &mut Writer, counts: &[(u32, f64)]) {
    w.u32(counts.len() as u32);
    for &(id, weight) in counts {
        w.u32(id);
        w.f64(weight);
    }
}

/// Decode a checkpoint image. Verifies the checksum, magic, version, and
/// section structure; the deeper semantic checks (param validity, trie
/// preorder shape, ingress id bounds) happen when the returned dump is fed
/// to [`ipd::IpdEngine::restore_state`].
pub fn decode(bytes: &[u8]) -> Result<CheckpointState, CodecError> {
    let min = MAGIC.len() + 2 + 8;
    if bytes.len() < min {
        return Err(CodecError::Truncated);
    }
    let (content, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let computed = image_checksum(content);
    if stored != computed {
        return Err(CodecError::BadChecksum { stored, computed });
    }
    let mut r = Reader { buf: content };
    if r.take(MAGIC.len())? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }

    fn section<'a>(expected: u8, r: &mut Reader<'a>) -> Result<Reader<'a>, CodecError> {
        let tag = r.u8()?;
        if tag != expected {
            return Err(CodecError::BadSection(tag));
        }
        let len = r.u64()? as usize;
        Ok(Reader { buf: r.take(len)? })
    }

    let mut pr = section(SEC_PARAMS, &mut r)?;
    let params = IpdParams {
        cidr_max_v4: pr.u8()?,
        cidr_max_v6: pr.u8()?,
        ncidr_factor_v4: pr.f64()?,
        ncidr_factor_v6: pr.f64()?,
        q: pr.f64()?,
        t_secs: pr.u64()?,
        e_secs: pr.u64()?,
        count_mode: match pr.u8()? {
            0 => CountMode::Flows,
            1 => CountMode::Bytes,
            _ => return Err(CodecError::Malformed("count mode out of range")),
        },
        enable_bundles: pr.bool()?,
        bundle_member_min_share: pr.f64()?,
        drop_floor: pr.f64()?,
        detect_router_lb: pr.bool()?,
    };

    let mut rr = section(SEC_REGISTRY, &mut r)?;
    let n = rr.u32()? as usize;
    let mut ingresses = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let router = rr.u32()?;
        let ifindex = rr.u16()?;
        ingresses.push(IngressPoint::new(router, ifindex));
    }

    let mut sr = section(SEC_STATS, &mut r)?;
    let stats = EngineStats {
        flows_ingested: sr.u64()?,
        ticks: sr.u64()?,
        splits: sr.u64()?,
        joins: sr.u64()?,
        classifications: sr.u64()?,
        drops: sr.u64()?,
    };

    let mut cr = section(SEC_CLOCK, &mut r)?;
    let has_bucket = cr.bool()?;
    let bucket = cr.u64()?;
    let clock = BucketClock {
        current_bucket: has_bucket.then_some(bucket),
        ticks_since_snapshot: cr.u32()?,
    };

    let mut t4 = section(SEC_TRIE_V4, &mut r)?;
    let v4 = decode_trie(&mut t4)?;
    let mut t6 = section(SEC_TRIE_V6, &mut r)?;
    let v6 = decode_trie(&mut t6)?;

    if !r.is_empty() {
        return Err(CodecError::Malformed("trailing bytes after last section"));
    }

    Ok(CheckpointState {
        dump: EngineStateDump {
            params,
            ingresses,
            stats,
            v4,
            v6,
        },
        clock,
    })
}

fn decode_trie(r: &mut Reader) -> Result<Vec<TrieNodeDump>, CodecError> {
    let n = r.u64()? as usize;
    let mut nodes = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let node = match r.u8()? {
            0 => TrieNodeDump::Internal,
            1 => {
                let n_ips = r.u32()? as usize;
                let mut ips = Vec::with_capacity(n_ips.min(1 << 20));
                for _ in 0..n_ips {
                    let ip = r.u128()?;
                    let last_ts = r.u64()?;
                    let counts = decode_counts(r)?;
                    ips.push(IpEntryDump {
                        ip,
                        last_ts,
                        counts,
                    });
                }
                TrieNodeDump::Monitoring(ips)
            }
            2 => {
                let ingress = match r.u8()? {
                    1 => {
                        let router = r.u32()?;
                        let ifindex = r.u16()?;
                        LogicalIngress::Link(IngressPoint::new(router, ifindex))
                    }
                    2 => {
                        let router = r.u32()?;
                        let n_ifs = r.u16()? as usize;
                        let mut ifs = Vec::with_capacity(n_ifs);
                        for _ in 0..n_ifs {
                            ifs.push(r.u16()?);
                        }
                        LogicalIngress::Bundle(Bundle::new(router, ifs))
                    }
                    _ => return Err(CodecError::Malformed("ingress kind out of range")),
                };
                let n_members = r.u32()? as usize;
                let mut member_ids = Vec::with_capacity(n_members.min(1 << 20));
                for _ in 0..n_members {
                    member_ids.push(r.u32()?);
                }
                let counts = decode_counts(r)?;
                let total = r.f64()?;
                let last_ts = r.u64()?;
                let since = r.u64()?;
                TrieNodeDump::Classified(ClassifiedDump {
                    ingress,
                    member_ids,
                    counts,
                    total,
                    last_ts,
                    since,
                })
            }
            _ => return Err(CodecError::Malformed("node tag out of range")),
        };
        nodes.push(node);
    }
    if !r.is_empty() {
        return Err(CodecError::Malformed("trailing bytes in trie section"));
    }
    Ok(nodes)
}

fn decode_counts(r: &mut Reader) -> Result<Vec<(u32, f64)>, CodecError> {
    let n = r.u32()? as usize;
    let mut counts = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let id = r.u32()?;
        let w = r.f64()?;
        counts.push((id, w));
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd::IpdEngine;
    use ipd_lpm::Addr;

    fn populated_engine() -> IpdEngine {
        let params = IpdParams {
            ncidr_factor_v4: 0.01,
            ..IpdParams::default()
        };
        let mut e = IpdEngine::new(params).unwrap();
        for i in 0..1200u32 {
            e.ingest_parts(
                30,
                Addr::v4(i.wrapping_mul(0x9E37_79B9)),
                IngressPoint::new(1 + i % 3, 1 + (i % 2) as u16),
                1.0,
            );
        }
        for i in 0..50u128 {
            e.ingest_parts(
                40,
                Addr::v6((0x2001_0db8u128 << 96) | (i << 40)),
                IngressPoint::new(9, 1),
                1.0,
            );
        }
        e.tick(60);
        e
    }

    fn state() -> CheckpointState {
        CheckpointState {
            dump: populated_engine().dump_state(),
            clock: BucketClock {
                current_bucket: Some(17),
                ticks_since_snapshot: 3,
            },
        }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let s = state();
        let bytes = encode(&s);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn encoding_is_deterministic_across_rebuilds() {
        // Two engines with identical logical state but different HashMap
        // iteration histories must encode to identical bytes.
        let s = state();
        let restored = IpdEngine::restore_state(s.dump.clone()).unwrap();
        let s2 = CheckpointState {
            dump: restored.dump_state(),
            clock: s.clock,
        };
        assert_eq!(encode(&s), encode(&s2));
    }

    #[test]
    fn restored_engine_matches_original() {
        let e = populated_engine();
        let restored = IpdEngine::restore_state(e.dump_state()).unwrap();
        assert_eq!(restored.stats(), e.stats());
        assert_eq!(restored.snapshot(999).digest(), e.snapshot(999).digest());
        assert_eq!(restored.registry().len(), e.registry().len());
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = encode(&state());
        // Flip a spread of bytes (every 97th): each must fail the checksum
        // (or, for flips inside the checksum itself, mismatch the content).
        for i in (0..bytes.len()).step_by(97) {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                matches!(decode(&corrupt), Err(CodecError::BadChecksum { .. })),
                "flip at {i} must be caught"
            );
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let bytes = encode(&state());
        assert_eq!(decode(&bytes[..10]), Err(CodecError::Truncated));
        assert_eq!(decode(b""), Err(CodecError::Truncated));
        // Valid checksum over garbage content: bad magic.
        let mut garbage = b"NOTASTATEFILE!!!".to_vec();
        let sum = image_checksum(&garbage);
        garbage.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(&garbage), Err(CodecError::BadMagic));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode(&state());
        bytes[8] = 0xFF; // version low byte
        let len = bytes.len();
        let sum = image_checksum(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CodecError::BadVersion(_))));
    }

    #[test]
    fn empty_engine_roundtrips() {
        let e = IpdEngine::new(IpdParams::default()).unwrap();
        let s = CheckpointState {
            dump: e.dump_state(),
            clock: BucketClock::default(),
        };
        let back = decode(&encode(&s)).unwrap();
        assert_eq!(back, s);
        let restored = IpdEngine::restore_state(back.dump).unwrap();
        assert_eq!(restored.range_count(), 2);
    }
}
