//! Durable sessions: the [`PipelineHook`] that journals flows write-ahead
//! and checkpoints the engine at bucket boundaries, plus [`restore`], which
//! brings a crashed run back to the exact state it died in.
//!
//! The recovery contract (see DESIGN.md §9): generation `s` is checkpoint
//! `s` (engine + clock at a bucket boundary) plus journal `s` (every flow
//! delivered after that boundary, written *before* it touched the engine).
//! Replaying journal `s` on top of checkpoint `s` through the same
//! [`BucketDriver`] reproduces the in-memory engine bit-for-bit, so a
//! restored run that then continues from the cut produces the same final
//! digest as an uninterrupted one.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use ipd::persist::RestoreError as EngineRestoreError;
use ipd::pipeline::{BucketClock, BucketDriver, NoopHook, PipelineHook};
use ipd::IpdEngine;
use ipd_netflow::FlowRecord;

use crate::codec::CheckpointState;
use crate::journal::{read_journal, JournalWriter};
use crate::store::CheckpointStore;
use crate::telemetry::StateTelemetry;

/// Knobs for a [`Durable`] session.
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Checkpoint every this many buckets of data time.
    pub checkpoint_every_buckets: u64,
    /// Keep this many newest generations on disk (minimum 1).
    pub retain: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            checkpoint_every_buckets: 10,
            retain: 3,
        }
    }
}

/// Counters a [`Durable`] session maintains, observable from outside the
/// pipeline through a [`DurableHandle`].
#[derive(Debug, Clone, Default)]
pub struct DurableStats {
    /// Current generation sequence number.
    pub seq: u64,
    /// Checkpoints written (including the opening one).
    pub checkpoints_written: u64,
    /// Flow frames appended to journals.
    pub flows_journaled: u64,
    /// I/O failures swallowed (durability degrades, the run continues).
    pub io_errors: u64,
    /// Message of the most recent I/O failure, if any.
    pub last_error: Option<String>,
}

/// Cloneable view of a [`Durable`] session's [`DurableStats`] — usable while
/// the hook itself is owned by a pipeline thread.
#[derive(Debug, Clone)]
pub struct DurableHandle(Arc<Mutex<DurableStats>>);

impl DurableHandle {
    /// Snapshot of the current counters.
    pub fn stats(&self) -> DurableStats {
        self.0.lock().unwrap().clone()
    }
}

/// The write-ahead durability hook. Plug into
/// [`run_offline_with`](ipd::pipeline::run_offline_with) or
/// [`IpdPipeline::spawn_hooked`](ipd::pipeline::IpdPipeline::spawn_hooked) /
/// [`ShardedPipeline::spawn_hooked`](ipd::pipeline::ShardedPipeline::spawn_hooked).
///
/// I/O failures after start are recorded (see [`DurableHandle`]) but do not
/// stop the run — losing durability is strictly better than losing the
/// analysis.
#[derive(Debug)]
pub struct Durable {
    store: CheckpointStore,
    config: DurableConfig,
    journal: JournalWriter,
    last_ckpt_bucket: Option<u64>,
    shared: Arc<Mutex<DurableStats>>,
    metrics: StateTelemetry,
}

impl Durable {
    /// Open a durable session in `dir`: writes the opening checkpoint of
    /// `engine` at `clock` as a fresh generation (one past the newest on
    /// disk) and opens its journal. Fails if the opening checkpoint cannot
    /// be written — a session that can never recover is refused up front.
    pub fn start(
        dir: impl Into<std::path::PathBuf>,
        engine: &IpdEngine,
        clock: BucketClock,
        config: DurableConfig,
    ) -> io::Result<Self> {
        let store = CheckpointStore::open(dir)?;
        let seq = store.generations()?.last().map_or(1, |last| last + 1);
        let state = CheckpointState {
            dump: engine.dump_state(),
            clock,
        };
        store.save_checkpoint(seq, &state)?;
        let journal = JournalWriter::create(&store.journal_path(seq))?;
        store.prune(config.retain)?;
        let shared = Arc::new(Mutex::new(DurableStats {
            seq,
            checkpoints_written: 1,
            ..DurableStats::default()
        }));
        Ok(Durable {
            store,
            config,
            journal,
            last_ckpt_bucket: clock.current_bucket,
            shared,
            metrics: StateTelemetry::default(),
        })
    }

    /// Register this session's durability metrics (`ipd_state_*`) in
    /// `telemetry`. The opening checkpoint written by [`Durable::start`] is
    /// counted retroactively so the metric matches
    /// [`DurableStats::checkpoints_written`].
    pub fn with_telemetry(mut self, telemetry: &ipd_telemetry::Telemetry) -> Self {
        self.metrics = StateTelemetry::register(telemetry);
        self.metrics
            .checkpoints
            .add(self.shared.lock().unwrap().checkpoints_written);
        self
    }

    /// A handle for observing this session's counters from outside.
    pub fn handle(&self) -> DurableHandle {
        DurableHandle(Arc::clone(&self.shared))
    }

    /// Current generation sequence number.
    pub fn seq(&self) -> u64 {
        self.shared.lock().unwrap().seq
    }

    /// Force a checkpoint now: syncs the open journal (so the previous
    /// generation stays a complete fallback), writes the next-generation
    /// checkpoint, rotates to its journal, and prunes old generations.
    pub fn checkpoint_now(&mut self, engine: &IpdEngine, clock: BucketClock) -> io::Result<()> {
        {
            let _timer = self.metrics.journal_sync_duration.start_timer();
            self.journal.sync()?;
        }
        let seq = self.seq() + 1;
        let state = CheckpointState {
            dump: engine.dump_state(),
            clock,
        };
        {
            let _timer = self.metrics.checkpoint_write_duration.start_timer();
            self.store.save_checkpoint(seq, &state)?;
        }
        self.journal = JournalWriter::create(&self.store.journal_path(seq))?;
        self.store.prune(self.config.retain)?;
        self.last_ckpt_bucket = clock.current_bucket;
        self.metrics.checkpoints.inc();
        let mut s = self.shared.lock().unwrap();
        s.seq = seq;
        s.checkpoints_written += 1;
        Ok(())
    }

    fn record_error(&self, what: &str, err: io::Error) {
        self.metrics.io_errors.inc();
        let mut s = self.shared.lock().unwrap();
        s.io_errors += 1;
        s.last_error = Some(format!("{what}: {err}"));
        eprintln!("ipd-state: {what}: {err} (durability degraded, run continues)");
    }
}

impl PipelineHook for Durable {
    fn flows(&mut self, flows: &[FlowRecord]) {
        match self.journal.append_all(flows) {
            Ok(()) => {
                self.shared.lock().unwrap().flows_journaled += flows.len() as u64;
                self.metrics.journal_appended(flows.len() as u64);
            }
            Err(e) => self.record_error("journal append failed", e),
        }
    }

    fn bucket_crossed(&mut self, engine: &IpdEngine, clock: BucketClock) {
        let due = match (self.last_ckpt_bucket, clock.current_bucket) {
            (Some(last), Some(b)) => b.saturating_sub(last) >= self.config.checkpoint_every_buckets,
            // First crossing of a run that started with no bucket position:
            // checkpoint to establish the baseline.
            (None, Some(_)) => true,
            (_, None) => false,
        };
        if due {
            if let Err(e) = self.checkpoint_now(engine, clock) {
                self.record_error("checkpoint failed", e);
            }
        }
    }

    fn finished(&mut self, _engine: &IpdEngine, _clock: BucketClock) {
        // End of stream: make the journal durable. No checkpoint — the
        // restore path replays the tail and fires the final tick itself.
        let timer = self.metrics.journal_sync_duration.start_timer();
        if let Err(e) = self.journal.sync() {
            drop(timer);
            self.record_error("journal sync failed", e);
        }
    }
}

/// Why a restore could not produce an engine.
#[derive(Debug)]
pub enum RestoreError {
    /// Filesystem trouble reading the state directory.
    Io(io::Error),
    /// No generation had a checksum-valid checkpoint.
    NoValidCheckpoint,
    /// A checkpoint decoded but described an impossible engine state.
    Engine(EngineRestoreError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "restore i/o error: {e}"),
            RestoreError::NoValidCheckpoint => write!(f, "no valid checkpoint in state directory"),
            RestoreError::Engine(e) => write!(f, "checkpoint is not a valid engine state: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

impl From<EngineRestoreError> for RestoreError {
    fn from(e: EngineRestoreError) -> Self {
        RestoreError::Engine(e)
    }
}

/// A recovered run: the engine exactly as the crashed process last had it,
/// plus the clock to resume the [`BucketDriver`] from.
#[derive(Debug)]
pub struct Restored {
    /// The rebuilt engine, journal tail already replayed.
    pub engine: IpdEngine,
    /// Driver position after replay — pass to
    /// [`run_offline_with`](ipd::pipeline::run_offline_with) or
    /// [`BucketDriver::with_clock`] to continue the stream.
    pub clock: BucketClock,
    /// Generation the checkpoint came from.
    pub seq: u64,
    /// Journal frames replayed on top of the checkpoint.
    pub replayed: u64,
    /// True if replay stopped at a torn (partially written) journal frame.
    pub torn_tail: bool,
    /// Newer generations skipped because their checkpoint was damaged.
    pub fell_back: usize,
}

/// Recover from the state directory `dir`: load the newest valid
/// checkpoint (falling back past damaged generations), rebuild the engine,
/// and replay every journal from that generation onward through a
/// [`BucketDriver`] so mid-replay ticks fire exactly as they did in the
/// original run. `snapshot_every_ticks` must match the interrupted run's
/// pipeline configuration.
pub fn restore(dir: &Path, snapshot_every_ticks: u32) -> Result<Restored, RestoreError> {
    restore_instrumented(
        dir,
        snapshot_every_ticks,
        &ipd_telemetry::Telemetry::disabled(),
    )
}

/// [`restore`] with replay progress reported to `telemetry`:
/// `ipd_state_restore_replayed_frames_total` grows as frames are applied,
/// so a metrics endpoint polled during a long restore shows how far replay
/// has come. The resulting engine is identical to plain [`restore`]'s.
pub fn restore_instrumented(
    dir: &Path,
    snapshot_every_ticks: u32,
    telemetry: &ipd_telemetry::Telemetry,
) -> Result<Restored, RestoreError> {
    let metrics = StateTelemetry::register(telemetry);
    let store = CheckpointStore::open(dir)?;
    let valid = store
        .latest_valid()?
        .ok_or(RestoreError::NoValidCheckpoint)?;
    let mut engine = IpdEngine::restore_state(valid.state.dump)?;
    let mut driver = BucketDriver::with_clock(
        engine.params().t_secs,
        snapshot_every_ticks,
        valid.state.clock,
    );

    // Replay journals ascending from the restored generation through the
    // newest on disk. When we fell back past a damaged checkpoint, its
    // journal still holds the flows that followed it — they continue the
    // stream of the older generation's journal. Replay stops at the first
    // torn journal: anything after a tear cannot be ordered reliably.
    let last_journal = store
        .generations()?
        .last()
        .copied()
        .unwrap_or(valid.seq)
        .max(valid.seq);
    let mut replayed = 0u64;
    let mut torn_tail = false;
    let mut sink = |_out| {};
    for seq in valid.seq..=last_journal {
        let path = store.journal_path(seq);
        if !path.exists() {
            continue;
        }
        let contents = read_journal(&path)?;
        for flow in &contents.records {
            driver.observe_with(&mut engine, flow.ts, &mut sink, &mut NoopHook);
            engine.ingest(flow);
            replayed += 1;
            metrics.restore_replayed.inc();
        }
        if contents.torn_tail {
            torn_tail = true;
            break;
        }
    }

    Ok(Restored {
        engine,
        clock: driver.clock(),
        seq: valid.seq,
        replayed,
        torn_tail,
        fell_back: valid.skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd::pipeline::run_offline_with;
    use ipd::IpdParams;
    use ipd_lpm::Addr;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("ipd-state-durable-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_params() -> IpdParams {
        IpdParams {
            ncidr_factor_v4: 0.01,
            ..IpdParams::default()
        }
    }

    fn flows(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let ts = 60 + (i as u64) * 2; // ~30 flows per 60 s bucket
                FlowRecord::synthetic(
                    ts,
                    Addr::v4(0x0A00_0000 | ((i as u32).wrapping_mul(2654435761) >> 8)),
                    1 + (i as u32) % 2,
                    1,
                )
            })
            .collect()
    }

    #[test]
    fn durable_run_checkpoints_and_journals() {
        let dir = tmp_dir("checkpoints");
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut durable = Durable::start(
            &dir,
            &engine,
            BucketClock::default(),
            DurableConfig {
                checkpoint_every_buckets: 2,
                retain: 100,
            },
        )
        .unwrap();
        let handle = durable.handle();
        run_offline_with(&mut engine, flows(600), 4, None, &mut durable, |_| {});
        let stats = handle.stats();
        assert_eq!(stats.flows_journaled, 600);
        assert_eq!(stats.io_errors, 0, "unexpected: {:?}", stats.last_error);
        // 600 flows at 2 s spacing cross ~20 buckets; every 2 buckets → ~10
        // checkpoints plus the opening one.
        assert!(
            stats.checkpoints_written >= 5,
            "got {}",
            stats.checkpoints_written
        );
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(
            store.generations().unwrap().len() as u64,
            stats.checkpoints_written
        );
    }

    #[test]
    fn restore_reproduces_interrupted_run() {
        let dir = tmp_dir("reproduce");
        let all = flows(900);
        let cut = 555;

        // Uninterrupted reference.
        let mut reference = IpdEngine::new(test_params()).unwrap();
        run_offline_with(&mut reference, all.clone(), 4, None, &mut NoopHook, |_| {});

        // Durable run killed mid-stream: drive flows[..cut] through the
        // hook without ever calling finished/finish — then drop the engine
        // on the floor, as a crash would.
        {
            let mut engine = IpdEngine::new(test_params()).unwrap();
            let mut durable = Durable::start(
                &dir,
                &engine,
                BucketClock::default(),
                DurableConfig {
                    checkpoint_every_buckets: 2,
                    retain: 3,
                },
            )
            .unwrap();
            let mut driver = BucketDriver::new(engine.params().t_secs, 4);
            let mut sink = |_out| {};
            for flow in &all[..cut] {
                driver.observe_with(&mut engine, flow.ts, &mut sink, &mut durable);
                durable.flows(std::slice::from_ref(flow));
                engine.ingest(flow);
            }
            durable.journal.sync().unwrap(); // the OS would have these bytes
        }

        // Restore and finish the stream.
        let restored = restore(&dir, 4).unwrap();
        assert!(!restored.torn_tail);
        assert_eq!(restored.fell_back, 0);
        let mut engine = restored.engine;
        run_offline_with(
            &mut engine,
            all[cut..].to_vec(),
            4,
            Some(restored.clock),
            &mut NoopHook,
            |_| {},
        );

        let ts = all.last().unwrap().ts + 120;
        assert_eq!(engine.stats(), reference.stats());
        assert_eq!(
            engine.snapshot(ts).digest(),
            reference.snapshot(ts).digest()
        );
    }

    #[test]
    fn restore_of_empty_dir_fails() {
        let dir = tmp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            restore(&dir, 4),
            Err(RestoreError::NoValidCheckpoint)
        ));
    }

    #[test]
    fn telemetry_mirrors_durable_stats() {
        let dir = tmp_dir("telemetry");
        let telemetry = ipd_telemetry::Telemetry::new();
        let mut engine = IpdEngine::new(test_params()).unwrap();
        let mut durable = Durable::start(
            &dir,
            &engine,
            BucketClock::default(),
            DurableConfig {
                checkpoint_every_buckets: 2,
                retain: 100,
            },
        )
        .unwrap()
        .with_telemetry(&telemetry);
        let handle = durable.handle();
        run_offline_with(&mut engine, flows(600), 4, None, &mut durable, |_| {});
        let stats = handle.stats();
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("ipd_state_journal_frames_total"),
            Some(stats.flows_journaled)
        );
        assert_eq!(
            snap.counter("ipd_state_journal_bytes_total"),
            Some(stats.flows_journaled * crate::journal::FRAME_LEN as u64)
        );
        assert_eq!(
            snap.counter("ipd_state_checkpoints_total"),
            Some(stats.checkpoints_written)
        );
        assert_eq!(snap.counter("ipd_state_io_errors_total"), Some(0));

        // Restore with telemetry reports replay progress and produces the
        // same engine as the plain restore.
        let restored = restore_instrumented(&dir, 4, &telemetry).unwrap();
        let snap = telemetry.snapshot();
        assert_eq!(
            snap.counter("ipd_state_restore_replayed_frames_total"),
            Some(restored.replayed)
        );
        let plain = restore(&dir, 4).unwrap();
        let ts = 60 + 600 * 2 + 120;
        assert_eq!(
            restored.engine.snapshot(ts).digest(),
            plain.engine.snapshot(ts).digest()
        );
    }

    #[test]
    fn generations_accumulate_across_sessions() {
        let dir = tmp_dir("sessions");
        let engine = IpdEngine::new(test_params()).unwrap();
        let cfg = DurableConfig {
            checkpoint_every_buckets: 2,
            retain: 10,
        };
        let d1 = Durable::start(&dir, &engine, BucketClock::default(), cfg).unwrap();
        assert_eq!(d1.seq(), 1);
        drop(d1);
        let d2 = Durable::start(&dir, &engine, BucketClock::default(), cfg).unwrap();
        assert_eq!(d2.seq(), 2);
    }
}
