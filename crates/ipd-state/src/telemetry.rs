//! Metric handles for the durability layer, mirroring [`DurableStats`] into
//! an [`ipd_telemetry::Telemetry`] registry plus timings the stats block
//! does not carry (checkpoint encode+write and journal fsync wall time).
//!
//! Like the rest of the telemetry surface these are observational only:
//! nothing here feeds back into checkpointing decisions, and a disabled
//! registry leaves every handle a no-op.
//!
//! [`DurableStats`]: crate::durable::DurableStats

use ipd_telemetry::{Counter, Histogram, Telemetry};

use crate::journal::FRAME_LEN;

/// All durability metric handles. `Default` is all-disabled;
/// [`StateTelemetry::register`] binds them to a live registry.
#[derive(Debug, Clone, Default)]
pub struct StateTelemetry {
    /// `ipd_state_journal_frames_total` — flow frames appended to journals.
    pub journal_frames: Counter,
    /// `ipd_state_journal_bytes_total` — on-disk journal bytes appended
    /// (frames × [`FRAME_LEN`], headers excluded).
    pub journal_bytes: Counter,
    /// `ipd_state_journal_sync_nanoseconds` — journal flush+fsync wall time.
    pub journal_sync_duration: Histogram,
    /// `ipd_state_checkpoints_total` — checkpoints written (including each
    /// session's opening one).
    pub checkpoints: Counter,
    /// `ipd_state_checkpoint_write_nanoseconds` — checkpoint encode + atomic
    /// write wall time.
    pub checkpoint_write_duration: Histogram,
    /// `ipd_state_io_errors_total` — I/O failures swallowed (durability
    /// degraded, run continued).
    pub io_errors: Counter,
    /// `ipd_state_restore_replayed_frames_total` — journal frames replayed
    /// onto a restored checkpoint; grows live during
    /// [`restore_instrumented`](crate::durable::restore_instrumented), so a
    /// metrics endpoint shows replay progress.
    pub restore_replayed: Counter,
}

impl StateTelemetry {
    /// Register every durability metric in `telemetry`. Idempotent — two
    /// registrations share the same cells.
    pub fn register(telemetry: &Telemetry) -> Self {
        StateTelemetry {
            journal_frames: telemetry.counter(
                "ipd_state_journal_frames_total",
                "Flow frames appended to write-ahead journals",
            ),
            journal_bytes: telemetry.counter(
                "ipd_state_journal_bytes_total",
                "On-disk journal bytes appended (frames only, headers excluded)",
            ),
            journal_sync_duration: telemetry.timing(
                "ipd_state_journal_sync_nanoseconds",
                "Journal flush+fsync wall time in nanoseconds",
            ),
            checkpoints: telemetry.counter(
                "ipd_state_checkpoints_total",
                "Engine checkpoints written, including the opening one",
            ),
            checkpoint_write_duration: telemetry.timing(
                "ipd_state_checkpoint_write_nanoseconds",
                "Checkpoint encode + atomic write wall time in nanoseconds",
            ),
            io_errors: telemetry.counter(
                "ipd_state_io_errors_total",
                "Durability I/O failures swallowed (run continued)",
            ),
            restore_replayed: telemetry.counter(
                "ipd_state_restore_replayed_frames_total",
                "Journal frames replayed during restore",
            ),
        }
    }

    /// Record `n` frames appended to the journal.
    pub(crate) fn journal_appended(&self, n: u64) {
        self.journal_frames.add(n);
        self.journal_bytes.add(n * FRAME_LEN as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_append_counts_bytes() {
        let telemetry = Telemetry::new();
        let m = StateTelemetry::register(&telemetry);
        m.journal_appended(3);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("ipd_state_journal_frames_total"), Some(3));
        assert_eq!(
            snap.counter("ipd_state_journal_bytes_total"),
            Some(3 * FRAME_LEN as u64)
        );
    }

    #[test]
    fn disabled_is_inert() {
        let m = StateTelemetry::default();
        m.journal_appended(10);
        m.io_errors.inc();
        assert_eq!(m.journal_frames.get(), 0);
        assert_eq!(m.io_errors.get(), 0);
    }
}
