//! On-disk layout and lifecycle of checkpoint generations.
//!
//! A state directory holds numbered generations. Generation `s` is the pair
//!
//! ```text
//! checkpoint-{s:010}.ipds   engine state at the moment the generation opened
//! journal-{s:010}.ipdj      write-ahead flows appended after that moment
//! ```
//!
//! Checkpoints are written atomically (temp file, fsync, rename), so a
//! crash never leaves a half-written `.ipds` under its final name. Restore
//! picks the newest checkpoint that passes its checksum — falling back a
//! generation if the newest is damaged — and replays every journal from
//! that generation onward in order.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use ipd::pipeline::BucketClock;

use crate::codec::{self, CheckpointState, CodecError};

const CKPT_PREFIX: &str = "checkpoint-";
const CKPT_EXT: &str = "ipds";
const JRNL_PREFIX: &str = "journal-";
const JRNL_EXT: &str = "ipdj";

/// A checkpoint directory.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) the state directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of generation `seq`'s checkpoint file.
    pub fn checkpoint_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{CKPT_PREFIX}{seq:010}.{CKPT_EXT}"))
    }

    /// Path of generation `seq`'s journal file.
    pub fn journal_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{JRNL_PREFIX}{seq:010}.{JRNL_EXT}"))
    }

    /// Sequence numbers of all checkpoints on disk, ascending.
    pub fn generations(&self) -> io::Result<Vec<u64>> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_seq(name, CKPT_PREFIX, CKPT_EXT) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Write generation `seq`'s checkpoint atomically: encode to a temp
    /// file, fsync, then rename into place.
    pub fn save_checkpoint(&self, seq: u64, state: &CheckpointState) -> io::Result<()> {
        let bytes = codec::encode(state);
        let final_path = self.checkpoint_path(seq);
        let tmp_path = self.dir.join(format!(".{CKPT_PREFIX}{seq:010}.tmp"));
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)
    }

    /// Read and decode generation `seq`'s checkpoint.
    pub fn load_checkpoint(&self, seq: u64) -> io::Result<Result<CheckpointState, CodecError>> {
        let mut bytes = Vec::new();
        File::open(self.checkpoint_path(seq))?.read_to_end(&mut bytes)?;
        Ok(codec::decode(&bytes))
    }

    /// The newest generation whose checkpoint decodes cleanly, together
    /// with its state. Damaged or unreadable checkpoints are skipped
    /// (reported in `skipped`), falling back to older generations. `None`
    /// if no valid checkpoint exists.
    pub fn latest_valid(&self) -> io::Result<Option<ValidCheckpoint>> {
        let mut skipped = 0usize;
        for &seq in self.generations()?.iter().rev() {
            match self.load_checkpoint(seq) {
                Ok(Ok(state)) => {
                    return Ok(Some(ValidCheckpoint {
                        seq,
                        state,
                        skipped,
                    }))
                }
                Ok(Err(_)) | Err(_) => skipped += 1,
            }
        }
        Ok(None)
    }

    /// The newest generation that both decodes *and* restores into a ready
    /// engine — the read-only serving path: no journal replay, no tick, no
    /// mutation of the store. A checkpoint is "all flows of the closed
    /// buckets applied", exactly the state the serving hook would have
    /// published at that boundary, so a server can come up from disk alone
    /// and answer with the last durable ingress map. Generations whose
    /// checkpoint is damaged or fails restore are skipped like
    /// [`CheckpointStore::latest_valid`] skips undecodable ones.
    pub fn latest_engine(&self) -> io::Result<Option<(u64, ipd::IpdEngine, BucketClock)>> {
        for &seq in self.generations()?.iter().rev() {
            let Ok(Ok(state)) = self.load_checkpoint(seq) else {
                continue;
            };
            if let Ok(engine) = ipd::IpdEngine::restore_state(state.dump) {
                return Ok(Some((seq, engine, state.clock)));
            }
        }
        Ok(None)
    }

    /// Delete all but the newest `retain` generations (both files of each).
    /// `retain` of 0 is treated as 1 — the store never deletes its only
    /// recovery point.
    pub fn prune(&self, retain: usize) -> io::Result<()> {
        let retain = retain.max(1);
        let seqs = self.generations()?;
        if seqs.len() <= retain {
            return Ok(());
        }
        for &seq in &seqs[..seqs.len() - retain] {
            // Checkpoint first: a journal without its checkpoint is useless,
            // but a checkpoint without its journal still restores.
            remove_if_exists(&self.checkpoint_path(seq))?;
            remove_if_exists(&self.journal_path(seq))?;
        }
        Ok(())
    }
}

/// A decoded checkpoint chosen by [`CheckpointStore::latest_valid`].
#[derive(Debug)]
pub struct ValidCheckpoint {
    /// The generation it belongs to.
    pub seq: u64,
    /// The decoded state.
    pub state: CheckpointState,
    /// How many newer generations were skipped as damaged.
    pub skipped: usize,
}

fn parse_seq(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?;
    let digits = rest.strip_suffix(&format!(".{ext}"))?;
    if digits.len() != 10 {
        return None;
    }
    digits.parse().ok()
}

fn remove_if_exists(path: &Path) -> io::Result<()> {
    match fs::remove_file(path) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalWriter;
    use ipd::{IpdEngine, IpdParams};

    fn tmp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join("ipd-state-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    fn small_state(bucket: u64) -> CheckpointState {
        let e = IpdEngine::new(IpdParams::default()).unwrap();
        CheckpointState {
            dump: e.dump_state(),
            clock: BucketClock {
                current_bucket: Some(bucket),
                ticks_since_snapshot: 0,
            },
        }
    }

    #[test]
    fn save_list_load() {
        let store = tmp_store("save-list-load");
        assert!(store.generations().unwrap().is_empty());
        store.save_checkpoint(1, &small_state(1)).unwrap();
        store.save_checkpoint(2, &small_state(2)).unwrap();
        assert_eq!(store.generations().unwrap(), vec![1, 2]);
        let got = store.load_checkpoint(2).unwrap().unwrap();
        assert_eq!(got.clock.current_bucket, Some(2));
        let latest = store.latest_valid().unwrap().unwrap();
        assert_eq!((latest.seq, latest.skipped), (2, 0));
    }

    #[test]
    fn corrupt_latest_falls_back() {
        let store = tmp_store("fallback");
        store.save_checkpoint(1, &small_state(1)).unwrap();
        store.save_checkpoint(2, &small_state(2)).unwrap();
        // Flip one byte mid-file in generation 2.
        let path = store.checkpoint_path(2);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        let latest = store.latest_valid().unwrap().unwrap();
        assert_eq!((latest.seq, latest.skipped), (1, 1));
        assert_eq!(latest.state.clock.current_bucket, Some(1));
    }

    #[test]
    fn all_corrupt_is_none() {
        let store = tmp_store("all-corrupt");
        store.save_checkpoint(1, &small_state(1)).unwrap();
        fs::write(store.checkpoint_path(1), b"junk").unwrap();
        assert!(store.latest_valid().unwrap().is_none());
    }

    #[test]
    fn prune_keeps_newest_pairs() {
        let store = tmp_store("prune");
        for seq in 1..=5 {
            store.save_checkpoint(seq, &small_state(seq)).unwrap();
            JournalWriter::create(&store.journal_path(seq))
                .unwrap()
                .sync()
                .unwrap();
        }
        store.prune(2).unwrap();
        assert_eq!(store.generations().unwrap(), vec![4, 5]);
        for seq in 1..=3 {
            assert!(
                !store.journal_path(seq).exists(),
                "journal {seq} must be gone"
            );
        }
        assert!(store.journal_path(4).exists());
        // retain 0 behaves as retain 1.
        store.prune(0).unwrap();
        assert_eq!(store.generations().unwrap(), vec![5]);
    }

    #[test]
    fn latest_engine_restores_without_replay() {
        let store = tmp_store("latest-engine");
        assert!(store.latest_engine().unwrap().is_none());
        store.save_checkpoint(1, &small_state(1)).unwrap();
        store.save_checkpoint(2, &small_state(2)).unwrap();
        // Damage the newest: the loader falls back like latest_valid does.
        let path = store.checkpoint_path(2);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        let (seq, engine, clock) = store.latest_engine().unwrap().unwrap();
        assert_eq!(seq, 1);
        assert_eq!(clock.current_bucket, Some(1));
        assert_eq!(engine.stats().flows_ingested, 0);
    }

    #[test]
    fn stray_files_are_ignored() {
        let store = tmp_store("stray");
        store.save_checkpoint(3, &small_state(3)).unwrap();
        fs::write(store.dir().join("README"), b"hi").unwrap();
        fs::write(store.dir().join("checkpoint-abc.ipds"), b"junk").unwrap();
        fs::write(store.dir().join("checkpoint-123.ipds"), b"short digits").unwrap();
        assert_eq!(store.generations().unwrap(), vec![3]);
    }
}
