//! # ipd-state — durable state for the IPD engine
//!
//! IPD's value compounds over hours of traffic: classified ranges take many
//! buckets to earn their confidence, and a restart that starts cold throws
//! that history away. This crate makes an IPD run crash-safe and
//! warm-restartable with two complementary artifacts:
//!
//! * **Checkpoints** ([`codec`], [`store`]) — a versioned, deterministic
//!   binary image of the full engine state (both tries, the ingress intern
//!   table, parameters, stats) plus the bucket clock, written atomically at
//!   bucket boundaries. Encoding is canonical: identical logical state
//!   yields identical bytes, regardless of hash-map history.
//! * **A write-ahead flow journal** ([`journal`]) — every flow is appended
//!   (length-delimited, per-frame checksummed) *before* it is ingested, so
//!   the flows an in-memory engine saw after its last checkpoint survive
//!   the crash that loses the engine.
//!
//! [`durable::Durable`] is the [`ipd::pipeline::PipelineHook`] that
//! maintains both during a run; [`durable::restore`] rebuilds the engine
//! from the newest valid checkpoint (falling back past damaged ones) and
//! replays the journal tail, tolerating a torn final frame.
//!
//! ## The equivalence contract
//!
//! Kill a run at any point, [`restore`](durable::restore), and continue
//! with the remaining flows: the final [`ipd::Snapshot::digest`] and
//! classified set are bit-for-bit identical to an uninterrupted run. This
//! holds for the plain engine and for [`ipd::ShardedEngine`] at any shard
//! count — checkpoints are shard-count-free, so a run checkpointed at one
//! width can be restored at another. (Like the sharding contract, bit-for-
//! bit equality is guaranteed in [`ipd::CountMode::Flows`]; in `Bytes` mode
//! float summation order can differ in the last ulp.)

pub mod codec;
pub mod durable;
pub mod journal;
pub mod store;
pub mod telemetry;

pub use codec::{decode, encode, fnv1a, image_checksum, CheckpointState, CodecError};
pub use durable::{
    restore, restore_instrumented, Durable, DurableConfig, DurableHandle, DurableStats,
    RestoreError, Restored,
};
pub use journal::{parse_journal, read_journal, JournalContents, JournalWriter};
pub use store::{CheckpointStore, ValidCheckpoint};
pub use telemetry::StateTelemetry;
