//! The write-ahead flow journal: an append-only file of length-delimited
//! [`FlowRecord`] frames, written *before* the corresponding flows touch the
//! engine. A crash therefore leaves at most a torn final frame; everything
//! the (lost) in-memory engine had seen since the last checkpoint is on
//! disk and can be replayed.
//!
//! Frame layout:
//!
//! ```text
//! magic "IPDJRNL1"                              (file header, once)
//! frame := len u32 LE | payload[len] | fnv1a-64(payload) u64 LE
//! ```
//!
//! The payload is the 62-byte canonical trace encoding from
//! [`ipd_netflow::trace`], so journals are readable with the same record
//! codec as offline traces. The reader is torn-tail tolerant: a partial
//! length, short payload, short checksum, checksum mismatch, or undecodable
//! record ends replay at the last whole frame instead of failing the
//! restore.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use ipd_netflow::trace::{decode_record, encode_record, RECORD_LEN};
use ipd_netflow::FlowRecord;

use crate::codec::fnv1a;

/// Journal file magic.
pub const MAGIC: [u8; 8] = *b"IPDJRNL1";

/// On-disk bytes per frame: length prefix + payload + checksum.
pub const FRAME_LEN: usize = 4 + RECORD_LEN + 8;

/// Appends write-ahead frames to one journal file.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
    frames: u64,
}

impl JournalWriter {
    /// Create (truncate) a journal at `path` and write the file header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut out = BufWriter::new(file);
        out.write_all(&MAGIC)?;
        Ok(JournalWriter { out, frames: 0 })
    }

    /// Append one flow as a framed record. Buffered; call [`Self::flush`] to
    /// push frames to the OS.
    pub fn append(&mut self, flow: &FlowRecord) -> io::Result<()> {
        let payload = encode_record(flow);
        self.out.write_all(&(RECORD_LEN as u32).to_le_bytes())?;
        self.out.write_all(&payload)?;
        self.out.write_all(&fnv1a(&payload).to_le_bytes())?;
        self.frames += 1;
        Ok(())
    }

    /// Append a batch of flows.
    pub fn append_all(&mut self, flows: &[FlowRecord]) -> io::Result<()> {
        for f in flows {
            self.append(f)?;
        }
        Ok(())
    }

    /// Frames appended so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Flush buffered frames to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Flush and fsync — frames are durable on return.
    pub fn sync(&mut self) -> io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_all()
    }
}

/// Result of reading a journal back.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// The whole frames, in append order.
    pub records: Vec<FlowRecord>,
    /// True if the file ended in a partial or corrupt frame (the torn tail
    /// of an interrupted write); `records` stops at the last whole frame.
    pub torn_tail: bool,
}

/// Read a journal file. Returns an error only for I/O failures or a bad
/// file header; in-stream damage is reported as `torn_tail` instead, per
/// the write-ahead recovery contract.
pub fn read_journal(path: &Path) -> io::Result<JournalContents> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    parse_journal(&bytes)
}

/// Parse a complete journal image from memory — the pure decoding half of
/// [`read_journal`], exposed so harnesses (fuzzing in particular) can hit
/// the frame parser without touching the filesystem. Must never panic on
/// arbitrary input: any damage past the header degrades to `torn_tail`.
pub fn parse_journal(bytes: &[u8]) -> io::Result<JournalContents> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an IPD journal (bad magic)",
        ));
    }
    let mut buf = &bytes[MAGIC.len()..];
    let mut records = Vec::new();
    let torn_tail = loop {
        if buf.is_empty() {
            break false;
        }
        if buf.len() < 4 {
            break true;
        }
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        if len != RECORD_LEN || buf.len() < 4 + len + 8 {
            break true;
        }
        let payload: &[u8; RECORD_LEN] = buf[4..4 + len].try_into().unwrap();
        let stored = u64::from_le_bytes(buf[4 + len..4 + len + 8].try_into().unwrap());
        if stored != fnv1a(payload) {
            break true;
        }
        match decode_record(payload) {
            Ok(r) => records.push(r),
            Err(_) => break true,
        }
        buf = &buf[4 + len + 8..];
    };
    Ok(JournalContents { records, torn_tail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_lpm::Addr;

    fn flows(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| FlowRecord {
                ts: 100 + i as u64,
                src: Addr::v4(0x0A00_0000 + i as u32),
                dst: Addr::v4(0xC633_6401),
                router: 3,
                input_if: (i % 5) as u16,
                output_if: 1,
                proto: 17,
                src_port: 53,
                dst_port: 40_000 + i as u16,
                packets: 1,
                bytes: 80,
            })
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ipd-state-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.ipdj", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let flows = flows(100);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append_all(&flows).unwrap();
        assert_eq!(w.frames(), 100);
        w.sync().unwrap();
        let back = read_journal(&path).unwrap();
        assert!(!back.torn_tail);
        assert_eq!(back.records, flows);
    }

    #[test]
    fn empty_journal_is_fine() {
        let path = tmp("empty");
        JournalWriter::create(&path).unwrap().sync().unwrap();
        let back = read_journal(&path).unwrap();
        assert!(!back.torn_tail);
        assert!(back.records.is_empty());
    }

    #[test]
    fn torn_tail_at_every_cut_point() {
        let path = tmp("torn");
        let flows = flows(3);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append_all(&flows).unwrap();
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        let frame = 4 + RECORD_LEN + 8;
        let two = MAGIC.len() + 2 * frame;
        // Truncate anywhere inside the third frame: the first two must
        // survive, torn_tail must be set (except at the exact boundary).
        for cut in two + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let back = read_journal(&path).unwrap();
            assert!(back.torn_tail, "cut at {cut} must be torn");
            assert_eq!(back.records, flows[..2], "cut at {cut}");
        }
        // Exact frame boundary: clean read of two frames.
        std::fs::write(&path, &full[..two]).unwrap();
        let back = read_journal(&path).unwrap();
        assert!(!back.torn_tail);
        assert_eq!(back.records, flows[..2]);
    }

    #[test]
    fn checksum_mismatch_stops_replay() {
        let path = tmp("cksum");
        let flows = flows(3);
        let mut w = JournalWriter::create(&path).unwrap();
        w.append_all(&flows).unwrap();
        w.sync().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let frame = 4 + RECORD_LEN + 8;
        // Corrupt a payload byte of the second frame.
        let at = MAGIC.len() + frame + 4 + 10;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let back = read_journal(&path).unwrap();
        assert!(back.torn_tail);
        assert_eq!(back.records, flows[..1]);
    }

    #[test]
    fn bad_magic_is_an_error() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAJOURNAL").unwrap();
        assert!(read_journal(&path).is_err());
    }
}
