//! Crash-recovery differential harness: the equivalence contract of the
//! checkpoint/journal subsystem, checked end to end.
//!
//! A seeded ~44k-flow stream is run to completion on a plain engine (the
//! reference). Then durable runs are killed mid-stream — the in-memory
//! engine discarded, exactly as a crash would lose it — restored from disk,
//! and driven over the remainder of the stream. The final snapshot digest,
//! classified prefix→ingress set, and cumulative engine stats must be
//! bit-for-bit identical to the uninterrupted run, for:
//!
//! * the per-flow offline driver on the plain engine,
//! * the sharded batch driver at K ∈ {1, 8} — including restoring at a
//!   *different* shard count than the run was checkpointed under,
//! * the threaded `IpdPipeline` / `ShardedPipeline` (`spawn_hooked`),
//! * a damaged latest checkpoint (restore falls back a generation), and
//! * a torn final journal frame (replay stops at the last whole frame and
//!   the lost flows are re-delivered).

use ipd::pipeline::{
    run_offline, run_offline_with, BucketClock, BucketDriver, IpdPipeline, NoopHook,
    PipelineConfig, PipelineHook, ShardedPipeline,
};
use ipd::{EngineStats, IpdEngine, IpdParams, LogicalIngress, ShardedEngine};
use ipd_lpm::{Addr, Prefix};
use ipd_netflow::FlowRecord;
use ipd_state::{restore, CheckpointStore, Durable, DurableConfig};
use rand::{Rng, SeedableRng};

const SNAPSHOT_EVERY: u32 = 2;
const EVERY_BUCKETS: u64 = 2;

fn test_params() -> IpdParams {
    IpdParams {
        ncidr_factor_v4: 0.002,
        ncidr_factor_v6: 1e-9,
        cidr_max_v4: 20,
        ..IpdParams::default()
    }
}

fn durable_config() -> DurableConfig {
    DurableConfig {
        checkpoint_every_buckets: EVERY_BUCKETS,
        retain: 4,
    }
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("ipd-state-crash-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same shaped stream as ipd-core's seeded differential test: stable
/// pools, a contested pool that flips ownership (invalidations), a pool
/// that goes silent (decay/drop), and v6 across two interfaces (bundle).
fn seeded_flows() -> Vec<FlowRecord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1bd_2024);
    let mut flows = Vec::new();
    for minute in 0..30u64 {
        for _ in 0..600 {
            let low: u32 = rng.random_range(0u32..1 << 22);
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v4(0x0A00_0000 + low),
                1,
                1,
            ));
            let high: u32 = rng.random_range(0u32..1 << 22);
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v4(0xC000_0000 + high),
                2,
                1,
            ));
        }
        for _ in 0..200 {
            let bits: u32 = rng.random_range(0u32..1 << 16);
            let router = if minute < 15 { 3 } else { 4 };
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v4(0x5000_0000 + bits),
                router,
                2,
            ));
        }
        if minute < 8 {
            for _ in 0..200 {
                let bits: u32 = rng.random_range(0u32..1 << 16);
                flows.push(FlowRecord::synthetic(
                    minute * 60 + rng.random_range(0..60u64),
                    Addr::v4(0x8000_0000 + bits),
                    5,
                    1,
                ));
            }
        }
        for _ in 0..100 {
            let bits: u32 = rng.random_range(0u32..1 << 20);
            let ifidx = rng.random_range(1u16..3);
            flows.push(FlowRecord::synthetic(
                minute * 60 + rng.random_range(0..60u64),
                Addr::v6((0x2001_0db8u128 << 96) | (u128::from(bits) << 30)),
                6,
                ifidx,
            ));
        }
    }
    flows.sort_by_key(|f| f.ts);
    flows
}

/// Everything the equivalence contract compares.
#[derive(Debug, PartialEq)]
struct FinalState {
    stats: EngineStats,
    digest: u64,
    classified: Vec<(Prefix, LogicalIngress)>,
}

fn final_state(engine: &IpdEngine) -> FinalState {
    let snap = engine.snapshot(u64::MAX);
    let mut classified: Vec<(Prefix, LogicalIngress)> = snap
        .classified()
        .filter_map(|r| r.ingress.clone().map(|i| (r.range, i)))
        .collect();
    classified.sort_unstable_by_key(|a| a.0);
    FinalState {
        stats: engine.stats().clone(),
        digest: snap.digest(),
        classified,
    }
}

fn reference_run(flows: &[FlowRecord]) -> FinalState {
    let mut engine = IpdEngine::new(test_params()).unwrap();
    run_offline(&mut engine, flows.iter().cloned(), SNAPSHOT_EVERY, |_| {});
    final_state(&engine)
}

/// Drive a durable per-flow run over `flows[..cut]` and "crash": the hook's
/// end-of-stream sync fires (the OS would have those bytes anyway), but no
/// final tick runs and the in-memory engine is dropped on the floor.
fn crash_plain(dir: &std::path::Path, flows: &[FlowRecord], cut: usize) {
    let mut engine = IpdEngine::new(test_params()).unwrap();
    let mut durable =
        Durable::start(dir, &engine, BucketClock::default(), durable_config()).unwrap();
    let mut driver = BucketDriver::new(engine.params().t_secs, SNAPSHOT_EVERY);
    let mut sink = |_out| {};
    for flow in &flows[..cut] {
        driver.observe_with(&mut engine, flow.ts, &mut sink, &mut durable);
        durable.flows(std::slice::from_ref(flow));
        engine.ingest(flow);
    }
    PipelineHook::finished(&mut durable, &engine, driver.clock());
    assert_eq!(durable.handle().stats().io_errors, 0);
    // Engine dropped here: the crash.
}

/// Same crash, but through the sharded batch driver at `shards`.
fn crash_sharded(dir: &std::path::Path, flows: &[FlowRecord], cut: usize, shards: usize) {
    let mut engine = ShardedEngine::new(test_params(), shards).unwrap();
    let mut durable = Durable::start(
        dir,
        engine.engine(),
        BucketClock::default(),
        durable_config(),
    )
    .unwrap();
    let mut driver = BucketDriver::new(engine.params().t_secs, SNAPSHOT_EVERY);
    let mut sink = |_out| {};
    for batch in flows[..cut].chunks(512) {
        driver.ingest_batch_with(&mut engine, batch, &mut sink, &mut durable);
    }
    PipelineHook::finished(&mut durable, engine.engine(), driver.clock());
    assert_eq!(durable.handle().stats().io_errors, 0);
}

/// Restore from `dir` and finish the stream on a plain engine. The restored
/// engine's own `flows_ingested` tells us where in the stream it died —
/// everything after that is re-delivered (exactly what a collector replaying
/// from its own upstream position would do).
fn resume_plain(dir: &std::path::Path, flows: &[FlowRecord]) -> FinalState {
    let restored = restore(dir, SNAPSHOT_EVERY).unwrap();
    let applied = restored.engine.stats().flows_ingested as usize;
    assert!(applied <= flows.len());
    let mut engine = restored.engine;
    run_offline_with(
        &mut engine,
        flows[applied..].iter().cloned(),
        SNAPSHOT_EVERY,
        Some(restored.clock),
        &mut NoopHook,
        |_| {},
    );
    final_state(&engine)
}

/// Restore from `dir` into a sharded engine at `shards` — any width, not
/// necessarily the one the run was checkpointed under — and finish.
fn resume_sharded(dir: &std::path::Path, flows: &[FlowRecord], shards: usize) -> FinalState {
    let restored = restore(dir, SNAPSHOT_EVERY).unwrap();
    let applied = restored.engine.stats().flows_ingested as usize;
    let mut engine = ShardedEngine::from_engine(restored.engine, shards).unwrap();
    run_offline_with(
        &mut engine,
        flows[applied..].iter().cloned(),
        SNAPSHOT_EVERY,
        Some(restored.clock),
        &mut NoopHook,
        |_| {},
    );
    final_state(engine.engine())
}

#[test]
fn plain_engine_crash_at_two_cuts_restores_exactly() {
    let flows = seeded_flows();
    assert!(flows.len() > 40_000);
    let reference = reference_run(&flows);
    assert!(reference.stats.splits > 0 && !reference.classified.is_empty());

    for (label, cut) in [
        ("third", flows.len() / 3),
        ("two-thirds", flows.len() * 2 / 3),
    ] {
        let dir = tmp_dir(&format!("plain-{label}"));
        crash_plain(&dir, &flows, cut);
        let resumed = resume_plain(&dir, &flows);
        assert_eq!(resumed, reference, "cut at {label} diverged");
    }
}

#[test]
fn sharded_crash_restores_at_same_and_different_widths() {
    let flows = seeded_flows();
    let reference = reference_run(&flows);
    let cut = flows.len() / 2;

    // Checkpoint under K=8; restore plain, at K=1, and at K=8.
    let dir = tmp_dir("sharded-k8");
    crash_sharded(&dir, &flows, cut, 8);
    assert_eq!(
        resume_plain(&dir, &flows),
        reference,
        "K=8 → plain diverged"
    );
    assert_eq!(
        resume_sharded(&dir, &flows, 1),
        reference,
        "K=8 → K=1 diverged"
    );
    assert_eq!(
        resume_sharded(&dir, &flows, 8),
        reference,
        "K=8 → K=8 diverged"
    );

    // Checkpoint under K=1; restore at K=8.
    let dir = tmp_dir("sharded-k1");
    crash_sharded(&dir, &flows, cut, 1);
    assert_eq!(
        resume_sharded(&dir, &flows, 8),
        reference,
        "K=1 → K=8 diverged"
    );
}

#[test]
fn threaded_pipelines_crash_and_restore_exactly() {
    let flows = seeded_flows();
    let reference = reference_run(&flows);
    let cut = flows.len() * 2 / 5;

    // Plain threaded pipeline, killed after the cut: discard the returned
    // engine (a crash loses it) and restore from disk alone.
    let dir = tmp_dir("pipeline-plain");
    {
        let seed = IpdEngine::new(test_params()).unwrap();
        let durable =
            Durable::start(&dir, &seed, BucketClock::default(), durable_config()).unwrap();
        let handle = durable.handle();
        let pipeline = IpdPipeline::spawn_hooked(
            PipelineConfig {
                params: test_params(),
                channel_capacity: 8,
                snapshot_every_ticks: SNAPSHOT_EVERY,
                shards: 1,
                ..Default::default()
            },
            Box::new(durable),
        )
        .unwrap();
        let tx = pipeline.input();
        let rx = pipeline.output().clone();
        let drain = std::thread::spawn(move || rx.iter().for_each(drop));
        for chunk in flows[..cut].chunks(512) {
            tx.send(chunk.to_vec()).unwrap();
        }
        drop(tx);
        let (_engine, _hook, _leftover) = pipeline.finish_hooked();
        drain.join().unwrap();
        assert_eq!(handle.stats().io_errors, 0);
        // _engine discarded: the crash.
    }
    assert_eq!(
        resume_plain(&dir, &flows),
        reference,
        "IpdPipeline crash diverged"
    );

    // Sharded threaded pipeline at K=8, restored into a plain engine.
    let dir = tmp_dir("pipeline-sharded");
    {
        let seed = IpdEngine::new(test_params()).unwrap();
        let durable =
            Durable::start(&dir, &seed, BucketClock::default(), durable_config()).unwrap();
        let pipeline = ShardedPipeline::spawn_hooked(
            PipelineConfig {
                params: test_params(),
                channel_capacity: 8,
                snapshot_every_ticks: SNAPSHOT_EVERY,
                shards: 8,
                ..Default::default()
            },
            Box::new(durable),
        )
        .unwrap();
        let tx = pipeline.input();
        let rx = pipeline.output().clone();
        let drain = std::thread::spawn(move || rx.iter().for_each(drop));
        for chunk in flows[..cut].chunks(512) {
            tx.send(chunk.to_vec()).unwrap();
        }
        drop(tx);
        let (_engine, _hook, _leftover) = pipeline.finish_hooked();
        drain.join().unwrap();
    }
    assert_eq!(
        resume_plain(&dir, &flows),
        reference,
        "ShardedPipeline crash diverged"
    );
}

/// The DFZ satellite: crash in the middle of a route-churn *burst* — flap
/// and withdraw/re-announce rates cranked far above the defaults — and the
/// restore must be clock-exact: the recovered [`BucketClock`] equals the one
/// the crashed run died with, and finishing the stream lands bit-for-bit on
/// the uninterrupted run's digest.
#[test]
fn dfz_churn_burst_crash_restores_clock_exact() {
    use ipd_traffic::{DfzConfig, DfzWorld};

    let mut cfg = DfzConfig::smoke_10k(17);
    cfg.flows_per_minute = 9_000;
    // A burst, not background churn: most prefixes flap every few minutes
    // and a quarter of the table cycles through withdraw/re-announce.
    cfg.churn.flap_fraction = 0.5;
    cfg.churn.flap_mean_secs = 240;
    cfg.churn.updown_fraction = 0.25;
    cfg.churn.up_mean_secs = 300;
    cfg.churn.down_mean_secs = 120;
    let world = DfzWorld::new(cfg);
    let minutes = 12;
    let churned = world
        .churn_events(cfg.epoch, cfg.epoch + minutes * 60)
        .count();
    assert!(churned > 1_000, "only {churned} events — not a burst");
    let flows: Vec<FlowRecord> = world.flows(minutes).map(|lf| lf.flow).collect();

    let rate = cfg.flows_per_minute as f64;
    let params = IpdParams {
        ncidr_factor_v4: 64.0 / 32.0e6 * rate,
        ncidr_factor_v6: (rate * 1.5e-11).max(1e-9),
        ..IpdParams::default()
    };

    // Uninterrupted reference.
    let reference = {
        let mut engine = IpdEngine::new(params.clone()).unwrap();
        run_offline(&mut engine, flows.iter().cloned(), SNAPSHOT_EVERY, |_| {});
        final_state(&engine)
    };
    assert!(!reference.classified.is_empty());

    // Crash mid-burst, remembering the clock the run died with.
    let cut = flows.len() / 2;
    let dir = tmp_dir("dfz-churn-burst");
    let crashed_clock = {
        let mut engine = IpdEngine::new(params.clone()).unwrap();
        let mut durable =
            Durable::start(&dir, &engine, BucketClock::default(), durable_config()).unwrap();
        let mut driver = BucketDriver::new(engine.params().t_secs, SNAPSHOT_EVERY);
        let mut sink = |_out| {};
        for flow in &flows[..cut] {
            driver.observe_with(&mut engine, flow.ts, &mut sink, &mut durable);
            durable.flows(std::slice::from_ref(flow));
            engine.ingest(flow);
        }
        PipelineHook::finished(&mut durable, &engine, driver.clock());
        assert_eq!(durable.handle().stats().io_errors, 0);
        driver.clock()
        // Engine dropped here: the crash.
    };

    // Clock-exact: the restored clock is the crashed run's clock, to the
    // bucket — resuming must not re-tick or skip a bucket across the burst.
    let restored = restore(&dir, SNAPSHOT_EVERY).unwrap();
    assert_eq!(restored.clock, crashed_clock, "restored clock drifted");
    assert_eq!(restored.engine.stats().flows_ingested as usize, cut);

    let mut engine = restored.engine;
    run_offline_with(
        &mut engine,
        flows[cut..].iter().cloned(),
        SNAPSHOT_EVERY,
        Some(restored.clock),
        &mut NoopHook,
        |_| {},
    );
    assert_eq!(
        final_state(&engine),
        reference,
        "churn-burst restore diverged"
    );
}

#[test]
fn corrupt_latest_checkpoint_falls_back_a_generation() {
    let flows = seeded_flows();
    let reference = reference_run(&flows);
    let cut = flows.len() / 2;

    let dir = tmp_dir("corrupt-ckpt");
    crash_plain(&dir, &flows, cut);

    // Flip one byte in the newest checkpoint.
    let store = CheckpointStore::open(&dir).unwrap();
    let latest = *store.generations().unwrap().last().unwrap();
    assert!(latest >= 2, "need at least two generations to fall back");
    let path = store.checkpoint_path(latest);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();

    let restored = restore(&dir, SNAPSHOT_EVERY).unwrap();
    assert_eq!(restored.fell_back, 1, "must skip the damaged generation");
    assert_eq!(restored.seq, latest - 1);
    assert!(!restored.torn_tail);

    // The older checkpoint plus BOTH journals (its own and the damaged
    // generation's) reconstruct the same point in the stream.
    let applied = restored.engine.stats().flows_ingested as usize;
    let mut engine = restored.engine;
    run_offline_with(
        &mut engine,
        flows[applied..].iter().cloned(),
        SNAPSHOT_EVERY,
        Some(restored.clock),
        &mut NoopHook,
        |_| {},
    );
    assert_eq!(final_state(&engine), reference, "fallback restore diverged");
}

#[test]
fn torn_final_journal_frame_replays_to_last_whole_frame() {
    let flows = seeded_flows();
    let reference = reference_run(&flows);
    let cut = flows.len() / 2;

    let dir = tmp_dir("torn-journal");
    crash_plain(&dir, &flows, cut);

    // Tear the newest journal mid-frame: drop the last 20 bytes, landing
    // inside the final frame's payload/checksum.
    let store = CheckpointStore::open(&dir).unwrap();
    let latest = *store.generations().unwrap().last().unwrap();
    let path = store.journal_path(latest);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();

    let clean = restore(&dir, SNAPSHOT_EVERY).unwrap();
    assert!(clean.torn_tail, "tear must be detected");
    let applied = clean.engine.stats().flows_ingested as usize;
    // Exactly one frame lost relative to the cut.
    assert_eq!(applied, cut - 1);

    // Re-delivering from the lost flow onward completes the stream exactly.
    let mut engine = clean.engine;
    run_offline_with(
        &mut engine,
        flows[applied..].iter().cloned(),
        SNAPSHOT_EVERY,
        Some(clean.clock),
        &mut NoopHook,
        |_| {},
    );
    assert_eq!(
        final_state(&engine),
        reference,
        "torn-tail restore diverged"
    );
}
