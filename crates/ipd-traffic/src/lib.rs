//! Synthetic tier-1 ISP traffic for the IPD reproduction.
//!
//! The paper evaluates IPD on 25 hours of NetFlow from all border routers of
//! a tier-1 ISP plus six years of IPD output — data we cannot have. This
//! crate builds the closest synthetic equivalent: a *world* consisting of a
//! generated ISP topology, a BGP RIB, and a ground-truth mapping from source
//! address space to ingress links that evolves over time, plus a flow
//! simulator that emits sampled, ground-truth-labeled flow records.
//!
//! The generator is calibrated to the distributional facts the paper
//! reports (see DESIGN.md §7 for the list):
//!
//! * Zipf AS volumes with TOP5 ≈ 52 % and TOP20 ≈ 80 % of traffic (§5.1);
//! * ~80 % of prefixes with a single simultaneous ingress point, dominant
//!   primary shares for the rest (Fig 3, Fig 4);
//! * BGP next-hop multiplicity (20 % one next-hop, 60 % more than five) and
//!   a /24-heavy BGP mask distribution (Fig 3, Fig 9);
//! * hierarchical, spatially coherent ingress mappings (regions with a home
//!   link, granule-level exceptions) so IPD ranges of many sizes emerge
//!   (Fig 9);
//! * CDN dynamics: diurnal demand remapping, /28-granular server mappings,
//!   maintenance windows, router-level load balancing (§2, §5.3, §5.8);
//! * path (a)symmetry per AS class and tier-1 peering violations with a
//!   secular trend (Fig 16, Fig 17).
//!
//! Everything is seeded: the same [`WorldConfig`] and seed reproduce the
//! same world, events, and flow stream bit for bit.

mod asmodel;
pub mod dfz;
mod diurnal;
mod events;
mod mapping;
pub mod scenario;
mod sim;
mod world;

pub use asmodel::{allocate_ases, AsBehavior, AsKind, AsProfile};
pub use dfz::{DfzConfig, DfzFlowStream, DfzLabeledFlow, DfzWorld, DFZ_EPOCH};
pub use diurnal::diurnal_factor;
pub use events::{Event, EventKind, EventRates, EventSchedule};
pub use mapping::{IngressChoice, MappingState};
pub use scenario::{FlowLabel, ScenarioFlow, ScenarioStream, SpoofScenario};
pub use sim::{FlowSim, LabeledFlow, MinuteBatch, SimConfig};
pub use world::{World, WorldConfig};
