//! The synthetic tier-1 world: topology ⊕ RIB ⊕ evolving ground truth.

use std::collections::HashMap;

use ipd_bgp::{Rib, Route};
use ipd_lpm::{Addr, LpmTrie, Prefix};
use ipd_topology::{
    IngressPoint, Interface, LinkClass, LinkId, PopId, RouterId, Topology, TopologyBuilder,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::asmodel::{allocate_ases, AsBehavior, AsKind, AsProfile};
use crate::events::{AsScheduleInfo, Event, EventKind, EventRates, EventSchedule, ScheduleInputs};
use crate::mapping::{IngressChoice, MappingState};

/// World generation parameters. Defaults produce a laptop-scale network that
/// is structurally faithful to the paper's tier-1 (scaled ~1:20 in routers,
/// with calibration targets preserved).
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of neighbor ASes.
    pub n_ases: usize,
    /// Zipf exponent for AS traffic shares (1.05 ⇒ TOP5 ≈ 54 %, TOP20 ≈ 81 %).
    pub zipf_alpha: f64,
    /// Number of tier-1 peers among the ASes (the paper monitors 16).
    pub n_tier1: usize,
    /// Countries the ISP operates in.
    pub countries: u16,
    /// PoPs per country.
    pub pops_per_country: (u16, u16),
    /// Border routers per PoP.
    pub routers_per_pop: (u16, u16),
    /// Fraction of regions with more than one simultaneous ingress
    /// (Fig 3: ~20 % of /24s overall).
    pub multi_ingress_fraction: f64,
    /// Expected initial granule exceptions per CDN region.
    pub initial_exceptions_per_region: f64,
    /// Path-symmetry target for tier-1 peers (Fig 16: 91 %).
    pub symmetry_tier1: f64,
    /// Path-symmetry target for the TOP5 ASes (Fig 16: 77 %).
    pub symmetry_top5: f64,
    /// Path-symmetry target for everyone else (Fig 16: ~60–62 %).
    pub symmetry_other: f64,
    /// Dynamics rates.
    pub rates: EventRates,
    /// World start time (unix seconds). 2018-07-01 by default, matching the
    /// paper's observation window.
    pub epoch: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            n_ases: 50,
            zipf_alpha: 1.05,
            n_tier1: 16,
            countries: 5,
            pops_per_country: (2, 3),
            routers_per_pop: (2, 4),
            multi_ingress_fraction: 0.2,
            initial_exceptions_per_region: 0.5,
            symmetry_tier1: 0.91,
            symmetry_top5: 0.77,
            symmetry_other: 0.60,
            rates: EventRates::default(),
            epoch: 1_530_403_200, // 2018-07-01 00:00 UTC
        }
    }
}

/// Saved state for an active maintenance window.
#[derive(Debug, Clone)]
struct MaintenanceSave {
    regions: Vec<(Prefix, IngressChoice)>,
}

/// The world. See the crate docs.
#[derive(Debug)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// The ISP network.
    pub topology: Topology,
    /// The ISP's BGP table.
    pub rib: Rib,
    /// The neighbor AS population, ordered by traffic rank.
    pub ases: Vec<AsProfile>,
    /// The evolving ground-truth ingress mapping.
    pub mapping: MappingState,
    links_of_as: Vec<Vec<LinkId>>,
    as_of_prefix: LpmTrie<usize>,
    regions: Vec<Prefix>,
    region_as: Vec<usize>,
    schedule: EventSchedule,
    now: u64,
    rng: StdRng,
    violations: HashMap<Prefix, IngressChoice>,
    maintenance: HashMap<RouterId, MaintenanceSave>,
}

impl World {
    /// Generate a world from `config` and `seed`. Fully deterministic.
    pub fn generate(config: WorldConfig, seed: u64) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let ases = allocate_ases(config.n_ases, config.zipf_alpha, config.n_tier1, &mut rng);

        // ---- Topology: countries ▸ PoPs ▸ routers, then per-AS links. ----
        let mut builder = TopologyBuilder::new();
        let mut pops_by_country: Vec<Vec<PopId>> = Vec::new();
        let mut routers_of_pop: HashMap<PopId, Vec<RouterId>> = HashMap::new();
        let mut next_pop: PopId = 1;
        let mut next_router: RouterId = 1;
        for c in 1..=config.countries {
            builder
                .add_country(c, &format!("country-{c}"))
                .expect("unique ids");
            let mut pops = Vec::new();
            let n_pops = rng.random_range(config.pops_per_country.0..=config.pops_per_country.1);
            for _ in 0..n_pops {
                let pop = next_pop;
                next_pop += 1;
                builder
                    .add_pop(pop, c, &format!("pop-{pop}"))
                    .expect("unique ids");
                let mut routers = Vec::new();
                let n_routers =
                    rng.random_range(config.routers_per_pop.0..=config.routers_per_pop.1);
                for _ in 0..n_routers {
                    builder.add_router(next_router, pop).expect("unique ids");
                    routers.push(next_router);
                    next_router += 1;
                }
                pops.push(pop);
                routers_of_pop.insert(pop, routers);
            }
            pops_by_country.push(pops);
        }
        let all_pops: Vec<PopId> = pops_by_country.iter().flatten().copied().collect();

        let mut links_of_as: Vec<Vec<LinkId>> = Vec::with_capacity(ases.len());
        for a in &ases {
            let class = match a.kind {
                AsKind::Cdn | AsKind::Cloud => LinkClass::Pni,
                AsKind::Tier1 => LinkClass::PublicPeering,
                AsKind::Transit => LinkClass::Transit,
                AsKind::Stub => LinkClass::Customer,
            };
            let mut links = Vec::new();
            // Choose the PoPs this AS interconnects at.
            let n_pops = a.n_pops.clamp(1, all_pops.len());
            let mut order: Vec<usize> = (0..all_pops.len()).collect();
            for i in 0..n_pops {
                let j = rng.random_range(i..order.len());
                order.swap(i, j);
            }
            // The MaintenanceBundle AS needs several interfaces on ONE
            // router (the paper's AS1 bundle + backup interfaces).
            let bundled = matches!(a.behavior, AsBehavior::MaintenanceBundle { .. });
            let mut bundle_router: Option<RouterId> = None;
            for k in 0..a.n_links {
                let router = if bundled && k < 4 {
                    *bundle_router.get_or_insert_with(|| {
                        let pop = all_pops[order[0]];
                        let routers = &routers_of_pop[&pop];
                        routers[rng.random_range(0..routers.len())]
                    })
                } else {
                    let pop = all_pops[order[k % n_pops]];
                    let routers = &routers_of_pop[&pop];
                    routers[rng.random_range(0..routers.len())]
                };
                let ifindex = builder.max_ifindex(router).map_or(1, |m| m + 1);
                let link = builder
                    .add_link(Interface { router, ifindex }, a.asn, class, 100)
                    .expect("generator never reuses interfaces");
                links.push(link);
            }
            links_of_as.push(links);
        }
        let topology = builder.build();

        // ---- Ground-truth mapping: regions with home links + exceptions. --
        let mut mapping = MappingState::new();
        let mut regions: Vec<Prefix> = Vec::new();
        let mut region_as: Vec<usize> = Vec::new();
        let mut as_of_prefix: LpmTrie<usize> = LpmTrie::new();
        for (idx, a) in ases.iter().enumerate() {
            let links = &links_of_as[idx];
            // Zipf link weights: one link dominates (Fig 4).
            let link_weights: Vec<f64> = (1..=links.len()).map(|i| (i as f64).powf(-1.0)).collect();
            let wsum: f64 = link_weights.iter().sum();
            for prefix in &a.prefixes {
                as_of_prefix.insert(*prefix, idx);
                // IPv6 space uses the same structural model shifted by 32
                // bits (a /16-region world becomes a /48-region world).
                let region_len = match prefix.af() {
                    ipd_lpm::Af::V4 => a.region_len,
                    ipd_lpm::Af::V6 => a.region_len + 32,
                };
                for region in carve_regions(*prefix, region_len) {
                    let home = links[pick_weighted(&mut rng, &link_weights, wsum)];
                    // Regions are single-homed; multi-ingress structure lives
                    // at granule level below. (A region-wide per-flow split
                    // would make the whole region unclassifiable, which is
                    // not what multi-ingress /24s look like in practice —
                    // the split is mostly *spatial*.)
                    let choice = match a.behavior {
                        AsBehavior::LoadBalanced if links.len() >= 2 => {
                            // Even per-flow split over two links on
                            // different routers: the §5.8 pathological case.
                            let other = links
                                .iter()
                                .find(|&&l| {
                                    topology.link(l).map(|x| x.interface.router)
                                        != topology.link(home).map(|x| x.interface.router)
                                })
                                .copied()
                                .unwrap_or(
                                    links[(links.iter().position(|&l| l == home).unwrap() + 1)
                                        % links.len()],
                                );
                            IngressChoice::with_alternates(home, vec![(other, 0.5)])
                        }
                        _ => IngressChoice::single(home),
                    };
                    mapping.set_region(region, choice);
                    regions.push(region);
                    region_as.push(idx);
                    if links.len() < 2 {
                        continue;
                    }
                    // Mixed regions: a fraction of their /24 user groups are
                    // genuinely multi-ingress *per flow* (user↔server
                    // mapping straddling two links). These are the /24s of
                    // Fig 3/Fig 4 with several simultaneous ingress points.
                    // (v4 only — the multi-ingress figures are v4 figures.)
                    if region.af() == ipd_lpm::Af::V4
                        && rng.random::<f64>() < config.multi_ingress_fraction
                    {
                        for g24 in carve_regions(region, 24) {
                            if rng.random::<f64>() >= 0.35 {
                                continue;
                            }
                            let primary = links[pick_weighted(&mut rng, &link_weights, wsum)];
                            let primary_share = rng.random_range(0.35..0.92);
                            let alt = loop {
                                let l = links[rng.random_range(0..links.len())];
                                if l != primary {
                                    break l;
                                }
                            };
                            mapping.set_exception(
                                g24,
                                IngressChoice::with_alternates(
                                    primary,
                                    vec![(alt, 1.0 - primary_share)],
                                ),
                            );
                        }
                    }
                    // Spatial fine structure: granules pinned to other
                    // links (classifiable, unlike the mixed /24s above).
                    // CDNs map v4 at /28 and v6 at /48 (the cidr_max
                    // values); other multi-homed networks have coarser but
                    // still sub-/24 structure — this is what makes IPD
                    // ranges mostly *more specific* than BGP prefixes
                    // (§5.5: 91 %).
                    let (granule_len, lambda) = match (a.granule_len > 24, region.af()) {
                        (true, ipd_lpm::Af::V4) => {
                            (a.granule_len, config.initial_exceptions_per_region)
                        }
                        (true, ipd_lpm::Af::V6) => {
                            (a.granule_len + 20, config.initial_exceptions_per_region)
                        }
                        (false, ipd_lpm::Af::V4) => {
                            (26, config.initial_exceptions_per_region * 0.6)
                        }
                        (false, ipd_lpm::Af::V6) => (46, 0.0),
                    };
                    let n = poisson_small(&mut rng, lambda);
                    for _ in 0..n {
                        let granule = random_granule(&mut rng, region, granule_len);
                        let l = links[rng.random_range(0..links.len())];
                        mapping.set_exception(granule, IngressChoice::single(l));
                    }
                }
            }
        }

        // ---- BGP RIB: multiplicity + symmetry-calibrated best paths. -----
        // A tier-1 hears most prefixes via many neighbors, not just the
        // origin's direct links (Fig 3: 60 % of prefixes have > 5 next-hop
        // routers). Indirect routes go through transit ASes with longer AS
        // paths.
        let transit_pool: Vec<(usize, LinkId)> = ases
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AsKind::Transit)
            .flat_map(|(i, _)| links_of_as[i].iter().map(move |&l| (i, l)))
            .collect();
        let mut rib = Rib::new();
        for (idx, a) in ases.iter().enumerate() {
            let links = &links_of_as[idx];
            let sym_target = if a.kind == AsKind::Tier1 {
                config.symmetry_tier1
            } else if idx < 5 {
                config.symmetry_top5
            } else {
                config.symmetry_other
            };
            // 20 % of prefixes are single-route, hence trivially symmetric;
            // compensate so the blended rate still hits the target.
            let sym_eff = ((sym_target - 0.2) / 0.8).clamp(0.0, 1.0);
            for prefix in &a.prefixes {
                // Fig 3 (dotted): 20 % one next-hop, 20 % 2–5, 60 % > 5.
                let x: f64 = rng.random();
                let want = if x < 0.2 {
                    1
                } else if x < 0.4 {
                    rng.random_range(2..=5)
                } else {
                    rng.random_range(6..=12)
                };
                // The mapping's home link must be announced so symmetry is
                // even possible.
                let home = mapping
                    .primary(prefix.addr())
                    .expect("every AS prefix has a mapped region");
                // (link, as_path) routes: direct links first, then transit.
                let mut routes: Vec<(LinkId, Vec<u32>)> = vec![(home, vec![a.asn])];
                let mut pool: Vec<LinkId> = links.iter().copied().filter(|&l| l != home).collect();
                while routes.len() < want && !pool.is_empty() {
                    let i = rng.random_range(0..pool.len());
                    routes.push((pool.swap_remove(i), vec![a.asn]));
                }
                let mut tpool: Vec<(usize, LinkId)> = transit_pool
                    .iter()
                    .copied()
                    .filter(|(ti, _)| *ti != idx)
                    .collect();
                while routes.len() < want && !tpool.is_empty() {
                    let i = rng.random_range(0..tpool.len());
                    let (tidx, tlink) = tpool.swap_remove(i);
                    if routes.iter().any(|(l, _)| *l == tlink) {
                        continue;
                    }
                    routes.push((tlink, vec![ases[tidx].asn, a.asn]));
                }
                // Pick the egress (best) route: the home link with
                // probability sym_eff, otherwise any other announced route.
                let egress = if rng.random::<f64>() < sym_eff || routes.len() == 1 {
                    home
                } else {
                    loop {
                        let (l, _) = &routes[rng.random_range(0..routes.len())];
                        if *l != home {
                            break *l;
                        }
                    }
                };
                for (l, as_path) in routes {
                    let link = topology.link(l).expect("links exist");
                    rib.announce(
                        *prefix,
                        Route {
                            next_hop: IngressPoint::new(
                                link.interface.router,
                                link.interface.ifindex,
                            ),
                            link: l,
                            as_path,
                            local_pref: if l == egress { 200 } else { 100 },
                        },
                    );
                }
            }
        }

        // ---- Event schedule. ---------------------------------------------
        let mut sched_ases = Vec::with_capacity(ases.len());
        let mut region_idxs_of_as: Vec<Vec<usize>> = vec![Vec::new(); ases.len()];
        for (ridx, &aidx) in region_as.iter().enumerate() {
            region_idxs_of_as[aidx].push(ridx);
        }
        for (idx, a) in ases.iter().enumerate() {
            let links = &links_of_as[idx];
            let link_country: Vec<u16> = links
                .iter()
                .map(|&l| {
                    let r = topology.link(l).expect("links exist").interface.router;
                    topology.country_of_router(r).map_or(0, |c| c.id)
                })
                .collect();
            sched_ases.push(AsScheduleInfo {
                behavior: a.behavior.clone(),
                links: links.clone(),
                link_country,
                region_idxs: std::mem::take(&mut region_idxs_of_as[idx]),
                granule_len: a.granule_len,
                is_tier1: a.kind == AsKind::Tier1,
            });
        }
        let transit_links: Vec<LinkId> = ases
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AsKind::Transit)
            .flat_map(|(i, _)| links_of_as[i].clone())
            .collect();
        let maintenance_routers: Vec<(u32, Vec<u8>, u32)> = ases
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match &a.behavior {
                AsBehavior::MaintenanceBundle {
                    hours,
                    duration_min,
                } => {
                    let first_link = *links_of_as[i].first()?;
                    let router = topology.link(first_link)?.interface.router;
                    Some((router, hours.clone(), *duration_min))
                }
                _ => None,
            })
            .collect();
        let schedule = EventSchedule::new(
            ScheduleInputs {
                regions: regions.clone(),
                ases: sched_ases,
                transit_links,
                maintenance_routers,
                rates: config.rates.clone(),
                multi_ingress_fraction: config.multi_ingress_fraction,
            },
            config.epoch,
            seed.wrapping_add(1),
        );

        let now = config.epoch;
        World {
            config,
            topology,
            rib,
            ases,
            mapping,
            links_of_as,
            as_of_prefix,
            regions,
            region_as,
            schedule,
            now,
            rng: StdRng::seed_from_u64(seed.wrapping_add(2)),
            violations: HashMap::new(),
            maintenance: HashMap::new(),
        }
    }

    /// Current world time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// All regions (stable order; index matches the event schedule).
    pub fn regions(&self) -> &[Prefix] {
        &self.regions
    }

    /// The AS (by index into [`World::ases`]) owning an address, if any.
    pub fn as_index_of(&self, addr: Addr) -> Option<usize> {
        self.as_of_prefix.lookup(addr).map(|(_, &i)| i)
    }

    /// The AS index owning a region (by region index).
    pub fn as_of_region(&self, region_idx: usize) -> usize {
        self.region_as[region_idx]
    }

    /// ASNs of the top-k ASes by traffic share.
    pub fn top_asns(&self, k: usize) -> Vec<u32> {
        self.ases.iter().take(k).map(|a| a.asn).collect()
    }

    /// Links of an AS (by index).
    pub fn links_of_as(&self, idx: usize) -> &[LinkId] {
        &self.links_of_as[idx]
    }

    /// The ground-truth ingress choice for an address right now.
    pub fn true_choice(&self, addr: Addr) -> Option<&IngressChoice> {
        self.mapping.choice(addr)
    }

    /// The (router, interface) of a link.
    pub fn ingress_point_of_link(&self, link: LinkId) -> IngressPoint {
        let l = self.topology.link(link).expect("world links are dense");
        IngressPoint::new(l.interface.router, l.interface.ifindex)
    }

    /// Egress router BGP would pick for traffic *toward* this address
    /// (best-route next hop), used by the §5.5 symmetry analysis.
    pub fn egress_router(&self, addr: Addr) -> Option<RouterId> {
        self.rib.best(addr).map(|(_, r)| r.next_hop.router)
    }

    /// Currently violating tier-1 regions with the non-peering link they
    /// enter through.
    pub fn active_violations(&self) -> Vec<(Prefix, LinkId)> {
        let mut v: Vec<(Prefix, LinkId)> = self
            .violations
            .keys()
            .filter_map(|p| self.mapping.region_choice(*p).map(|c| (*p, c.primary)))
            .collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    /// Advance world time to `ts`, applying every scheduled event in order.
    pub fn advance_to(&mut self, ts: u64) {
        if ts <= self.now {
            return;
        }
        for event in self.schedule.events_until(ts) {
            self.apply(event);
        }
        self.now = ts;
    }

    fn apply(&mut self, event: Event) {
        match event.kind {
            EventKind::RegionRemap { region, choice } => {
                // Don't disturb a region mid-violation or mid-maintenance;
                // the restore would clobber the remap anyway.
                if self.violations.contains_key(&region) {
                    return;
                }
                let new_home = choice.primary;
                self.mapping.set_region(region, choice);
                // The remapping network updates its own egress announcements
                // too: with the class-calibrated probability, BGP's best
                // route follows the ingress move — keeping the Fig 16
                // symmetry ratios stationary over years, as the paper
                // observes.
                self.realign_egress(region, new_home);
            }
            EventKind::AddException { granule, choice } => {
                self.mapping.set_exception(granule, choice);
            }
            EventKind::ClearExceptionsIn { region } => {
                self.mapping.clear_exceptions_within(region);
            }
            EventKind::MaintenanceStart { router } => self.maintenance_start(router),
            EventKind::MaintenanceEnd { router } => self.maintenance_end(router),
            EventKind::ViolationStart { region, via_link } => {
                if self.violations.contains_key(&region) {
                    return;
                }
                // Don't start a violation on a region whose mapping is
                // temporarily a maintenance backup — the maintenance restore
                // would clobber the violation detour.
                if self
                    .maintenance
                    .values()
                    .any(|s| s.regions.iter().any(|(r, _)| *r == region))
                {
                    return;
                }
                if let Some(old) = self.mapping.region_choice(region).cloned() {
                    self.violations.insert(region, old);
                    self.mapping
                        .set_region(region, IngressChoice::single(via_link));
                }
            }
            EventKind::ViolationEnd { region } => {
                if let Some(old) = self.violations.remove(&region) {
                    self.mapping.set_region(region, old);
                }
            }
        }
    }

    /// Re-point the BGP best route covering `region` at `new_home` with the
    /// owning AS's symmetry probability (see [`WorldConfig`]).
    fn realign_egress(&mut self, region: Prefix, new_home: LinkId) {
        let Some(as_idx) = self.as_index_of(region.addr()) else {
            return;
        };
        let sym_target = if self.ases[as_idx].kind == AsKind::Tier1 {
            self.config.symmetry_tier1
        } else if as_idx < 5 {
            self.config.symmetry_top5
        } else {
            self.config.symmetry_other
        };
        let follow = self.rng.random::<f64>() < sym_target;
        let Some((bgp_prefix, entry)) = self.rib.match_prefix(region) else {
            return;
        };
        // Only the *representative* region (the one holding the prefix's
        // first address) drives the prefix's egress; otherwise remaps of
        // sibling regions inside one large prefix would thrash the egress
        // and the symmetry ratio would drift away from its target.
        if !region.contains(bgp_prefix.addr()) {
            return;
        }
        let mut routes: Vec<ipd_bgp::Route> = entry.routes().to_vec();
        let new_next_hop = self.ingress_point_of_link(new_home);
        if follow && !routes.iter().any(|r| r.link == new_home) {
            // The new home was not announced before; it is now.
            let asn = self.ases[as_idx].asn;
            routes.push(ipd_bgp::Route {
                next_hop: new_next_hop,
                link: new_home,
                as_path: vec![asn],
                local_pref: 100,
            });
        }
        if follow {
            // The new home becomes best; everything else is demoted.
            for r in &mut routes {
                r.local_pref = if r.link == new_home { 200 } else { 100 };
            }
        }
        // Not following: the old egress (local_pref 200) stays best.
        for r in routes {
            self.rib.announce(bgp_prefix, r);
        }
    }

    /// Shift every region homed on `router`'s links to a backup link —
    /// preferably another interface on the *same* router (interface miss),
    /// else anywhere else in the same AS.
    fn maintenance_start(&mut self, router: RouterId) {
        if self.maintenance.contains_key(&router) {
            return;
        }
        let mut saved = Vec::new();
        for (ridx, &region) in self.regions.iter().enumerate() {
            // A region mid-violation is detouring through someone else's
            // link; restoring it after maintenance would clobber the
            // violation bookkeeping, so leave it alone.
            if self.violations.contains_key(&region) {
                continue;
            }
            let Some(choice) = self.mapping.region_choice(region).cloned() else {
                continue;
            };
            let on_router = self
                .topology
                .link(choice.primary)
                .is_some_and(|l| l.interface.router == router);
            if !on_router {
                continue;
            }
            let as_idx = self.region_as[ridx];
            let links = &self.links_of_as[as_idx];
            let same_router: Vec<LinkId> = links
                .iter()
                .copied()
                .filter(|&l| {
                    l != choice.primary
                        && self
                            .topology
                            .link(l)
                            .is_some_and(|x| x.interface.router == router)
                })
                .collect();
            let backup = if !same_router.is_empty() {
                same_router[self.rng.random_range(0..same_router.len())]
            } else if let Some(&other) = links.iter().find(|&&l| l != choice.primary) {
                other
            } else {
                continue; // single-homed: nowhere to go
            };
            saved.push((region, choice));
            self.mapping
                .set_region(region, IngressChoice::single(backup));
        }
        self.maintenance
            .insert(router, MaintenanceSave { regions: saved });
    }

    fn maintenance_end(&mut self, router: RouterId) {
        if let Some(save) = self.maintenance.remove(&router) {
            for (region, choice) in save.regions {
                self.mapping.set_region(region, choice);
            }
        }
    }
}

/// Enumerate the region blocks of `prefix` at `region_len` (the prefix
/// itself when it is already at least that specific).
fn carve_regions(prefix: Prefix, region_len: u8) -> Vec<Prefix> {
    if prefix.len() >= region_len {
        return vec![prefix];
    }
    let count = 1u32 << (region_len - prefix.len());
    // Bound fan-out: a /8 with /24 regions would be 64k entries; carve at
    // most 64 regions by coarsening.
    let (count, region_len) = if count > 64 {
        let extra = (count / 64).trailing_zeros() as u8;
        (64, region_len - extra)
    } else {
        (count, region_len)
    };
    let width = prefix.af().width();
    let step = 1u128 << (width - region_len);
    (0..count)
        .map(|i| {
            Prefix::of(
                Addr::new(prefix.af(), prefix.addr().bits() + i as u128 * step),
                region_len,
            )
        })
        .collect()
}

fn pick_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64], sum: f64) -> usize {
    let mut x = rng.random::<f64>() * sum;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

fn poisson_small<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    // Knuth's method; fine for small lambda.
    let l = (-lambda).exp();
    let mut k = 0;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 64 {
            return k;
        }
    }
}

fn random_granule<R: Rng + ?Sized>(rng: &mut R, region: Prefix, granule_len: u8) -> Prefix {
    let glen = granule_len.max(region.len());
    let span_bits = (glen - region.len()) as u32;
    let offset: u128 = if span_bits == 0 {
        0
    } else {
        rng.random_range(0..(1u128 << span_bits.min(63)))
    };
    let width = region.af().width();
    let bits = region.addr().bits() | (offset << (width - glen) as u32);
    Prefix::of(Addr::new(region.af(), bits), glen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::default(), 42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.topology.links(), b.topology.links());
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.mapping.snapshot().len(), b.mapping.snapshot().len());
    }

    #[test]
    fn every_as_prefix_is_fully_mapped() {
        let w = world();
        for a in &w.ases {
            for p in &a.prefixes {
                // The first and last address of every prefix resolve.
                assert!(w.true_choice(p.first_addr()).is_some(), "unmapped {p}");
                assert!(w.true_choice(p.last_addr()).is_some(), "unmapped {p}");
            }
        }
    }

    #[test]
    fn mapping_links_belong_to_owning_as() {
        let w = world();
        for (ridx, &region) in w.regions().iter().enumerate() {
            let aidx = w.as_of_region(ridx);
            let choice = w.mapping.region_choice(region).unwrap();
            assert!(
                w.links_of_as(aidx).contains(&choice.primary),
                "region {region} home {} outside AS {}",
                choice.primary,
                w.ases[aidx].asn
            );
        }
    }

    #[test]
    fn rib_covers_all_as_space_and_symmetry_is_plausible() {
        let w = world();
        let mut symmetric = 0usize;
        let mut total = 0usize;
        for a in &w.ases {
            for p in &a.prefixes {
                let (bp, route) = w.rib.best(p.first_addr()).expect("announced");
                assert!(bp.contains_prefix(*p) || *p == bp);
                assert_eq!(route.origin_as(), Some(a.asn));
                // Symmetry: egress router == ground-truth ingress router?
                let home = w.mapping.primary(p.first_addr()).unwrap();
                let in_router = w.ingress_point_of_link(home).router;
                total += 1;
                if in_router == route.next_hop.router {
                    symmetric += 1;
                }
            }
        }
        let sym = symmetric as f64 / total as f64;
        assert!((0.5..0.9).contains(&sym), "overall symmetry {sym}");
    }

    #[test]
    fn advance_applies_remaps() {
        let mut w = world();
        let before = w.mapping.snapshot();
        w.advance_to(w.config.epoch + 6 * 3600);
        let after = w.mapping.snapshot();
        assert_ne!(
            before, after,
            "six hours of dynamics must change the mapping"
        );
        assert_eq!(w.now(), w.config.epoch + 6 * 3600);
    }

    #[test]
    fn maintenance_shifts_and_restores() {
        let mut w = world();
        // AS rank 0 has MaintenanceBundle at 11:00 and 23:00 local.
        let epoch = w.config.epoch;
        let regions_of_as0: Vec<Prefix> = w
            .regions()
            .iter()
            .enumerate()
            .filter(|(i, _)| w.as_of_region(*i) == 0)
            .map(|(_, p)| *p)
            .collect();
        let homes_before: Vec<LinkId> = regions_of_as0
            .iter()
            .map(|p| w.mapping.region_choice(*p).unwrap().primary)
            .collect();
        // 11:30 into day 0: inside the maintenance window.
        w.advance_to(epoch + 11 * 3600 + 30 * 60);
        let during: Vec<LinkId> = regions_of_as0
            .iter()
            .map(|p| w.mapping.region_choice(*p).unwrap().primary)
            .collect();
        assert_ne!(homes_before, during, "maintenance must shift some homes");
        // Well after the 45-minute window.
        w.advance_to(epoch + 13 * 3600);
        let after: Vec<LinkId> = regions_of_as0
            .iter()
            .map(|p| w.mapping.region_choice(*p).unwrap().primary)
            .collect();
        // Background remaps (≈2 %/region/hour over 13 h ⇒ ~23 % moved) also
        // churn homes, but the bulk of the maintenance shift must be
        // restored.
        let restored = homes_before
            .iter()
            .zip(&after)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            restored * 10 >= homes_before.len() * 6,
            "restored {restored}/{}",
            homes_before.len()
        );
        let still_shifted = during.iter().zip(&after).filter(|(d, a)| d != a).count();
        assert!(
            still_shifted > 0,
            "restore must undo the maintenance mapping"
        );
    }

    #[test]
    fn violations_accumulate_over_time() {
        let mut w = World::generate(
            WorldConfig {
                rates: EventRates {
                    violation_base_per_hour: 0.01,
                    ..EventRates::default()
                },
                ..WorldConfig::default()
            },
            7,
        );
        assert!(w.active_violations().is_empty());
        w.advance_to(w.config.epoch + 14 * 86_400);
        let v = w.active_violations();
        assert!(
            !v.is_empty(),
            "two weeks at 1%/region/hour must violate something"
        );
        // The violating link belongs to a transit AS, not the tier-1 owner.
        for (region, link) in &v {
            let aidx = w.as_index_of(region.addr()).unwrap();
            assert_eq!(w.ases[aidx].kind, AsKind::Tier1);
            assert!(!w.links_of_as(aidx).contains(link));
        }
    }

    #[test]
    fn carve_regions_bounds_fanout() {
        let p: Prefix = "10.0.0.0/12".parse().unwrap();
        let r = carve_regions(p, 16);
        assert_eq!(r.len(), 16);
        assert!(r.iter().all(|x| x.len() == 16 && p.contains_prefix(*x)));
        let big: Prefix = "10.0.0.0/8".parse().unwrap();
        let r = carve_regions(big, 24);
        assert_eq!(r.len(), 64, "fan-out capped");
        assert!(r.iter().all(|x| big.contains_prefix(*x)));
        let small: Prefix = "10.0.0.0/20".parse().unwrap();
        assert_eq!(carve_regions(small, 16), vec![small]);
    }
}
