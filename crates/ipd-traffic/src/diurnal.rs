//! Diurnal traffic model.

/// Relative traffic volume at a given unix timestamp, normalized so the peak
/// is 1.0.
///
/// Eyeball-ISP traffic follows a strong diurnal pattern (Fig 6's gray shade;
/// §5.3.1 picks "a high-traffic busy hour at 8 PM local time"). We model a
/// sinusoid with its trough at 4 AM and peak at 8 PM local, floored at 35 %
/// of peak — close to the published shape of European eyeball networks.
pub fn diurnal_factor(ts: u64) -> f64 {
    const PEAK: f64 = 1.0;
    const TROUGH: f64 = 0.35;
    let hours = (ts % 86_400) as f64 / 3600.0;
    // Piecewise half-cosines: fall 20:00 → 04:00 (8 h), rise 04:00 → 20:00
    // (16 h) — evening peak, short night dip, long daytime ramp.
    let smooth = |x: f64| (1.0 - (std::f64::consts::PI * x).cos()) / 2.0; // 0→1 smooth
    let v = if (4.0..20.0).contains(&hours) {
        TROUGH + (PEAK - TROUGH) * smooth((hours - 4.0) / 16.0)
    } else {
        let since_peak = (hours - 20.0).rem_euclid(24.0); // 0..8
        PEAK - (PEAK - TROUGH) * smooth(since_peak / 8.0)
    };
    debug_assert!((TROUGH - 1e-9..=PEAK + 1e-9).contains(&v));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_hour(h: f64) -> f64 {
        diurnal_factor((h * 3600.0) as u64)
    }

    #[test]
    fn peak_at_20_trough_at_4() {
        assert!((at_hour(20.0) - 1.0).abs() < 1e-6);
        assert!((at_hour(4.0) - 0.35).abs() < 1e-6);
    }

    #[test]
    fn monotone_rise_from_trough_to_peak() {
        let mut prev = at_hour(4.0);
        for h in 5..=20 {
            let v = at_hour(h as f64);
            assert!(v > prev, "hour {h}: {v} <= {prev}");
            prev = v;
        }
    }

    #[test]
    fn periodic_over_days() {
        assert!((diurnal_factor(3600) - diurnal_factor(3600 + 86_400 * 3)).abs() < 1e-9);
    }

    #[test]
    fn bounded() {
        for h in 0..24 {
            let v = at_hour(h as f64);
            assert!((0.3..=1.0 + 1e-9).contains(&v));
        }
    }
}
