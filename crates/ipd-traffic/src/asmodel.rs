//! AS population: traffic shares, kinds, behaviors, and address space.

use ipd_lpm::{Addr, Prefix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What kind of network an AS is — drives link class, placement, and
/// dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsKind {
    /// Content delivery network: many PNI links, /28-granular server
    /// mappings, demand-driven remapping.
    Cdn,
    /// Cloud provider: PNI links, moderately dynamic.
    Cloud,
    /// Tier-1 peer: settlement-free peering links at a few PoPs.
    Tier1,
    /// Transit/regional network.
    Transit,
    /// Stub / enterprise network: one or two links, static.
    Stub,
}

/// Scripted per-AS dynamics, used to reproduce the miss taxonomy of §5.1.2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AsBehavior {
    /// No scripted events (background remap rate still applies).
    Stable,
    /// The paper's AS1: a router with a link bundle undergoes maintenance at
    /// fixed local hours, shifting traffic to two other interfaces on the
    /// same router → *interface misses*.
    MaintenanceBundle {
        /// Hours of day (local) the maintenance windows start.
        hours: Vec<u8>,
        /// Window length in minutes.
        duration_min: u32,
    },
    /// The paper's AS4: large regions (/12–/15) are remapped to another
    /// ingress in proportion to demand → diurnal *PoP/router misses*.
    DiurnalRemap {
        /// Fraction of regions remapped at peak.
        peak_fraction: f64,
    },
    /// The paper's AS3: user↔server mapping flaps between countries,
    /// correlated with load → *PoP misses*.
    PopFlap {
        /// Per-region flap probability per hour at peak.
        rate_per_hour: f64,
    },
    /// The pathological case of §5.8: the AS balances flows over two routers
    /// per granule, which IPD intentionally cannot classify.
    LoadBalanced,
}

/// One neighbor AS: identity, traffic weight, address space, link layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsProfile {
    /// AS number.
    pub asn: u32,
    /// Kind (drives link class and dynamics).
    pub kind: AsKind,
    /// Scripted behavior.
    pub behavior: AsBehavior,
    /// Fraction of total ingress traffic (sums to 1 across the population).
    pub traffic_share: f64,
    /// Prefixes this AS originates (its source address space).
    pub prefixes: Vec<Prefix>,
    /// Number of links to the ISP.
    pub n_links: usize,
    /// Number of PoPs those links are spread over.
    pub n_pops: usize,
    /// Ground-truth mapping granularity (the CDN of the paper maps at /28;
    /// most networks are modeled at /24).
    pub granule_len: u8,
    /// Region granularity: contiguous blocks sharing a home ingress link.
    pub region_len: u8,
}

impl AsProfile {
    /// Total IPv4 address count of this AS.
    pub fn address_space(&self) -> f64 {
        self.prefixes.iter().map(|p| p.num_addrs()).sum()
    }
}

/// Zipf shares: `share(i) ∝ 1/(i+1)^alpha`, normalized.
///
/// With `alpha = 1.05` over 50 ASes the top 5 hold ≈ 54 % and the top 20
/// ≈ 81 % of traffic — matching §5.1's "TOP5 … 52% of the total volume …
/// top 20 … 80%".
pub fn zipf_shares(n: usize, alpha: f64) -> Vec<f64> {
    let raw: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-alpha)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / sum).collect()
}

/// Mask-length distribution for BGP prefix allocation, following Fig 9's
/// gray bars: /24 announcements are >50 % of the table, /20–/23 hold 5–10 %
/// each, with a tail of larger blocks.
fn sample_mask<R: Rng + ?Sized>(rng: &mut R) -> u8 {
    let x: f64 = rng.random();
    match x {
        x if x < 0.52 => 24,
        x if x < 0.61 => 23,
        x if x < 0.70 => 22,
        x if x < 0.78 => 21,
        x if x < 0.86 => 20,
        x if x < 0.91 => 19,
        x if x < 0.95 => 18,
        x if x < 0.98 => 16,
        x if x < 0.995 => 14,
        _ => 12,
    }
}

/// Allocate the AS population: shares, kinds, behaviors, and address space.
///
/// Address space is carved sequentially from `10.0.0.0`-style blocks per AS
/// — disjoint by construction — with per-prefix masks drawn from the Fig 9
/// distribution until the AS reaches a size proportional to its traffic
/// share (heavier ASes own more space, as hypergiants do).
pub fn allocate_ases<R: Rng + ?Sized>(
    n: usize,
    alpha: f64,
    n_tier1: usize,
    rng: &mut R,
) -> Vec<AsProfile> {
    let shares = zipf_shares(n, alpha);
    let mut out = Vec::with_capacity(n);
    // Each AS gets its own /8 so allocations never collide and there is
    // room for growth; ASNs are 64500 + rank.
    for (rank, &share) in shares.iter().enumerate() {
        let kind = match rank {
            0 | 2 | 3 => AsKind::Cdn, // AS1, AS3, AS4 of the paper are CDNs
            1 => AsKind::Cloud,       // AS2
            r if r >= 4 && r < 4 + n_tier1 => AsKind::Tier1,
            r if r % 3 == 0 => AsKind::Transit,
            _ => AsKind::Stub,
        };
        let behavior = match rank {
            0 => AsBehavior::MaintenanceBundle {
                hours: vec![11, 23],
                duration_min: 45,
            },
            2 => AsBehavior::PopFlap {
                rate_per_hour: 0.05,
            },
            3 => AsBehavior::DiurnalRemap {
                peak_fraction: 0.25,
            },
            _ => AsBehavior::Stable,
        };
        // Address budget: between 2^14 and 2^20 addresses, scaled by share.
        let budget = (share * 64.0 * (1 << 20) as f64).clamp(16384.0, (1 << 20) as f64);
        let base: u32 = ((rank as u32 + 11) % 200 + 11) << 24; // 11.0.0.0/8, 12.0.0.0/8, ...
        let mut cursor: u32 = base;
        let mut allocated = 0.0;
        let mut prefixes = Vec::new();
        while allocated < budget {
            let mask = sample_mask(rng);
            let size = 1u32 << (32 - mask);
            // Align the cursor to the prefix size.
            cursor = (cursor + size - 1) & !(size - 1);
            if cursor.saturating_sub(base) >= 1 << 24 {
                break; // /8 exhausted (cannot happen with the default budget)
            }
            prefixes.push(Prefix::of(Addr::v4(cursor), mask));
            cursor += size;
            allocated += size as f64;
        }
        // Dual stack: the big networks also originate IPv6 space (one /32
        // each, like real hypergiants); IPD maps it at /48 granularity.
        if rank < 12 {
            let v6_base: u128 = (0x2400u128 + rank as u128) << 112;
            prefixes.push(Prefix::of(Addr::v6(v6_base), 32));
        }
        let (n_links, n_pops, granule_len, region_len) = match kind {
            AsKind::Cdn => (10, 6, 28, 16),
            AsKind::Cloud => (8, 5, 26, 16),
            AsKind::Tier1 => (4, 3, 24, 14),
            AsKind::Transit => (3, 2, 24, 16),
            AsKind::Stub => (rng.random_range(1..=2), 1, 24, 18),
        };
        out.push(AsProfile {
            asn: 64500 + rank as u32,
            kind,
            behavior,
            traffic_share: share,
            prefixes,
            n_links,
            n_pops,
            granule_len,
            region_len,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_shares_sum_to_one_and_decrease() {
        let s = zipf_shares(50, 1.05);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for w in s.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn zipf_calibration_matches_paper_targets() {
        let s = zipf_shares(50, 1.05);
        let top5: f64 = s[..5].iter().sum();
        let top20: f64 = s[..20].iter().sum();
        // §5.1: TOP5 = 52 %, TOP20 = 80 %. Accept the shape within a few points.
        assert!((0.45..0.62).contains(&top5), "top5 share {top5}");
        assert!((0.72..0.88).contains(&top20), "top20 share {top20}");
    }

    #[test]
    fn allocation_is_disjoint_and_owned() {
        let mut rng = StdRng::seed_from_u64(42);
        let ases = allocate_ases(30, 1.05, 8, &mut rng);
        assert_eq!(ases.len(), 30);
        // No two prefixes overlap across the whole population.
        let mut all: Vec<Prefix> = ases.iter().flat_map(|a| a.prefixes.clone()).collect();
        all.sort();
        for w in all.windows(2) {
            assert!(
                !w[0].contains_prefix(w[1]) && !w[1].contains_prefix(w[0]),
                "{} overlaps {}",
                w[0],
                w[1]
            );
        }
        for a in &ases {
            assert!(!a.prefixes.is_empty());
            assert!(a.address_space() >= 16384.0);
            assert!(a.n_links >= 1);
            assert!(a.granule_len >= a.region_len);
        }
    }

    #[test]
    fn mask_distribution_is_24_heavy() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut n24 = 0;
        let total = 10_000;
        for _ in 0..total {
            if sample_mask(&mut rng) == 24 {
                n24 += 1;
            }
        }
        let share = n24 as f64 / total as f64;
        assert!((0.48..0.56).contains(&share), "/24 share {share}");
    }

    #[test]
    fn paper_as_roles_are_cast() {
        let mut rng = StdRng::seed_from_u64(1);
        let ases = allocate_ases(50, 1.05, 16, &mut rng);
        assert_eq!(ases[0].kind, AsKind::Cdn);
        assert!(matches!(
            ases[0].behavior,
            AsBehavior::MaintenanceBundle { .. }
        ));
        assert!(matches!(ases[2].behavior, AsBehavior::PopFlap { .. }));
        assert!(matches!(ases[3].behavior, AsBehavior::DiurnalRemap { .. }));
        assert_eq!(ases.iter().filter(|a| a.kind == AsKind::Tier1).count(), 16);
        // CDNs map at /28 like the paper's collaborating CDN.
        assert_eq!(ases[0].granule_len, 28);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = allocate_ases(20, 1.05, 4, &mut StdRng::seed_from_u64(5));
        let b = allocate_ases(20, 1.05, 4, &mut StdRng::seed_from_u64(5));
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.prefixes, y.prefixes);
            assert_eq!(x.n_links, y.n_links);
        }
    }
}
