//! Ground-truth ingress mapping: who *really* enters where.
//!
//! The mapping is hierarchical, mirroring how CDNs actually assign users to
//! data centers: contiguous *regions* (e.g. a /16) share a *home* ingress
//! link, with granule-level *exceptions* (e.g. a /28 mapped elsewhere). This
//! produces the spatial coherence that lets IPD aggregate ranges of many
//! sizes (Fig 9) while still exercising fine-grained dynamics.

use ipd_lpm::{Addr, LpmTrie, Prefix};
use ipd_topology::LinkId;
use rand::Rng;

/// The ingress decision for a block of address space: a primary link plus
/// optional alternates with fixed traffic shares (Fig 4's multi-ingress
/// prefixes).
#[derive(Debug, Clone, PartialEq)]
pub struct IngressChoice {
    /// The dominant ingress link.
    pub primary: LinkId,
    /// Alternate links and the share of traffic each carries.
    pub alternates: Vec<(LinkId, f64)>,
}

impl IngressChoice {
    /// A single-ingress choice (the ~80 % case of Fig 3).
    pub fn single(primary: LinkId) -> Self {
        IngressChoice {
            primary,
            alternates: Vec::new(),
        }
    }

    /// A multi-ingress choice. Alternate shares must sum below 1.
    pub fn with_alternates(primary: LinkId, alternates: Vec<(LinkId, f64)>) -> Self {
        debug_assert!(alternates.iter().map(|a| a.1).sum::<f64>() < 1.0);
        IngressChoice {
            primary,
            alternates,
        }
    }

    /// Share of traffic on the primary link.
    pub fn primary_share(&self) -> f64 {
        1.0 - self.alternates.iter().map(|a| a.1).sum::<f64>()
    }

    /// Number of distinct ingress links.
    pub fn ingress_count(&self) -> usize {
        1 + self.alternates.len()
    }

    /// Sample a link according to the shares.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> LinkId {
        if self.alternates.is_empty() {
            return self.primary;
        }
        let mut x: f64 = rng.random();
        for &(link, share) in &self.alternates {
            if x < share {
                return link;
            }
            x -= share;
        }
        self.primary
    }
}

/// The evolving ground-truth mapping for the whole world.
#[derive(Debug, Default)]
pub struct MappingState {
    regions: LpmTrie<IngressChoice>,
    region_keys: Vec<Prefix>,
    exceptions: LpmTrie<IngressChoice>,
}

impl MappingState {
    /// Empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) a region's home choice.
    pub fn set_region(&mut self, region: Prefix, choice: IngressChoice) {
        if self.regions.insert(region, choice).is_none() {
            self.region_keys.push(region);
        }
    }

    /// Install (or replace) a granule-level exception, shadowing its region.
    pub fn set_exception(&mut self, granule: Prefix, choice: IngressChoice) {
        self.exceptions.insert(granule, choice);
    }

    /// Remove an exception; the region mapping shows through again.
    pub fn clear_exception(&mut self, granule: Prefix) -> bool {
        self.exceptions.remove(granule).is_some()
    }

    /// The effective choice for an address: most specific exception first,
    /// then the region, else `None` (unmapped space carries no traffic).
    pub fn choice(&self, addr: Addr) -> Option<&IngressChoice> {
        if let Some((_, c)) = self.exceptions.lookup(addr) {
            return Some(c);
        }
        self.regions.lookup(addr).map(|(_, c)| c)
    }

    /// The effective *primary* ingress link of an address.
    pub fn primary(&self, addr: Addr) -> Option<LinkId> {
        self.choice(addr).map(|c| c.primary)
    }

    /// All region prefixes, in insertion order (stable across runs).
    pub fn region_keys(&self) -> &[Prefix] {
        &self.region_keys
    }

    /// Region count.
    pub fn region_count(&self) -> usize {
        self.region_keys.len()
    }

    /// Exception count.
    pub fn exception_count(&self) -> usize {
        self.exceptions.len()
    }

    /// The choice currently installed for a region prefix.
    pub fn region_choice(&self, region: Prefix) -> Option<&IngressChoice> {
        self.regions.exact(region)
    }

    /// All exceptions inside `region` (O(|subtree|), not O(|exceptions|)).
    pub fn exceptions_within(&self, region: Prefix) -> Vec<(Prefix, IngressChoice)> {
        self.exceptions
            .iter_within(region)
            .map(|(p, c)| (p, c.clone()))
            .collect()
    }

    /// Remove every exception inside `region` (night-time consolidation).
    /// Returns how many were removed.
    pub fn clear_exceptions_within(&mut self, region: Prefix) -> usize {
        let keys: Vec<Prefix> = self
            .exceptions
            .iter_within(region)
            .map(|(p, _)| p)
            .collect();
        for k in &keys {
            self.exceptions.remove(*k);
        }
        keys.len()
    }

    /// Snapshot of the *effective* mapping as `(prefix, choice)` pairs:
    /// every region and every exception (exceptions being more specific,
    /// an LPM over the snapshot reproduces [`MappingState::choice`]).
    pub fn snapshot(&self) -> Vec<(Prefix, IngressChoice)> {
        let mut out: Vec<(Prefix, IngressChoice)> =
            self.regions.iter().map(|(p, c)| (p, c.clone())).collect();
        out.extend(self.exceptions.iter().map(|(p, c)| (p, c.clone())));
        out.sort_by_key(|(p, _)| *p);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn a(s: &str) -> Addr {
        s.parse::<std::net::IpAddr>().unwrap().into()
    }

    #[test]
    fn choice_shares() {
        let c = IngressChoice::with_alternates(1, vec![(2, 0.2), (3, 0.1)]);
        assert!((c.primary_share() - 0.7).abs() < 1e-9);
        assert_eq!(c.ingress_count(), 3);
        assert_eq!(IngressChoice::single(9).primary_share(), 1.0);
    }

    #[test]
    fn pick_follows_shares() {
        let c = IngressChoice::with_alternates(1, vec![(2, 0.3)]);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let hits2 = (0..n).filter(|_| c.pick(&mut rng) == 2).count();
        let share = hits2 as f64 / n as f64;
        assert!((share - 0.3).abs() < 0.02, "alternate share {share}");
        // Single choice always picks primary.
        let s = IngressChoice::single(7);
        assert!((0..100).all(|_| s.pick(&mut rng) == 7));
    }

    #[test]
    fn exceptions_shadow_regions() {
        let mut m = MappingState::new();
        m.set_region(p("10.1.0.0/16"), IngressChoice::single(1));
        m.set_exception(p("10.1.2.0/28"), IngressChoice::single(2));
        assert_eq!(m.primary(a("10.1.9.9")), Some(1));
        assert_eq!(m.primary(a("10.1.2.5")), Some(2));
        assert_eq!(
            m.primary(a("10.1.2.20")),
            Some(1),
            "outside the /28 exception"
        );
        assert_eq!(m.primary(a("11.0.0.1")), None, "unmapped space");
        assert!(m.clear_exception(p("10.1.2.0/28")));
        assert_eq!(m.primary(a("10.1.2.5")), Some(1));
        assert!(!m.clear_exception(p("10.1.2.0/28")));
    }

    #[test]
    fn region_replacement_keeps_key_list_stable() {
        let mut m = MappingState::new();
        m.set_region(p("10.1.0.0/16"), IngressChoice::single(1));
        m.set_region(p("10.2.0.0/16"), IngressChoice::single(2));
        m.set_region(p("10.1.0.0/16"), IngressChoice::single(9)); // replace
        assert_eq!(m.region_count(), 2);
        assert_eq!(m.region_keys(), &[p("10.1.0.0/16"), p("10.2.0.0/16")]);
        assert_eq!(m.region_choice(p("10.1.0.0/16")).unwrap().primary, 9);
    }

    #[test]
    fn snapshot_reproduces_effective_mapping() {
        let mut m = MappingState::new();
        m.set_region(p("10.1.0.0/16"), IngressChoice::single(1));
        m.set_exception(p("10.1.2.0/24"), IngressChoice::single(2));
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        let lpm: LpmTrie<IngressChoice> = snap.into_iter().collect();
        assert_eq!(lpm.lookup(a("10.1.2.3")).unwrap().1.primary, 2);
        assert_eq!(lpm.lookup(a("10.1.3.3")).unwrap().1.primary, 1);
    }
}
