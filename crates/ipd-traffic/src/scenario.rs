//! Adversarial and routing-dynamics scenarios over the DFZ substrate.
//!
//! [`DfzFlowStream`] emits only well-behaved traffic: every flow enters the
//! ISP exactly where the ground-truth RIB says it should. The detector
//! workloads (`ipd-spoof`) need the two failure modes the literature warns
//! about, with exact labels threaded through the stream:
//!
//! * **spoofed** — a flow whose source address is forged from a prefix that
//!   *never* ingresses at the link the flow arrived on (the claimed origin
//!   AS has no candidate route there). Every labeled-spoofed flow provably
//!   violates the generated RIB — the property tests in
//!   `tests/scenario_prop.rs` re-derive this from [`AsLinks`] directly.
//! * **anycast catchment shift** — a *legitimate* flow that arrives at the
//!   pre-flap ingress shortly after its prefix's best route moved (the
//!   catchment lags the control plane). Shift flows exist only inside
//!   `[flap, flap + shift_lag_secs)` windows of real [`ChurnModel`] events,
//!   and always at a link the origin AS legitimately announces.
//!
//! The stream stays a deterministic function of the seed and keeps the
//! non-decreasing-timestamp invariant `pump_stream` and the bucket driver
//! require: injected flows are stamped with the second of the base draw
//! they ride on.
//!
//! [`AsLinks`]: ipd_bgp::dfz::AsLinks
//! [`ChurnModel`]: ipd_bgp::dfz::ChurnModel

use ipd_lpm::{Addr, Af};
use ipd_netflow::FlowRecord;
use ipd_topology::scale::{mix, mix3, unit_f64};
use ipd_topology::LinkId;

use crate::dfz::{DfzConfig, DfzFlowStream, DfzWorld};

/// Hash stream namespace for scenario decisions ("SPFSCEN").
const S_SCENARIO: u64 = 0x0053_5046_5343_454E;

/// Ground truth attached to every scenario flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowLabel {
    /// Well-behaved traffic at the current best ingress.
    Legit,
    /// Source address forged from a prefix with no route at the arrival link.
    Spoofed,
    /// Legitimate source arriving at the pre-flap ingress during a
    /// catchment-lag window.
    Shift,
}

impl FlowLabel {
    /// Stable wire code (used by the `ipd-spoof` verdict record codec).
    pub fn code(self) -> u8 {
        match self {
            FlowLabel::Legit => 0,
            FlowLabel::Spoofed => 1,
            FlowLabel::Shift => 2,
        }
    }

    /// Inverse of [`FlowLabel::code`].
    pub fn from_code(code: u8) -> Option<FlowLabel> {
        match code {
            0 => Some(FlowLabel::Legit),
            1 => Some(FlowLabel::Spoofed),
            2 => Some(FlowLabel::Shift),
            _ => None,
        }
    }
}

/// A flow record with scenario ground truth attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioFlow {
    /// The record as the engine and detector see it.
    pub flow: FlowRecord,
    /// Family of the claimed source prefix.
    pub af: Af,
    /// Popularity rank of the claimed source prefix.
    pub rank: u64,
    /// The link the flow actually arrived on.
    pub link: LinkId,
    /// Ground truth.
    pub label: FlowLabel,
}

/// Configuration of a spoof/catchment scenario over a [`DfzConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpoofScenario {
    /// The substrate the scenario rides on.
    pub dfz: DfzConfig,
    /// Probability that a base draw also injects one forged flow.
    pub spoof_share: f64,
    /// Probability that a legit flow of a recently-flapped prefix arrives
    /// at the pre-flap ingress instead of the current one.
    pub shift_share: f64,
    /// Catchment lag: shift flows occur within this many seconds after a
    /// next-hop flap of their prefix.
    pub shift_lag_secs: u64,
}

impl SpoofScenario {
    /// Spoofing only: forged flows injected at `share`, no catchment lag.
    pub fn spoofed(dfz: DfzConfig, share: f64) -> Self {
        SpoofScenario {
            dfz,
            spoof_share: share,
            shift_share: 0.0,
            shift_lag_secs: 0,
        }
    }

    /// Catchment shift only: no forged flows.
    pub fn catchment_shift(dfz: DfzConfig, share: f64, lag_secs: u64) -> Self {
        SpoofScenario {
            dfz,
            spoof_share: 0.0,
            shift_share: share,
            shift_lag_secs: lag_secs,
        }
    }

    /// Both failure modes at the default rates: 5 % forged traffic, half of
    /// the post-flap traffic lagging for two minutes.
    pub fn mixed(dfz: DfzConfig) -> Self {
        SpoofScenario {
            dfz,
            spoof_share: 0.05,
            shift_share: 0.5,
            shift_lag_secs: 120,
        }
    }

    /// [`SpoofScenario::mixed`] over the CI 100k tier.
    pub fn tier_100k(seed: u64) -> Self {
        SpoofScenario::mixed(DfzConfig::tier_100k(seed))
    }

    /// [`SpoofScenario::mixed`] over the golden/smoke 10k tier.
    pub fn smoke_10k(seed: u64) -> Self {
        SpoofScenario::mixed(DfzConfig::smoke_10k(seed))
    }

    /// The labeled scenario stream for `minutes` starting at the epoch.
    /// `world` must be built from this scenario's [`DfzConfig`].
    pub fn stream<'a>(&self, world: &'a DfzWorld, minutes: u64) -> ScenarioStream<'a> {
        ScenarioStream::new(world, *self, minutes)
    }
}

/// Streaming labeled scenario generator:
/// `Iterator<Item = ScenarioFlow>`, non-decreasing timestamps, bit-identical
/// for the same seed.
pub struct ScenarioStream<'a> {
    world: &'a DfzWorld,
    cfg: SpoofScenario,
    base: DfzFlowStream<'a>,
    /// Scenario decision counter (separate hash stream from the base draws).
    counter: u64,
    /// An injected forged flow waiting to be emitted (same second as the
    /// base flow that triggered it, so ordering holds).
    pending: Option<ScenarioFlow>,
}

impl<'a> ScenarioStream<'a> {
    /// Stream `minutes` minutes of labeled flows starting at the epoch.
    pub fn new(world: &'a DfzWorld, cfg: SpoofScenario, minutes: u64) -> Self {
        assert_eq!(
            world.config(),
            &cfg.dfz,
            "world must be built from the scenario's DfzConfig"
        );
        ScenarioStream {
            world,
            cfg,
            base: world.flows(minutes),
            counter: 0,
            pending: None,
        }
    }

    /// Base draws made so far (see [`DfzFlowStream::draws`]).
    pub fn base_draws(&self) -> u64 {
        self.base.draws()
    }

    /// Forge one flow: a source from a victim prefix injected at a link its
    /// origin AS never announces. Returns `None` only in degenerate worlds
    /// where every link is a candidate of the victim AS.
    fn forge(&self, ts: u64, h: u64) -> Option<ScenarioFlow> {
        let w = self.world;
        let af = if w.plan.len(Af::V6) > 0 && unit_f64(h) < self.cfg.dfz.v6_share {
            Af::V6
        } else {
            Af::V4
        };
        let n = w.plan.len(af);
        let rank = mix(h, 1) % n;
        let candidates = w.as_links.links_of(w.plan.as_rank_of(af, rank));
        let links = w.topology.link_count() as u64;
        let attack = (0..32u64)
            .map(|i| (mix(h, 16 + i) % links) as LinkId)
            .find(|l| !candidates.contains(l))?;
        let ingress = w.topology.ingress_of_link(attack);

        // Same source-address derivation as the base stream: a hash-chosen
        // /28 user group inside the claimed prefix, then a host inside it.
        let prefix = w.plan.prefix(af, rank);
        let host_bits = (af.width() - prefix.len()) as u32;
        let groups: u128 = 1 << host_bits.saturating_sub(4);
        let g = mix(h, 2) as u128 % groups;
        let host = (mix(h, 3) & 0xF) as u128 % (1 << host_bits.min(4));
        let src = Addr::new(af, prefix.addr().bits() | (g << host_bits.min(4)) | host);

        let hv = mix(h, 4);
        let dst = match af {
            Af::V4 => Addr::v4(0x6440_0000 | (hv as u32 & 0x003F_FFFF)),
            Af::V6 => Addr::new(Af::V6, (0xfd00u128 << 112) | (hv as u128)),
        };
        let packets = 1 + (hv >> 32 & 0x7) as u32;
        Some(ScenarioFlow {
            flow: FlowRecord {
                ts,
                src,
                dst,
                router: ingress.router,
                input_if: ingress.ifindex,
                output_if: 0,
                proto: if hv & 0xF < 13 { 6 } else { 17 },
                src_port: 443,
                dst_port: (49152 + (hv >> 16 & 0x3FFF)) as u16,
                packets,
                bytes: packets * (200 + (hv >> 40 & 0x3FF) as u32),
            },
            af,
            rank,
            link: attack,
            label: FlowLabel::Spoofed,
        })
    }
}

impl Iterator for ScenarioStream<'_> {
    type Item = ScenarioFlow;

    fn next(&mut self) -> Option<ScenarioFlow> {
        if let Some(pending) = self.pending.take() {
            return Some(pending);
        }
        let lf = self.base.next()?;
        let w = self.world;
        let h = mix3(self.cfg.dfz.seed, S_SCENARIO, self.counter);
        self.counter += 1;

        let mut out = ScenarioFlow {
            flow: lf.flow,
            af: lf.af,
            rank: lf.rank,
            link: lf.link,
            label: FlowLabel::Legit,
        };

        // Catchment shift: rewrite this legit flow to the pre-flap ingress
        // when its prefix flapped within the lag window.
        let lag = self.cfg.shift_lag_secs;
        if self.cfg.shift_share > 0.0 && lag > 0 && unit_f64(h) < self.cfg.shift_share {
            let ts = lf.flow.ts;
            let t0 = (ts + 1).saturating_sub(lag);
            if let Some(flap) = w.churn.flap_times_in(lf.af, lf.rank, t0, ts + 1).last() {
                let old = w.current_link(lf.af, lf.rank, flap.saturating_sub(1));
                if old != lf.link {
                    let ingress = w.topology.ingress_of_link(old);
                    out.flow.router = ingress.router;
                    out.flow.input_if = ingress.ifindex;
                    out.link = old;
                    out.label = FlowLabel::Shift;
                }
            }
        }

        // Spoof injection: queue one forged flow at the same second.
        if self.cfg.spoof_share > 0.0 && unit_f64(mix(h, 1)) < self.cfg.spoof_share {
            self.pending = self.forge(lf.flow.ts, mix(h, 2));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SpoofScenario {
        SpoofScenario::mixed(DfzConfig {
            flows_per_minute: 6_000,
            ..DfzConfig::smoke_10k(17)
        })
    }

    #[test]
    fn stream_is_deterministic_ordered_and_mixed() {
        let cfg = tiny();
        let w = DfzWorld::new(cfg.dfz);
        let a: Vec<ScenarioFlow> = cfg.stream(&w, 3).collect();
        let b: Vec<ScenarioFlow> = cfg.stream(&w, 3).collect();
        assert_eq!(a, b);
        for p in a.windows(2) {
            assert!(p[0].flow.ts <= p[1].flow.ts, "timestamps non-decreasing");
        }
        let spoofed = a.iter().filter(|f| f.label == FlowLabel::Spoofed).count();
        let shifted = a.iter().filter(|f| f.label == FlowLabel::Shift).count();
        let total = a.len();
        assert!(spoofed > 0, "no spoofed flows in {total}");
        assert!(shifted > 0, "no shift flows in {total}");
        // ~5% injection on top of the base stream.
        let share = spoofed as f64 / total as f64;
        assert!((0.02..0.10).contains(&share), "spoof share {share}");
    }

    #[test]
    fn spoofed_flows_violate_the_rib() {
        let cfg = tiny();
        let w = DfzWorld::new(cfg.dfz);
        let mut seen = 0;
        for f in cfg.stream(&w, 2) {
            if f.label != FlowLabel::Spoofed {
                continue;
            }
            seen += 1;
            let candidates = w.as_links.links_of(w.plan.as_rank_of(f.af, f.rank));
            assert!(
                !candidates.contains(&f.link),
                "spoofed flow arrived at a legitimate candidate link"
            );
            assert!(w.plan.prefix(f.af, f.rank).contains(f.flow.src));
        }
        assert!(seen > 50, "only {seen} spoofed flows");
    }

    #[test]
    fn shift_flows_ride_real_flap_windows() {
        let cfg = tiny();
        let w = DfzWorld::new(cfg.dfz);
        let mut seen = 0;
        for f in cfg.stream(&w, 3) {
            if f.label != FlowLabel::Shift {
                continue;
            }
            seen += 1;
            let ts = f.flow.ts;
            let t0 = (ts + 1).saturating_sub(cfg.shift_lag_secs);
            let flap = w
                .churn
                .flap_times_in(f.af, f.rank, t0, ts + 1)
                .last()
                .expect("shift flow without a flap in the lag window");
            assert_eq!(f.link, w.current_link(f.af, f.rank, flap - 1));
            assert_ne!(f.link, w.current_link(f.af, f.rank, ts));
        }
        assert!(seen > 0, "no shift flows");
    }

    #[test]
    fn pure_spoof_and_pure_shift_configs() {
        let base = DfzConfig {
            flows_per_minute: 3_000,
            ..DfzConfig::smoke_10k(18)
        };
        let w = DfzWorld::new(base);
        let spoof_only: Vec<_> = SpoofScenario::spoofed(base, 0.1).stream(&w, 2).collect();
        assert!(spoof_only.iter().all(|f| f.label != FlowLabel::Shift));
        assert!(spoof_only.iter().any(|f| f.label == FlowLabel::Spoofed));
        let shift_only: Vec<_> = SpoofScenario::catchment_shift(base, 1.0, 300)
            .stream(&w, 2)
            .collect();
        assert!(shift_only.iter().all(|f| f.label != FlowLabel::Spoofed));
    }
}
