//! The flow simulator: sampled, ground-truth-labeled NetFlow records.

use ipd_lpm::{Addr, Prefix};
use ipd_netflow::FlowRecord;
use ipd_topology::{LinkId, RouterId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use crate::diurnal::diurnal_factor;
use crate::world::World;

/// Flow simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Sampled flow records per minute at peak (the paper's deployment sees
    /// ~32 M/min; the default is a 1:200 scale model — remember to scale
    /// `n_cidr` factors accordingly).
    pub flows_per_minute: u64,
    /// Probability a flow enters through a uniformly random (wrong) link:
    /// spoofing, routing noise, measurement error. The paper's `q = 0.95`
    /// tolerates exactly this.
    pub noise_rate: f64,
    /// Fraction of /24 user groups active within any given hour (activity
    /// churn drives range appearance/disappearance, a big part of Fig 2).
    pub activity_fraction: f64,
    /// Advertised sampling interval (1 out of n packets).
    pub sampling_interval: u32,
    /// Fraction of routers whose clock drifts.
    pub drift_router_fraction: f64,
    /// Maximum clock offset (seconds, ±) for drifting routers.
    pub drift_max_offset: i64,
    /// Share of a dual-stacked AS's traffic that is IPv6.
    pub v6_share: f64,
    /// RNG seed for the flow stream (independent of the world seed).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            flows_per_minute: 150_000,
            noise_rate: 0.01,
            activity_fraction: 0.75,
            sampling_interval: 1000,
            drift_router_fraction: 0.05,
            drift_max_offset: 45,
            v6_share: 0.2,
            seed: 0xF10775,
        }
    }
}

/// A generated flow with its ground truth: the link it *actually* entered
/// through (which the evaluation compares against IPD's prediction).
#[derive(Debug, Clone)]
pub struct LabeledFlow {
    /// The flow record as the collector would see it (drifted clock and all).
    pub flow: FlowRecord,
    /// The link the flow truly entered on.
    pub true_link: LinkId,
    /// Index of the source AS in [`World::ases`].
    pub as_idx: usize,
}

/// One simulated minute of traffic.
#[derive(Debug, Clone)]
pub struct MinuteBatch {
    /// Start of the minute (unix seconds, true time).
    pub ts_start: u64,
    /// Flows, sorted by (claimed) timestamp.
    pub flows: Vec<LabeledFlow>,
}

/// The simulator: owns the world, advances it minute by minute, and emits
/// labeled flows.
#[derive(Debug)]
pub struct FlowSim {
    world: World,
    cfg: SimConfig,
    rng: StdRng,
    /// Cumulative AS share for O(log n) AS sampling.
    as_cdf: Vec<f64>,
    /// Per-AS cumulative IPv4 prefix weights (by address count).
    prefix_cdf: Vec<Vec<(f64, Prefix)>>,
    /// Per-AS IPv6 prefixes (uniform weights — a /32 per hypergiant).
    v6_prefixes: Vec<Vec<Prefix>>,
    /// Per-router clock offsets (only drifting routers present).
    drift: HashMap<RouterId, i64>,
    /// All links (for noise flows).
    all_links: Vec<LinkId>,
}

impl FlowSim {
    /// Build a simulator over `world`.
    pub fn new(world: World, cfg: SimConfig) -> FlowSim {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut as_cdf = Vec::with_capacity(world.ases.len());
        let mut acc = 0.0;
        for a in &world.ases {
            acc += a.traffic_share;
            as_cdf.push(acc);
        }
        let prefix_cdf = world
            .ases
            .iter()
            .map(|a| {
                let mut acc = 0.0;
                a.prefixes
                    .iter()
                    .filter(|p| p.af() == ipd_lpm::Af::V4)
                    .map(|p| {
                        acc += p.num_addrs();
                        (acc, *p)
                    })
                    .collect()
            })
            .collect();
        let v6_prefixes = world
            .ases
            .iter()
            .map(|a| {
                a.prefixes
                    .iter()
                    .copied()
                    .filter(|p| p.af() == ipd_lpm::Af::V6)
                    .collect()
            })
            .collect();
        let mut drift: HashMap<RouterId, i64> = HashMap::new();
        for r in world.topology.routers() {
            if rng.random::<f64>() < cfg.drift_router_fraction {
                drift.insert(
                    r.id,
                    rng.random_range(-cfg.drift_max_offset..=cfg.drift_max_offset),
                );
            }
        }
        let all_links = world.topology.links().iter().map(|l| l.id).collect();
        FlowSim {
            world,
            cfg,
            rng,
            as_cdf,
            prefix_cdf,
            v6_prefixes,
            drift,
            all_links,
        }
    }

    /// The world (read access for evaluation).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access (eval harnesses sometimes need to advance or
    /// inspect between minutes).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The config.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Generate the next minute of traffic and advance the world past it.
    pub fn next_minute(&mut self) -> MinuteBatch {
        let ts_start = self.world.now();
        let volume = (self.cfg.flows_per_minute as f64 * diurnal_factor(ts_start)) as u64;
        let mut flows = Vec::with_capacity(volume as usize);
        for _ in 0..volume {
            if let Some(f) = self.one_flow(ts_start) {
                flows.push(f);
            }
        }
        flows.sort_by_key(|f| f.flow.ts);
        self.world.advance_to(ts_start + 60);
        MinuteBatch { ts_start, flows }
    }

    fn one_flow(&mut self, minute_start: u64) -> Option<LabeledFlow> {
        let ts_true = minute_start + self.rng.random_range(0..60u64);
        // Pick the source AS by traffic share.
        let x: f64 = self.rng.random();
        let as_idx = match self
            .as_cdf
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(i) | Err(i) => i.min(self.as_cdf.len() - 1),
        };
        // Pick a source address, retrying inactive /24 user groups.
        let mut src = self.random_addr(as_idx);
        let hour = ts_true / 3600;
        for _ in 0..4 {
            if self.is_active(src, hour) {
                break;
            }
            src = self.random_addr(as_idx);
        }
        if !self.is_active(src, hour) {
            return None; // sampled into a quiet corner: no flow this slot
        }
        // Ground truth ingress.
        let choice = self.world.true_choice(src)?.clone();
        let true_link = if self.rng.random::<f64>() < self.cfg.noise_rate {
            self.all_links[self.rng.random_range(0..self.all_links.len())]
        } else {
            choice.pick(&mut self.rng)
        };
        let ingress = self.world.ingress_point_of_link(true_link);
        // Claimed timestamp: the exporting router's clock may drift.
        let ts_claimed = match self.drift.get(&ingress.router) {
            Some(&off) => (ts_true as i64 + off).max(0) as u64,
            None => ts_true,
        };
        // Sampled packet/byte counts: mostly single-packet samples with a
        // heavy-ish tail; bytes correlate with packets (§3.1: corr ≈ 0.82).
        let packets: u32 = 1 + self.geometric(0.45).min(200);
        let bpp = self.rng.random_range(60..1500) as u32;
        // Destination: an ISP-customer address of the same family (CGNAT
        // space for v4, a ULA-style block for v6).
        let dst = match src.af() {
            ipd_lpm::Af::V4 => {
                Addr::v4(0x6440_0000 | self.rng.random_range(0..0x3F_FFFFu32)) // 100.64/10
            }
            ipd_lpm::Af::V6 => Addr::v6((0xfd00u128 << 112) | self.rng.random::<u64>() as u128),
        };
        let flow = FlowRecord {
            ts: ts_claimed,
            src,
            dst,
            router: ingress.router,
            input_if: ingress.ifindex,
            output_if: 0,
            proto: if self.rng.random::<f64>() < 0.8 {
                6
            } else {
                17
            },
            src_port: 443,
            dst_port: self.rng.random_range(1024..u16::MAX),
            packets,
            bytes: packets.saturating_mul(bpp),
        };
        Some(LabeledFlow {
            flow,
            true_link,
            as_idx,
        })
    }

    fn random_addr(&mut self, as_idx: usize) -> Addr {
        // Dual-stacked ASes send a share of their traffic over IPv6.
        let v6 = &self.v6_prefixes[as_idx];
        if !v6.is_empty() && self.rng.random::<f64>() < self.cfg.v6_share {
            let prefix = v6[self.rng.random_range(0..v6.len())];
            return self.random_addr_in(prefix);
        }
        let cdf = &self.prefix_cdf[as_idx];
        let total = cdf.last().expect("ASes own IPv4 prefixes").0;
        let x = self.rng.random::<f64>() * total;
        let i = match cdf.binary_search_by(|(c, _)| c.partial_cmp(&x).expect("finite")) {
            Ok(i) | Err(i) => i.min(cdf.len() - 1),
        };
        let prefix = cdf[i].1;
        self.random_addr_in(prefix)
    }

    fn random_addr_in(&mut self, prefix: Prefix) -> Addr {
        let host_bits = (prefix.af().width() - prefix.len()) as u32;
        // Compose from two draws so > 63 host bits get full entropy.
        let offset: u128 = if host_bits == 0 {
            0
        } else {
            let raw = ((self.rng.random::<u64>() as u128) << 64) | self.rng.random::<u64>() as u128;
            if host_bits >= 128 {
                raw
            } else {
                raw & ((1u128 << host_bits) - 1)
            }
        };
        Addr::new(prefix.af(), prefix.addr().bits() | offset)
    }

    /// Deterministic per-(user-group, hour) activity: a hash decides whether
    /// this group (/24 for IPv4, /40 for IPv6) sends traffic this hour.
    fn is_active(&self, addr: Addr, hour: u64) -> bool {
        let group_len = match addr.af() {
            ipd_lpm::Af::V4 => 24,
            ipd_lpm::Af::V6 => 40,
        };
        let bits = addr.masked(group_len).bits();
        let group = (bits as u64) ^ ((bits >> 64) as u64);
        let h = splitmix64(group ^ hour.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.cfg.seed);
        (h as f64 / u64::MAX as f64) < self.cfg.activity_fraction
    }

    fn geometric(&mut self, p: f64) -> u32 {
        let u: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()) as u32
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};
    use std::collections::HashMap;

    fn sim(flows_per_minute: u64) -> FlowSim {
        let world = World::generate(WorldConfig::default(), 42);
        FlowSim::new(
            world,
            SimConfig {
                flows_per_minute,
                seed: 7,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn minutes_advance_time_and_volume_follows_diurnal() {
        let mut s = sim(2000);
        let m1 = s.next_minute();
        let m2 = s.next_minute();
        assert_eq!(m2.ts_start, m1.ts_start + 60);
        // Epoch is midnight UTC; volume should be well below peak.
        assert!((m1.flows.len() as f64) < 2000.0 * 0.8);
        // Flows sorted by claimed time.
        for w in m1.flows.windows(2) {
            assert!(w[0].flow.ts <= w[1].flow.ts);
        }
    }

    #[test]
    fn ground_truth_labels_match_flow_ingress() {
        let mut s = sim(3000);
        let m = s.next_minute();
        assert!(!m.flows.is_empty());
        for lf in &m.flows {
            let p = s.world().ingress_point_of_link(lf.true_link);
            assert_eq!(lf.flow.router, p.router);
            assert_eq!(lf.flow.input_if, p.ifindex);
            // AS label matches the address.
            assert_eq!(s.world().as_index_of(lf.flow.src), Some(lf.as_idx));
        }
    }

    #[test]
    fn traffic_shares_follow_zipf() {
        let mut s = sim(8000);
        let mut per_as: HashMap<usize, usize> = HashMap::new();
        for _ in 0..5 {
            for lf in s.next_minute().flows {
                *per_as.entry(lf.as_idx).or_insert(0) += 1;
            }
        }
        let total: usize = per_as.values().sum();
        let top5: usize = (0..5).map(|i| per_as.get(&i).copied().unwrap_or(0)).sum();
        let share = top5 as f64 / total as f64;
        // §5.1: TOP5 ≈ 52 %.
        assert!((0.42..0.66).contains(&share), "top5 traffic share {share}");
    }

    #[test]
    fn noise_rate_is_respected() {
        // Freeze world dynamics so the mapping at generation time is still
        // the mapping when we check.
        let cfg = WorldConfig {
            rates: crate::events::EventRates {
                base_remap_per_hour: 0.0,
                exception_add_per_hour: 0.0,
                night_consolidation_per_hour: 0.0,
                violation_base_per_hour: 0.0,
                ..crate::events::EventRates::default()
            },
            ..WorldConfig::default()
        };
        let world = World::generate(cfg, 42);
        let mut s = FlowSim::new(
            world,
            SimConfig {
                flows_per_minute: 5000,
                noise_rate: 0.0,
                seed: 7,
                ..SimConfig::default()
            },
        );
        let m = s.next_minute();
        assert!(!m.flows.is_empty());
        // With no noise every flow matches its mapping choice.
        for lf in &m.flows {
            let c = s.world().true_choice(lf.flow.src).unwrap();
            let allowed: Vec<_> = std::iter::once(c.primary)
                .chain(c.alternates.iter().map(|a| a.0))
                .collect();
            assert!(allowed.contains(&lf.true_link));
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut a = sim(1000);
        let mut b = sim(1000);
        for _ in 0..3 {
            let ma = a.next_minute();
            let mb = b.next_minute();
            assert_eq!(ma.flows.len(), mb.flows.len());
            for (x, y) in ma.flows.iter().zip(mb.flows.iter()) {
                assert_eq!(x.flow, y.flow);
                assert_eq!(x.true_link, y.true_link);
            }
        }
    }

    #[test]
    fn drifted_routers_report_shifted_clocks() {
        let world = World::generate(WorldConfig::default(), 42);
        let mut s = FlowSim::new(
            world,
            SimConfig {
                flows_per_minute: 5000,
                drift_router_fraction: 1.0,
                drift_max_offset: 600,
                seed: 9,
                ..SimConfig::default()
            },
        );
        let m = s.next_minute();
        // With every router drifting up to ±600 s, some claimed timestamps
        // must fall outside the true minute.
        let outside = m
            .flows
            .iter()
            .filter(|lf| lf.flow.ts < m.ts_start || lf.flow.ts >= m.ts_start + 60)
            .count();
        assert!(outside > 0, "expected drifted timestamps");
    }
}
