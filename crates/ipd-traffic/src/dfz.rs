//! DFZ-scale streaming flow generation.
//!
//! [`World`](crate::World) materializes its whole universe — topology, RIB,
//! region maps, exception tables — which is the right trade at tens of
//! thousands of prefixes and hopeless at the paper's deployment scale (~1M
//! IPv4 + ~200k IPv6 prefixes, ~3,000 routers, §5.7). [`DfzWorld`] is the
//! scale counterpart: it composes the functional substrate pieces
//! ([`ScaleTopology`], [`PrefixPlan`], [`ChurnModel`], [`AsLinks`]) and
//! derives every flow from a seed and a draw counter. Resident memory is a
//! few hundred kilobytes no matter how many prefixes or flows are in play;
//! the flow stream is an ordinary `Iterator` that yields millions of
//! ground-truth-labeled records without ever buffering more than one.
//!
//! Calibration (verified by the property tests in `tests/dfz_prop.rs`):
//!
//! * popularity is rank-skewed with `rank = n · u^γ` (γ = 2), which combined
//!   with Zipf(1.1) AS table shares puts TOP5 ≈ 60 % and TOP20 ≈ 75 % of
//!   traffic on the biggest ASes (paper §5.1 reports 52 %/80 %);
//! * source addresses spread over hash-chosen /28 user groups inside the
//!   originating prefix, so a DFZ run exercises millions of distinct /28s
//!   (the paper's CDN server-granularity, §5.3);
//! * a withdrawn prefix (churn down-phase) emits no traffic — the nominal
//!   `flows_per_minute` is an upper bound, reduced by the withdrawn share;
//! * the ground-truth link honors next-hop flaps at flow time, so labels stay
//!   exact *through* churn, not just between events.

use ipd_bgp::dfz::{
    current_link, AsLinks, ChurnConfig, ChurnModel, ChurnStream, DfzPlanParams, DfzRoute,
    PrefixPlan,
};
use ipd_lpm::{Addr, Af};
use ipd_netflow::FlowRecord;
use ipd_topology::scale::{mix, mix3, unit_f64};
use ipd_topology::{IngressPoint, LinkId, ScaleParams, ScaleTopology};

const S_FLOW: u64 = 0x0044_465A_464C_4F57; // "DFZFLOW"

/// Popularity exponent: a uniform draw `u` maps to rank `n · u^γ`.
const POPULARITY_GAMMA: f64 = 2.0;

/// Full configuration of a DFZ-scale world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfzConfig {
    /// Router/PoP/link layout.
    pub topology: ScaleParams,
    /// Prefix table shape.
    pub plan: DfzPlanParams,
    /// Route churn processes.
    pub churn: ChurnConfig,
    /// Nominal sampled flows per minute (reduced by withdrawn prefixes).
    pub flows_per_minute: u64,
    /// Fraction of flows sourced from IPv6 prefixes.
    pub v6_share: f64,
    /// Stream start time (unix seconds); also the churn epoch.
    pub epoch: u64,
    /// Master seed; all component seeds derive from it.
    pub seed: u64,
}

/// Default epoch for presets (2023-11-14, arbitrary but fixed).
pub const DFZ_EPOCH: u64 = 1_700_000_000;

impl DfzConfig {
    fn preset(seed: u64, frac: f64, v4: u64, flows_per_minute: u64) -> Self {
        DfzConfig {
            topology: ScaleParams::scaled(mix(seed, 1), frac),
            plan: if frac >= 1.0 {
                DfzPlanParams::dfz(mix(seed, 2))
            } else {
                DfzPlanParams::tier(mix(seed, 2), v4)
            },
            churn: ChurnConfig::default_rates(DFZ_EPOCH, mix(seed, 3)),
            flows_per_minute,
            v6_share: 0.15,
            epoch: DFZ_EPOCH,
            seed,
        }
    }

    /// The acceptance-scale preset: ~1M IPv4 + ~200k IPv6 prefixes over the
    /// full 3,000-router topology.
    pub fn dfz(seed: u64) -> Self {
        DfzConfig::preset(seed, 1.0, 1_048_576, 2_000_000)
    }

    /// The CI scale-smoke tier: 100k IPv4 + 20k IPv6 prefixes.
    pub fn tier_100k(seed: u64) -> Self {
        DfzConfig::preset(seed, 0.25, 100_000, 200_000)
    }

    /// The small tier used by golden/property tests: 10k + 2k prefixes.
    pub fn smoke_10k(seed: u64) -> Self {
        DfzConfig::preset(seed, 0.05, 10_000, 60_000)
    }
}

/// The composed DFZ world. Construction is `O(links + ases + churners)`;
/// everything else is derived on demand.
#[derive(Debug, Clone)]
pub struct DfzWorld {
    cfg: DfzConfig,
    /// Router/PoP/link layout.
    pub topology: ScaleTopology,
    /// The prefix table.
    pub plan: PrefixPlan,
    /// Churn state oracle.
    pub churn: ChurnModel,
    /// Per-AS candidate ingress links.
    pub as_links: AsLinks,
}

impl DfzWorld {
    /// Build the world from a config.
    pub fn new(cfg: DfzConfig) -> Self {
        let topology = ScaleTopology::new(cfg.topology);
        let plan = PrefixPlan::new(cfg.plan);
        let churn = ChurnModel::new(cfg.churn);
        let as_links = AsLinks::new(&topology, cfg.plan.ases, mix(cfg.seed, 4));
        DfzWorld {
            cfg,
            topology,
            plan,
            churn,
            as_links,
        }
    }

    /// The config.
    pub fn config(&self) -> &DfzConfig {
        &self.cfg
    }

    /// Ground-truth best link of a prefix at time `t`.
    pub fn current_link(&self, af: Af, rank: u64, t: u64) -> LinkId {
        current_link(&self.plan, &self.churn, &self.as_links, af, rank, t)
    }

    /// Ground-truth ingress point of a prefix at time `t`.
    pub fn current_ingress(&self, af: Af, rank: u64, t: u64) -> IngressPoint {
        self.topology
            .ingress_of_link(self.current_link(af, rank, t))
    }

    /// Churn events over `[t0, t1)` (60 s sorting windows).
    pub fn churn_events(&self, t0: u64, t1: u64) -> ChurnStream<'_> {
        ChurnStream::new(&self.plan, &self.churn, t0, t1, 60)
    }

    /// The routing-table view at time `t`, both families, streaming.
    pub fn routes_at(&self, t: u64) -> impl Iterator<Item = DfzRoute> + '_ {
        ipd_bgp::dfz::routes_at(&self.plan, &self.churn, &self.as_links, t)
    }

    /// The labeled flow stream for `minutes` starting at the epoch.
    pub fn flows(&self, minutes: u64) -> DfzFlowStream<'_> {
        DfzFlowStream::new(self, self.cfg.epoch, minutes)
    }

    /// Approximate resident size of the materialized tables, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.topology.memory_bytes()
            + self.plan.params().ases as usize * 16
            + self.as_links.ases() as usize * 8
    }
}

/// A flow record with its ground truth attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfzLabeledFlow {
    /// The record as the engine sees it.
    pub flow: FlowRecord,
    /// Family of the source prefix.
    pub af: Af,
    /// Popularity rank of the source prefix.
    pub rank: u64,
    /// Ground-truth ingress link at the flow's timestamp.
    pub link: LinkId,
}

/// Streaming, seeded flow generator: `Iterator<Item = DfzLabeledFlow>`.
///
/// Flows are emitted in non-decreasing timestamp order (second granularity),
/// exactly `flows_per_minute` draws per minute; draws whose prefix is
/// currently withdrawn are skipped. State is four counters — same seed,
/// bit-identical stream.
pub struct DfzFlowStream<'a> {
    world: &'a DfzWorld,
    /// Current absolute second.
    sec: u64,
    /// End of the stream (exclusive).
    end: u64,
    /// Draws already made this second.
    done: u64,
    /// Draws budgeted for this second.
    quota: u64,
    /// Global draw counter (hash input).
    counter: u64,
}

impl<'a> DfzFlowStream<'a> {
    /// Stream `minutes` minutes of flows starting at `t0`.
    pub fn new(world: &'a DfzWorld, t0: u64, minutes: u64) -> Self {
        let mut s = DfzFlowStream {
            world,
            sec: t0,
            end: t0.saturating_add(minutes.saturating_mul(60)),
            done: 0,
            quota: 0,
            counter: 0,
        };
        s.quota = s.quota_for(t0);
        s
    }

    /// Per-second draw budget: `fpm/60`, with the remainder spread over the
    /// first `fpm % 60` seconds of each minute so every minute draws exactly
    /// `flows_per_minute`.
    fn quota_for(&self, sec: u64) -> u64 {
        let fpm = self.world.cfg.flows_per_minute;
        fpm / 60 + u64::from(sec % 60 < fpm % 60)
    }

    /// Total draws made so far (emitted + suppressed-by-withdrawal).
    pub fn draws(&self) -> u64 {
        self.counter
    }
}

impl Iterator for DfzFlowStream<'_> {
    type Item = DfzLabeledFlow;

    fn next(&mut self) -> Option<DfzLabeledFlow> {
        let w = self.world;
        loop {
            if self.done == self.quota {
                self.sec += 1;
                if self.sec >= self.end {
                    return None;
                }
                self.done = 0;
                self.quota = self.quota_for(self.sec);
                continue;
            }
            self.done += 1;
            let h = mix3(w.cfg.seed, S_FLOW, self.counter);
            self.counter += 1;

            let af = if w.plan.len(Af::V6) > 0 && unit_f64(h) < w.cfg.v6_share {
                Af::V6
            } else {
                Af::V4
            };
            let n = w.plan.len(af);
            let u = unit_f64(mix(h, 1));
            let rank = ((n as f64 * u.powf(POPULARITY_GAMMA)) as u64).min(n - 1);
            let ts = self.sec;
            if !w.churn.visible(af, rank, ts) {
                continue; // withdrawn: no traffic from this prefix right now
            }
            let link = w.current_link(af, rank, ts);
            let ingress = w.topology.ingress_of_link(link);

            let prefix = w.plan.prefix(af, rank);
            // Source: a hash-chosen /28 user group inside the prefix, then a
            // host inside the group.
            let host_bits = (af.width() - prefix.len()) as u32;
            let groups: u128 = 1 << host_bits.saturating_sub(4);
            let g = mix(h, 2) as u128 % groups;
            let host = (mix(h, 3) & 0xF) as u128 % (1 << host_bits.min(4));
            let src = Addr::new(af, prefix.addr().bits() | (g << host_bits.min(4)) | host);

            let hv = mix(h, 4);
            let dst = match af {
                // CGNAT 100.64.0.0/10 — mirrors the materialized simulator.
                Af::V4 => Addr::v4(0x6440_0000 | (hv as u32 & 0x003F_FFFF)),
                Af::V6 => Addr::new(Af::V6, (0xfd00u128 << 112) | (hv as u128)),
            };
            let packets = 1 + (hv >> 32 & 0x7) as u32;
            return Some(DfzLabeledFlow {
                flow: FlowRecord {
                    ts,
                    src,
                    dst,
                    router: ingress.router,
                    input_if: ingress.ifindex,
                    output_if: 0,
                    proto: if hv & 0xF < 13 { 6 } else { 17 },
                    src_port: 443,
                    dst_port: (49152 + (hv >> 16 & 0x3FFF)) as u16,
                    packets,
                    bytes: packets * (200 + (hv >> 40 & 0x3FF) as u32),
                },
                af,
                rank,
                link,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DfzConfig {
        DfzConfig {
            flows_per_minute: 6_000,
            ..DfzConfig::smoke_10k(11)
        }
    }

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let w = DfzWorld::new(tiny());
        let a: Vec<DfzLabeledFlow> = w.flows(2).collect();
        let b: Vec<DfzLabeledFlow> = w.flows(2).collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for p in a.windows(2) {
            assert!(p[0].flow.ts <= p[1].flow.ts, "timestamps non-decreasing");
        }
        assert!(a[0].flow.ts >= DFZ_EPOCH && a.last().unwrap().flow.ts < DFZ_EPOCH + 120);
    }

    #[test]
    fn draws_exact_emits_no_more() {
        let w = DfzWorld::new(tiny());
        let mut s = w.flows(3);
        let emitted = s.by_ref().count() as u64;
        assert_eq!(s.draws(), 3 * 6_000);
        assert!(emitted <= s.draws());
        // Churn suppresses only a small share (≈ updown_fraction scaled by
        // popularity and duty cycle).
        assert!(emitted as f64 > 0.85 * s.draws() as f64);
    }

    #[test]
    fn labels_match_world_ground_truth() {
        let w = DfzWorld::new(tiny());
        for f in w.flows(1).take(2_000) {
            assert_eq!(f.link, w.current_link(f.af, f.rank, f.flow.ts));
            let ing = w.topology.ingress_of_link(f.link);
            assert_eq!((f.flow.router, f.flow.input_if), (ing.router, ing.ifindex));
            let p = w.plan.prefix(f.af, f.rank);
            assert!(p.contains(f.flow.src), "src inside originating prefix");
            assert!(w.churn.visible(f.af, f.rank, f.flow.ts));
        }
    }

    #[test]
    fn v6_share_roughly_honored() {
        let w = DfzWorld::new(tiny());
        let flows: Vec<_> = w.flows(2).collect();
        let v6 = flows.iter().filter(|f| f.af == Af::V6).count() as f64;
        let share = v6 / flows.len() as f64;
        assert!((0.10..0.20).contains(&share), "v6 share {share}");
    }

    #[test]
    fn many_distinct_user_slash28s() {
        let w = DfzWorld::new(tiny());
        let mut groups = std::collections::HashSet::new();
        for f in w.flows(2) {
            groups.insert(f.flow.src.masked(f.flow.src.af().width() - 4));
        }
        // 12k draws must spread over thousands of distinct /28-equivalents.
        assert!(
            groups.len() > 5_000,
            "only {} distinct groups",
            groups.len()
        );
    }

    #[test]
    fn world_memory_is_bounded() {
        let w = DfzWorld::new(tiny());
        assert!(w.memory_bytes() < 256 * 1024, "{} bytes", w.memory_bytes());
    }
}
