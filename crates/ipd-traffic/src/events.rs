//! Scheduled world dynamics: CDN remaps, maintenance windows, peering
//! violations.
//!
//! The schedule is generated *lazily*, hour by hour, from a dedicated seeded
//! RNG — so a 25-hour accuracy run and a four-year longitudinal run use the
//! same machinery without materializing millions of events up front, and the
//! event stream is identical regardless of how the caller steps time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ipd_lpm::Prefix;
use ipd_topology::LinkId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::asmodel::AsBehavior;
use crate::diurnal::diurnal_factor;
use crate::mapping::IngressChoice;

/// One scheduled change to the world.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the event takes effect (unix seconds).
    pub ts: u64,
    /// What happens.
    pub kind: EventKind,
}

/// Kinds of world events.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A region's home ingress changes (CDN mapping update, TE change).
    RegionRemap {
        /// The region being remapped.
        region: Prefix,
        /// Its new ingress choice.
        choice: IngressChoice,
    },
    /// A granule-level exception appears (fine-grained CDN mapping).
    AddException {
        /// The granule.
        granule: Prefix,
        /// Its ingress choice.
        choice: IngressChoice,
    },
    /// All exceptions within a region are consolidated away (night-time
    /// de-fragmentation, §5.3.3: "most range sizes are consolidated during
    /// this time").
    ClearExceptionsIn {
        /// The region whose exceptions disappear.
        region: Prefix,
    },
    /// Router maintenance starts: traffic homed on this router's links
    /// shifts to backup interfaces (§5.1.2's AS1 interface misses).
    MaintenanceStart {
        /// The router under maintenance.
        router: u32,
    },
    /// Maintenance ends; original mappings are restored.
    MaintenanceEnd {
        /// The router that was under maintenance.
        router: u32,
    },
    /// A tier-1 AS's region starts entering via a non-peering link
    /// (§5.6 potential peering agreement violation).
    ViolationStart {
        /// The tier-1 region.
        region: Prefix,
        /// The non-peering link it now enters through.
        via_link: LinkId,
    },
    /// The violation ends.
    ViolationEnd {
        /// The region returning to its peering link.
        region: Prefix,
    },
}

/// Static per-AS inputs the generator draws from.
#[derive(Debug, Clone)]
pub struct AsScheduleInfo {
    /// Scripted behavior.
    pub behavior: AsBehavior,
    /// All link ids of this AS.
    pub links: Vec<LinkId>,
    /// Country of each link (parallel to `links`).
    pub link_country: Vec<u16>,
    /// Indices into the global region list owned by this AS.
    pub region_idxs: Vec<usize>,
    /// Granule length for exceptions.
    pub granule_len: u8,
    /// Whether this is a tier-1 peer (violation candidate).
    pub is_tier1: bool,
}

/// Event rates; all per region unless stated.
#[derive(Debug, Clone)]
pub struct EventRates {
    /// Background remap probability per region per hour.
    pub base_remap_per_hour: f64,
    /// Exception add probability per (CDN) region per hour, scaled by the
    /// diurnal factor.
    pub exception_add_per_hour: f64,
    /// Probability per region per *night* hour (02:00–07:00) that its
    /// exceptions are consolidated away.
    pub night_consolidation_per_hour: f64,
    /// Violation start probability per tier-1 region per hour at t = 0.
    pub violation_base_per_hour: f64,
    /// Linear growth of the violation rate per year (Fig 17: +50 % from
    /// Sep 2019, doubling by 2020 → ≈ 1.0/year fits the trend).
    pub violation_growth_per_year: f64,
    /// Violation duration in hours (they persist; the paper plots standing
    /// counts per month).
    pub violation_duration_hours: u64,
}

impl Default for EventRates {
    fn default() -> Self {
        EventRates {
            base_remap_per_hour: 0.02,
            exception_add_per_hour: 0.15,
            night_consolidation_per_hour: 0.5,
            // Standing violation share ≈ rate × duration: 3e-5/h × 720 h ≈
            // 2 % at epoch, growing ~1×/year — matching §5.6's ≈9 % average
            // over the observation window with the Fig 17 upward trend.
            violation_base_per_hour: 3e-5,
            violation_growth_per_year: 1.0,
            violation_duration_hours: 24 * 30,
        }
    }
}

/// All inputs the schedule generator needs.
#[derive(Debug, Clone)]
pub struct ScheduleInputs {
    /// Every region in the world (prefix per entry).
    pub regions: Vec<Prefix>,
    /// Per-AS info (indices into `regions`).
    pub ases: Vec<AsScheduleInfo>,
    /// Links of transit ASes — violation detours go through these.
    pub transit_links: Vec<LinkId>,
    /// Routers hosting bundles that undergo scripted maintenance, with the
    /// local hours and duration. Derived from `AsBehavior::MaintenanceBundle`.
    pub maintenance_routers: Vec<(u32, Vec<u8>, u32)>,
    /// Event rates.
    pub rates: EventRates,
    /// Multi-ingress probability when regenerating a remapped choice.
    pub multi_ingress_fraction: f64,
}

/// Lazy event stream.
#[derive(Debug)]
pub struct EventSchedule {
    inputs: ScheduleInputs,
    rng: StdRng,
    /// Next hour index (ts / 3600) to generate.
    next_hour: u64,
    /// Generated but not yet returned events, min-heap by timestamp.
    pending: BinaryHeap<Reverse<HeapEvent>>,
    epoch: u64,
    /// Monotone sequence breaking timestamp ties deterministically.
    seq: u64,
}

/// Heap entry ordered by (ts, seq) so equal-time events pop in generation
/// order (deterministic).
#[derive(Debug, Clone, PartialEq)]
struct HeapEvent {
    ts: u64,
    seq: u64,
    event: Event,
}

impl Eq for HeapEvent {}

impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ts.cmp(&other.ts).then(self.seq.cmp(&other.seq))
    }
}

impl EventSchedule {
    /// A schedule starting at `epoch` (events are generated from this time
    /// onward), seeded independently of the flow RNG.
    pub fn new(inputs: ScheduleInputs, epoch: u64, seed: u64) -> Self {
        EventSchedule {
            inputs,
            rng: StdRng::seed_from_u64(seed ^ 0x5e_ede7_e975),
            next_hour: epoch / 3600,
            pending: BinaryHeap::new(),
            epoch,
            seq: 0,
        }
    }

    /// All events with `ts <= until`, in order. Generates any not-yet
    /// generated hours first.
    pub fn events_until(&mut self, until: u64) -> Vec<Event> {
        while self.next_hour * 3600 <= until {
            let hour_start = self.next_hour * 3600;
            self.generate_hour(hour_start);
            self.next_hour += 1;
        }
        let mut out = Vec::new();
        while let Some(Reverse(top)) = self.pending.peek() {
            if top.ts > until {
                break;
            }
            out.push(self.pending.pop().expect("peeked").0.event);
        }
        out
    }

    fn push(&mut self, event: Event) {
        self.seq += 1;
        self.pending.push(Reverse(HeapEvent {
            ts: event.ts,
            seq: self.seq,
            event,
        }));
    }

    fn generate_hour(&mut self, hour_start: u64) {
        let hour_of_day = (hour_start % 86_400) / 3600;
        let diurnal = diurnal_factor(hour_start);
        // Take the AS table out to satisfy the borrow checker without
        // cloning per-AS region index vectors every simulated hour (multi-
        // year runs generate tens of thousands of hours).
        let ases = std::mem::take(&mut self.inputs.ases);
        for info in &ases {
            self.generate_as_hour(info, hour_start, hour_of_day, diurnal);
        }
        self.inputs.ases = ases;
        self.generate_maintenance(hour_start, hour_of_day);
        self.generate_violations(hour_start);
    }

    fn generate_as_hour(
        &mut self,
        info: &AsScheduleInfo,
        hour_start: u64,
        hour_of_day: u64,
        diurnal: f64,
    ) {
        if info.links.len() < 2 || info.region_idxs.is_empty() {
            return; // single-homed: nothing can move
        }
        // Background remaps.
        let mut remap_rate = self.inputs.rates.base_remap_per_hour;
        let mut prefer_far = false;
        match info.behavior {
            AsBehavior::PopFlap { rate_per_hour } => {
                remap_rate += rate_per_hour * diurnal;
                prefer_far = true;
            }
            AsBehavior::DiurnalRemap { peak_fraction } => {
                remap_rate += peak_fraction * 0.2 * diurnal;
            }
            _ => {}
        }
        let n_remaps = self.binomial(info.region_idxs.len(), remap_rate);
        for _ in 0..n_remaps {
            let ridx = info.region_idxs[self.rng.random_range(0..info.region_idxs.len())];
            let region = self.inputs.regions[ridx];
            let to_link = self.pick_link(info, region, prefer_far);
            // Regions stay single-homed (multi-ingress structure lives at
            // granule level; see world generation).
            let choice = IngressChoice::single(to_link);
            let ts = hour_start + self.rng.random_range(0..3600u64);
            self.push(Event {
                ts,
                kind: EventKind::RegionRemap { region, choice },
            });
        }
        // Exception churn: CDN-like ASes fragment under load and
        // consolidate at night.
        let frag_rate = self.inputs.rates.exception_add_per_hour * diurnal;
        let is_cdn_like = info.granule_len > 24;
        if is_cdn_like {
            let n_adds = self.binomial(info.region_idxs.len(), frag_rate);
            for _ in 0..n_adds {
                let ridx = info.region_idxs[self.rng.random_range(0..info.region_idxs.len())];
                let region = self.inputs.regions[ridx];
                let granule = self.random_granule(region, info.granule_len);
                let to_link = self.pick_link(info, region, false);
                // Mostly pinned single-link granules; occasionally a
                // genuinely mixed one, keeping the Fig 3/4 multi-ingress
                // share stable under night-time consolidation.
                let choice = self.make_choice(info, to_link);
                let ts = hour_start + self.rng.random_range(0..3600u64);
                self.push(Event {
                    ts,
                    kind: EventKind::AddException { granule, choice },
                });
            }
            if (2..7).contains(&hour_of_day) {
                let n_clears = self.binomial(
                    info.region_idxs.len(),
                    self.inputs.rates.night_consolidation_per_hour,
                );
                for _ in 0..n_clears {
                    let ridx = info.region_idxs[self.rng.random_range(0..info.region_idxs.len())];
                    let region = self.inputs.regions[ridx];
                    let ts = hour_start + self.rng.random_range(0..3600u64);
                    self.push(Event {
                        ts,
                        kind: EventKind::ClearExceptionsIn { region },
                    });
                }
            }
        }
    }

    fn generate_maintenance(&mut self, hour_start: u64, hour_of_day: u64) {
        for (router, hours, duration_min) in self.inputs.maintenance_routers.clone() {
            if hours.contains(&(hour_of_day as u8)) {
                let start = hour_start + self.rng.random_range(0..600u64);
                let end = start + duration_min as u64 * 60;
                self.push(Event {
                    ts: start,
                    kind: EventKind::MaintenanceStart { router },
                });
                self.push(Event {
                    ts: end,
                    kind: EventKind::MaintenanceEnd { router },
                });
            }
        }
    }

    fn generate_violations(&mut self, hour_start: u64) {
        if self.inputs.transit_links.is_empty() {
            return;
        }
        let years = (hour_start.saturating_sub(self.epoch)) as f64 / (365.25 * 86_400.0);
        let rate = self.inputs.rates.violation_base_per_hour
            * (1.0 + self.inputs.rates.violation_growth_per_year * years);
        let tier1_regions: Vec<usize> = self
            .inputs
            .ases
            .iter()
            .filter(|a| a.is_tier1)
            .flat_map(|a| a.region_idxs.iter().copied())
            .collect();
        if tier1_regions.is_empty() {
            return;
        }
        let n = self.binomial(tier1_regions.len(), rate);
        for _ in 0..n {
            let ridx = tier1_regions[self.rng.random_range(0..tier1_regions.len())];
            let region = self.inputs.regions[ridx];
            let via_link = self.inputs.transit_links
                [self.rng.random_range(0..self.inputs.transit_links.len())];
            let start = hour_start + self.rng.random_range(0..3600u64);
            let end = start + self.inputs.rates.violation_duration_hours * 3600;
            self.push(Event {
                ts: start,
                kind: EventKind::ViolationStart { region, via_link },
            });
            self.push(Event {
                ts: end,
                kind: EventKind::ViolationEnd { region },
            });
        }
    }

    /// Binomial(n, p) sample — exact for small n, normal approximation for
    /// large (same approach as the packet sampler).
    fn binomial(&mut self, n: usize, p: f64) -> usize {
        let p = p.clamp(0.0, 1.0);
        if n == 0 || p == 0.0 {
            return 0;
        }
        if n <= 64 {
            (0..n).filter(|_| self.rng.random::<f64>() < p).count()
        } else {
            let mean = n as f64 * p;
            let sd = (n as f64 * p * (1.0 - p)).sqrt();
            let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = self.rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (mean + sd * z).round().clamp(0.0, n as f64) as usize
        }
    }

    /// Pick a destination link for a remap. `prefer_far` biases toward links
    /// in another country (PoP-miss dynamics).
    fn pick_link(&mut self, info: &AsScheduleInfo, region: Prefix, prefer_far: bool) -> LinkId {
        let _ = region;
        if prefer_far && info.links.len() > 1 {
            // Try a few times to find a link in a different country than a
            // random reference link.
            let ref_idx = self.rng.random_range(0..info.links.len());
            let ref_country = info.link_country[ref_idx];
            for _ in 0..4 {
                let i = self.rng.random_range(0..info.links.len());
                if info.link_country[i] != ref_country {
                    return info.links[i];
                }
            }
        }
        info.links[self.rng.random_range(0..info.links.len())]
    }

    /// Regenerate an ingress choice: single most of the time, multi-ingress
    /// with the configured probability (keeps Fig 3/Fig 4 calibration stable
    /// under churn).
    fn make_choice(&mut self, info: &AsScheduleInfo, primary: LinkId) -> IngressChoice {
        if info.links.len() >= 2 && self.rng.random::<f64>() < self.inputs.multi_ingress_fraction {
            let primary_share = self.rng.random_range(0.35..0.92);
            let mut rest = 1.0 - primary_share;
            let n_alts = self.rng.random_range(1..=2.min(info.links.len() - 1));
            let mut alternates = Vec::new();
            for k in 0..n_alts {
                let link = loop {
                    let l = info.links[self.rng.random_range(0..info.links.len())];
                    if l != primary {
                        break l;
                    }
                };
                let share = if k == n_alts - 1 { rest } else { rest * 0.6 };
                alternates.push((link, share));
                rest -= share;
            }
            IngressChoice::with_alternates(primary, alternates)
        } else {
            IngressChoice::single(primary)
        }
    }

    /// A random granule of `granule_len` inside `region`.
    fn random_granule(&mut self, region: Prefix, granule_len: u8) -> Prefix {
        let glen = granule_len.max(region.len());
        let span_bits = (glen - region.len()) as u32;
        let offset: u128 = if span_bits == 0 {
            0
        } else {
            self.rng.random_range(0..(1u128 << span_bits.min(63)))
        };
        let width = region.af().width();
        let bits = region.addr().bits() | (offset << (width - glen) as u32);
        Prefix::of(ipd_lpm::Addr::new(region.af(), bits), glen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_lpm::Addr;

    fn inputs() -> ScheduleInputs {
        let regions: Vec<Prefix> = (0u32..20)
            .map(|i| Prefix::of(Addr::v4(0x0A00_0000 + (i << 8)), 24))
            .collect();
        let ases = vec![
            AsScheduleInfo {
                behavior: AsBehavior::Stable,
                links: vec![0, 1, 2],
                link_country: vec![1, 1, 2],
                region_idxs: (0..10).collect(),
                granule_len: 28,
                is_tier1: false,
            },
            AsScheduleInfo {
                behavior: AsBehavior::Stable,
                links: vec![3, 4],
                link_country: vec![1, 2],
                region_idxs: (10..20).collect(),
                granule_len: 24,
                is_tier1: true,
            },
        ];
        ScheduleInputs {
            regions,
            ases,
            transit_links: vec![9],
            maintenance_routers: vec![(7, vec![11], 45)],
            rates: EventRates {
                base_remap_per_hour: 0.3,
                violation_base_per_hour: 0.05,
                ..EventRates::default()
            },
            multi_ingress_fraction: 0.2,
        }
    }

    #[test]
    fn events_are_time_ordered_and_deterministic() {
        let mut s1 = EventSchedule::new(inputs(), 0, 42);
        let mut s2 = EventSchedule::new(inputs(), 0, 42);
        let a = s1.events_until(86_400);
        let b = s2.events_until(86_400);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn incremental_and_bulk_generation_agree() {
        let mut bulk = EventSchedule::new(inputs(), 0, 7);
        let all = bulk.events_until(6 * 3600);
        let mut inc = EventSchedule::new(inputs(), 0, 7);
        let mut got = Vec::new();
        for h in 1..=6 {
            got.extend(inc.events_until(h * 3600));
        }
        assert_eq!(all, got);
    }

    #[test]
    fn maintenance_fires_at_scheduled_hour() {
        let mut s = EventSchedule::new(inputs(), 0, 9);
        let events = s.events_until(86_400);
        let starts: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MaintenanceStart { router: 7 }))
            .collect();
        assert_eq!(starts.len(), 1);
        let start_ts = starts[0].ts;
        assert!((11 * 3600..11 * 3600 + 600).contains(&start_ts));
        assert!(events.iter().any(|e| {
            matches!(e.kind, EventKind::MaintenanceEnd { router: 7 }) && e.ts == start_ts + 45 * 60
        }));
    }

    #[test]
    fn violations_target_tier1_regions_via_transit() {
        let mut s = EventSchedule::new(inputs(), 0, 11);
        let events = s.events_until(30 * 86_400);
        let tier1_regions: Vec<Prefix> = (10..20).map(|i| inputs().regions[i]).collect();
        let mut seen = 0;
        for e in &events {
            if let EventKind::ViolationStart { region, via_link } = &e.kind {
                assert!(tier1_regions.contains(region));
                assert_eq!(*via_link, 9);
                seen += 1;
            }
        }
        assert!(seen > 0, "expected some violations in 30 days");
    }

    #[test]
    fn violation_rate_grows_over_years() {
        let mut s = EventSchedule::new(inputs(), 0, 13);
        let events = s.events_until(2 * 365 * 86_400);
        let year = |e: &Event| e.ts / (365 * 86_400);
        let y0 = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ViolationStart { .. }) && year(e) == 0)
            .count();
        let y1 = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ViolationStart { .. }) && year(e) == 1)
            .count();
        assert!(
            y1 as f64 > y0 as f64 * 1.2,
            "violations should trend up: year0={y0} year1={y1}"
        );
    }

    #[test]
    fn remap_choices_stay_within_as_links() {
        let mut s = EventSchedule::new(inputs(), 0, 17);
        let events = s.events_until(86_400);
        for e in &events {
            if let EventKind::RegionRemap { region, choice } = &e.kind {
                let as_links: &[LinkId] = if region.addr().bits() < 0x0A00_0A00 {
                    &[0, 1, 2]
                } else {
                    &[3, 4]
                };
                assert!(as_links.contains(&choice.primary));
                for (l, _) in &choice.alternates {
                    assert!(as_links.contains(l));
                    assert_ne!(*l, choice.primary);
                }
                assert!(choice.primary_share() > 0.3);
            }
        }
    }

    #[test]
    fn granules_are_inside_their_region() {
        let mut s = EventSchedule::new(inputs(), 0, 19);
        let events = s.events_until(86_400 * 2);
        let mut seen = 0;
        for e in &events {
            if let EventKind::AddException { granule, .. } = &e.kind {
                assert_eq!(granule.len(), 28);
                let region = Prefix::of(granule.addr(), 24);
                assert!(
                    inputs().regions.contains(&region),
                    "granule {granule} region"
                );
                seen += 1;
            }
        }
        assert!(seen > 0);
    }
}
